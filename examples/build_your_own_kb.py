"""Build a custom knowledge base and ask questions over it.

Shows the full downstream-user workflow: declare entities with the record
API, materialise a KB, export/import N-Triples, and run the QA pipeline
over your own data (here: a small music-history domain).

    python examples/build_your_own_kb.py
"""

import datetime as dt
import io

from repro.core import QuestionAnsweringSystem
from repro.kb import KnowledgeBase, build_dbpedia_ontology
from repro.kb.records import entity
from repro.rdf import read_ntriples, write_ntriples


def main() -> None:
    ontology = build_dbpedia_ontology()

    records = [
        entity("Vienna", "City", label="Vienna", country="Austria",
               populationTotal=1714142),
        entity("Austria", "Country", label="Austria", capital="Vienna",
               officialLanguage="German_tongue"),
        entity("German_tongue", "Language", label="German"),
        entity(
            "Wolfgang_Amadeus_Mozart", "MusicalArtist",
            label="Wolfgang Amadeus Mozart",
            aliases=["Mozart"],
            birthPlace="Salzburg",
            deathPlace="Vienna",
            birthDate=dt.date(1756, 1, 27),
            deathDate=dt.date(1791, 12, 5),
            links=["Vienna", "The_Magic_Flute"],
        ),
        entity("Salzburg", "City", label="Salzburg", country="Austria"),
        entity(
            "The_Magic_Flute", "MusicalWork",
            label="The Magic Flute",
            musicComposer="Wolfgang_Amadeus_Mozart",
            releaseDate=dt.date(1791, 9, 30),
            links=["Wolfgang_Amadeus_Mozart", "Vienna"],
        ),
        entity(
            "Ludwig_van_Beethoven", "MusicalArtist",
            label="Ludwig van Beethoven",
            aliases=["Beethoven"],
            birthPlace="Bonn",
            deathPlace="Vienna",
            links=["Vienna"],
        ),
        entity("Bonn", "City", label="Bonn", country="Germany_custom"),
        entity("Germany_custom", "Country", label="Germany", capital="Bonn"),
    ]

    print("Building a custom KB with the DBpedia-style ontology ...")
    kb = KnowledgeBase.from_records(ontology, records)
    print(f"  {len(kb)} triples materialised\n")

    # Round-trip through N-Triples to show the exchange format.
    buffer = io.StringIO()
    write_ntriples(iter(kb.graph), buffer)
    print("First three exported N-Triples lines:")
    for line in buffer.getvalue().splitlines()[:3]:
        print(f"  {line}")
    buffer.seek(0)
    reimported = sum(1 for __ in read_ntriples(buffer))
    print(f"  re-imported {reimported} triples\n")

    # Direct SPARQL access.
    result = kb.select(
        "SELECT ?who WHERE { ?who dbont:deathPlace res:Vienna } ORDER BY ?who"
    )
    print("SPARQL: composers who died in Vienna:")
    for term in result.column("who"):
        print(f"  {kb.label_of(term)}")
    print()

    # Natural-language access: the pipeline mines PATTY patterns and the
    # WordNet maps from *this* KB.
    qa = QuestionAnsweringSystem.over(kb)
    for question in (
        "Where was Mozart born?",
        "Where did Ludwig van Beethoven die?",
        "What is the capital of Austria?",
    ):
        answer = qa.answer(question)
        labels = [kb.label_of(a) for a in answer.answers] or [f"({answer.failure})"]
        print(f"Q: {question}")
        print(f"A: {', '.join(labels)}\n")


if __name__ == "__main__":
    main()

"""The paper's future work (section 6), implemented and demonstrated.

Compares the faithful pipeline with the extended configuration side by
side on the question shapes the paper could not handle, then reruns the
Table 2 evaluation with the extensions enabled.

    python examples/extensions_demo.py
"""

from repro import PipelineConfig, QuestionAnsweringSystem, load_curated_kb
from repro.qald import QaldEvaluator, load_questions
from repro.rdf import Literal


def describe(kb, result) -> str:
    if result.boolean is not None:
        return "Yes" if result.boolean else "No"
    if not result.answered:
        return f"(unanswered: {(result.failure or '')[:48]})"
    labels = [
        answer.lexical if isinstance(answer, Literal) else kb.label_of(answer)
        for answer in result.answers
    ]
    return ", ".join(labels)


def main() -> None:
    kb = load_curated_kb()
    faithful = QuestionAnsweringSystem.over(kb)
    extended = QuestionAnsweringSystem.over(kb, PipelineConfig().with_extensions())

    demos = [
        ("boolean (ASK generation)", "Is Berlin the capital of Germany?"),
        ("boolean, negative verdict", "Was Abraham Lincoln born in Washington?"),
        ("temporal (data-property patterns)", "When did Frank Herbert die?"),
        ("temporal", "When was Apollo 11 launched?"),
        ("imperative (rewrite)", "Give me all films directed by Alfred Hitchcock."),
        ("imperative, locative", "Give me all soccer clubs in Spain."),
        ("still failing: lexical gap", "Is Frank Herbert still alive?"),
        ("still failing: superlative", "What is the highest mountain?"),
    ]

    print("Question shape comparisons (faithful vs extended):\n")
    for label, question in demos:
        print(f"[{label}]")
        print(f"  Q: {question}")
        print(f"  faithful: {describe(kb, faithful.answer(question))}")
        print(f"  extended: {describe(kb, extended.answer(question))}\n")

    print("Table 2 under both configurations:\n")
    questions = load_questions()
    for name, system in (("faithful", faithful), ("extended", extended)):
        result = QaldEvaluator(kb, system).evaluate(questions)
        print(
            f"  {name:9s} answered={result.answered:2d} correct={result.correct:2d}"
            f"  P={result.paper_precision:.2f} R={result.paper_recall:.2f}"
            f"  F1={result.paper_f1:.2f}"
        )


if __name__ == "__main__":
    main()

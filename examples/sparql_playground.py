"""Direct SPARQL access to the mini-DBpedia (the substrate on its own).

Demonstrates the query engine's feature set — joins, FILTER, OPTIONAL,
UNION, ORDER BY, LIMIT, COUNT, ASK — against the curated data, and shows
the planner's join-order decisions.

    python examples/sparql_playground.py
"""

from repro.kb import load_curated_kb
from repro.sparql.parser import parse_query
from repro.sparql.planner import plan_bgp


def run(kb, title, query) -> None:
    print(f"-- {title}")
    for line in query.strip().splitlines():
        print(f"   {line.strip()}")
    result = kb.engine.query(query)
    if hasattr(result, "rows"):
        for row in result.rows[:8]:
            cells = [kb.label_of(t) if hasattr(t, "local_name") else str(t)
                     for t in row if t is not None]
            print(f"   => {' | '.join(cells)}")
        if len(result.rows) > 8:
            print(f"   ... ({len(result.rows)} rows total)")
    else:
        print(f"   => {result.value}")
    print()


def main() -> None:
    kb = load_curated_kb()
    print(f"Curated mini-DBpedia: {len(kb)} triples\n")

    run(kb, "Two-hop join: books by writers born in Istanbul", """
        SELECT ?book WHERE {
          ?book dbont:author ?writer .
          ?writer dbont:birthPlace res:Istanbul .
        }
    """)

    run(kb, "FILTER: cities over ten million inhabitants, largest first", """
        SELECT ?city ?pop WHERE {
          ?city a dbont:City .
          ?city dbont:populationTotal ?pop
          FILTER (?pop > 10000000)
        } ORDER BY DESC(?pop)
    """)

    run(kb, "OPTIONAL + !BOUND: writers still alive", """
        SELECT ?writer WHERE {
          ?writer a dbont:Writer
          OPTIONAL { ?writer dbont:deathDate ?d }
          FILTER (!BOUND(?d))
        } ORDER BY ?writer LIMIT 5
    """)

    run(kb, "UNION: everything the Nobel laureates wrote or starred in", """
        SELECT DISTINCT ?work WHERE {
          ?person dbont:award res:Nobel_Prize_in_Literature
          { ?work dbont:author ?person } UNION { ?work dbont:starring ?person }
        }
    """)

    run(kb, "COUNT: how many books the store knows", """
        SELECT COUNT(?b) WHERE { ?b a dbont:Book }
    """)

    run(kb, "ASK: did Hemingway win the Nobel Prize in Literature?", """
        ASK { res:Ernest_Hemingway dbont:award res:Nobel_Prize_in_Literature }
    """)

    # Peek at the planner.
    query = parse_query("""
        SELECT ?book WHERE {
          ?book a dbont:Book .
          ?writer dbont:birthPlace res:Istanbul .
          ?book dbont:author ?writer .
        }
    """)
    ordered = plan_bgp(kb.graph, query.where.triples(), set())
    print("-- Planner: selectivity-ordered join for the three-pattern BGP")
    for triple in ordered:
        print(f"   {triple.n3()}")


if __name__ == "__main__":
    main()

"""Quickstart: ask natural-language questions over the mini-DBpedia.

Runs the paper's Figure 1 example end to end and shows each pipeline
stage's output: the dependency graph, the extracted triple patterns, the
candidate SPARQL queries and the final ranked answer.

    python examples/quickstart.py
"""

from repro.core import QuestionAnsweringSystem
from repro.kb import load_curated_kb
from repro.nlp import Pipeline


def main() -> None:
    print("Loading the curated mini-DBpedia ...")
    kb = load_curated_kb()
    print(f"  {len(kb)} triples, {len(kb.entities())} entities\n")

    print("Building the QA system (mines PATTY patterns, WordNet maps) ...\n")
    qa = QuestionAnsweringSystem.over(kb)

    question = "Which book is written by Orhan Pamuk?"
    print(f"Question: {question}\n")

    # Stage 1: the dependency graph (the paper's Figure 1).
    sentence = Pipeline(kb.surface_index).annotate(question)
    print("Dependency graph (Figure 1):")
    for line in sentence.graph.to_figure().splitlines():
        print(f"  {line}")
    print()

    # Stages 2-4 run inside answer(); the Answer object records them all.
    result = qa.answer(question)

    print("Extracted triple patterns (section 2.1):")
    for pattern in result.triples:
        print(f"  {pattern}")
    print()

    print(f"Candidate queries (section 2.3): {len(result.candidate_queries)}")
    for candidate in result.candidate_queries[:2]:
        print(f"  score={candidate.score:.2f}")
        for line in candidate.to_sparql().splitlines():
            print(f"    {line}")
    print()

    print("Answers:")
    for answer in result.answers:
        print(f"  {kb.label_of(answer)}")

    print("\nMore questions:")
    for text in (
        "How tall is Michael Jordan?",
        "Where did Abraham Lincoln die?",
        "Who is the mayor of Berlin?",
        "Is Frank Herbert still alive?",
    ):
        result = qa.answer(text)
        if result.answered:
            labels = [
                kb.label_of(a) if hasattr(a, "local_name") else str(a)
                for a in result.answers
            ]
            print(f"  {text}  ->  {', '.join(labels)}")
        else:
            print(f"  {text}  ->  (unanswered: {result.failure})")


if __name__ == "__main__":
    main()

"""Inspect the PATTY-style relational-pattern mining (section 2.2.3).

Generates the synthetic corpus, runs distant-supervision extraction, prints
the word -> property frequency tables for the paper's example words, and
shows the subsumption taxonomy — including the deliberate noise ("born in"
under deathPlace) the paper criticises PATTY for.

    python examples/pattern_mining.py
"""

from repro.kb import load_curated_kb
from repro.patty import (
    PatternExtractor,
    PatternTaxonomy,
    build_pattern_store,
    generate_corpus,
)
from repro.patty.corpus import corpus_statistics


def main() -> None:
    kb = load_curated_kb()

    print("Generating the synthetic corpus from KB facts ...")
    corpus = generate_corpus(kb)
    stats = corpus_statistics(corpus)
    print(f"  {len(corpus)} sentences over {len(stats)} relations")
    print("  sample sentences:")
    for sentence in corpus[:4]:
        print(f"    [{sentence.relation}] {sentence.text}")
    print()

    print("Extracting patterns by distant supervision ...")
    extractor = PatternExtractor(kb)
    occurrences = extractor.extract(corpus)
    aggregates = extractor.aggregate(occurrences)
    print(f"  {len(occurrences)} occurrences, {len(aggregates)} (pattern, relation) aggregates\n")

    print("The paper's worked example — properties for 'die' (section 2.2.3):")
    store = build_pattern_store(kb)
    for word in ("die", "bear", "write", "marry", "cross", "alive"):
        ranked = store.properties_for(word)
        shown = ", ".join(f"{name}({freq})" for name, freq in ranked[:4])
        print(f"  {word:8s} -> {shown or '(nothing — unmappable)'}")
    print()

    print("PATTY noise, reproduced: patterns attributed to deathPlace:")
    death_patterns = sorted(
        (a for a in aggregates.values() if a.relation == "deathPlace"),
        key=lambda a: -a.frequency,
    )
    for aggregate in death_patterns[:5]:
        print(f"  {aggregate.frequency:4d}x  \"{aggregate.text}\"")
    print("  (note the 'be bear in' entry — the defect the paper discusses)\n")

    print("Subsumption taxonomy (support-set inclusion on the prefix tree):")
    taxonomy = PatternTaxonomy(aggregates.values(), min_support=2)
    clusters = [c for c in taxonomy.synonym_sets() if len(c) > 1]
    for cluster in clusters[:6]:
        print(f"  {{ {', '.join(sorted(cluster))} }}")


if __name__ == "__main__":
    main()

"""Reproduce Table 2: the QALD-2-style evaluation (experiment E1).

Runs all 55 in-scope questions through the pipeline, scores them against
the gold SPARQL, and prints the paper-vs-reproduction comparison plus the
per-question outcome listing and the category breakdown that explains the
low recall.

    python examples/qald_evaluation.py [--verbose]
"""

import sys

from repro.core import QuestionAnsweringSystem
from repro.kb import load_curated_kb
from repro.qald import QaldEvaluator, format_outcomes, format_table2, load_questions
from repro.qald.report import format_category_breakdown


def main() -> None:
    verbose = "--verbose" in sys.argv

    kb = load_curated_kb()
    system = QuestionAnsweringSystem.over(kb)
    evaluator = QaldEvaluator(kb, system)

    questions = load_questions()
    excluded = [q for q in questions if not q.in_scope]
    print(
        f"Benchmark: {len(questions)} questions, "
        f"{len(questions) - len(excluded)} in scope "
        f"({len(excluded)} excluded, as in the paper)\n"
    )

    result = evaluator.evaluate(questions)

    print(format_table2(result))
    print()
    print("Per-category breakdown (where coverage limits bite):")
    print(format_category_breakdown(result))
    print()
    print("Per-question outcomes:")
    print(format_outcomes(result, verbose=verbose))
    print()
    print("Exclusion reasons for the 45 out-of-scope questions:")
    reasons: dict[str, int] = {}
    for question in excluded:
        reasons[question.out_of_scope_reason] = (
            reasons.get(question.out_of_scope_reason, 0) + 1
        )
    for reason, count in sorted(reasons.items(), key=lambda kv: -kv[1]):
        print(f"  {count:2d}  {reason}")


if __name__ == "__main__":
    main()

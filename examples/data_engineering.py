"""The data-engineering toolchain around the store.

Everything a downstream user needs to operate the substrate on their own
data, end to end:

1. parse raw Turtle (T-Box + A-Box, no closure materialised),
2. run RDFS forward chaining (:func:`repro.rdf.materialize_rdfs`),
3. validate against the mini-DBpedia ontology,
4. inspect a query plan with EXPLAIN,
5. export the result as Turtle and as a mined pattern resource.

    python examples/data_engineering.py
"""

import io

from repro.kb import load_curated_kb
from repro.patty import build_pattern_store
from repro.patty.export import export_patterns_tsv, export_store_json
from repro.rdf import Graph, materialize_rdfs, parse_turtle, serialize_turtle
from repro.sparql.engine import SparqlEngine
from repro.sparql.explain import explain

RAW_TURTLE = """
@prefix dbo: <http://dbpedia.org/ontology/> .
@prefix dbr: <http://dbpedia.org/resource/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .

dbo:Novel rdfs:subClassOf dbo:Book .
dbo:Book rdfs:subClassOf dbo:WrittenWork .
dbo:author rdfs:domain dbo:WrittenWork .

dbr:The_Idiot a dbo:Novel ;
              dbo:author dbr:Fyodor_Dostoevsky ;
              rdfs:label "The Idiot"@en .
dbr:Fyodor_Dostoevsky rdfs:label "Fyodor Dostoevsky"@en .
"""


def main() -> None:
    # 1. Load raw data (most-specific types only, no closure).
    graph = Graph(parse_turtle(RAW_TURTLE))
    print(f"loaded {len(graph)} raw triples")

    # 2. Materialise RDFS entailments.
    added = materialize_rdfs(graph, include_domain_range=True)
    print(f"forward chaining added {added} triples")
    engine = SparqlEngine(graph)
    result = engine.select("SELECT ?b WHERE { ?b a dbo:Book }")
    print(f"?b a dbo:Book now matches: "
          f"{[t.local_name for t in result.column('b')]}\n")

    # 3. Consistency-check the curated KB (the regression gate).
    from repro.kb.validate import format_issues, validate_kb

    kb = load_curated_kb()
    print("validating the curated mini-DBpedia:")
    print(f"  {format_issues(validate_kb(kb))}\n")

    # 4. EXPLAIN a join.
    print("query plan for a two-hop join:")
    print(explain(kb.graph, """
        SELECT ?book WHERE {
          ?book a dbont:Book .
          ?book dbont:author ?writer .
          ?writer dbont:birthPlace res:Istanbul .
        }
    """))
    print()

    # 5a. Export a slice as Turtle.
    pamuk_block = list(kb.graph.match(kb.entity("Orhan_Pamuk"), None, None))
    print("Turtle export of one resource:")
    print(serialize_turtle(pamuk_block))
    print()

    # 5b. Export the mined PATTY-style resource.
    store = build_pattern_store(kb)
    tsv = io.StringIO()
    rows = export_patterns_tsv(store, tsv)
    print(f"pattern resource: {rows} aggregated patterns; first lines:")
    for line in tsv.getvalue().splitlines()[:5]:
        print(f"  {line}")
    json_buffer = io.StringIO()
    export_store_json(store, json_buffer)
    print(f"JSON index: {len(json_buffer.getvalue())} bytes")


if __name__ == "__main__":
    main()

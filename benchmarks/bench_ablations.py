"""A1-A4 — ablations over the pipeline components (DESIGN.md).

Reruns the Table 2 evaluation with individual components disabled and with
alternative string-similarity metrics, quantifying each component's
contribution:

* A1 without PATTY patterns  — verb-predicate questions collapse;
* A2 without WordNet         — property-pair expansion and adjective map off;
* A3 without type checking   — wrong-typed answers leak, precision drops;
* A4 similarity metric swap  — LCS vs Levenshtein vs Dice vs Jaro-Winkler.

    pytest benchmarks/bench_ablations.py --benchmark-only
"""

import pytest

from repro.core import PipelineConfig, QuestionAnsweringSystem
from repro.qald import QaldEvaluator, load_questions


@pytest.fixture(scope="module")
def questions():
    return load_questions()


def _evaluate(kb, config, questions):
    system = QuestionAnsweringSystem.over(kb, config)
    return QaldEvaluator(kb, system).evaluate(questions)


def _show(name, result):
    print(
        f"{name:28s} answered={result.answered:2d} correct={result.correct:2d} "
        f"P={result.paper_precision:.2f} R={result.paper_recall:.2f} "
        f"F1={result.paper_f1:.2f}"
    )


def test_a1_without_patterns(benchmark, kb, questions):
    full = _evaluate(kb, PipelineConfig(), questions)
    ablated = benchmark(_evaluate, kb, PipelineConfig().without_patterns(), questions)
    print()
    _show("full pipeline", full)
    _show("A1: no PATTY patterns", ablated)
    # Relational patterns carry the verb-predicate questions; recall drops.
    assert ablated.answered < full.answered
    assert ablated.correct < full.correct


def test_a2_without_wordnet(benchmark, kb, questions):
    full = _evaluate(kb, PipelineConfig(), questions)
    ablated = benchmark(_evaluate, kb, PipelineConfig().without_wordnet(), questions)
    print()
    _show("full pipeline", full)
    _show("A2: no WordNet", ablated)
    # The adjective map carries 'How tall ...'; coverage cannot grow.
    assert ablated.answered <= full.answered
    tall = QuestionAnsweringSystem.over(
        kb, PipelineConfig().without_wordnet()
    ).answer("How tall is Claudia Schiffer?")
    assert not tall.answered


def test_a3_without_type_checking(benchmark, kb, questions):
    full = _evaluate(kb, PipelineConfig(), questions)
    ablated = benchmark(
        _evaluate, kb, PipelineConfig().without_type_checking(), questions
    )
    print()
    _show("full pipeline", full)
    _show("A3: no type checking", ablated)
    # Without the filter more questions get (some) answer...
    assert ablated.answered >= full.answered
    # ...but precision must not improve (wrong-typed answers leak through).
    assert ablated.paper_precision <= full.paper_precision


@pytest.mark.parametrize("metric", ["levenshtein", "dice", "jaro-winkler"])
def test_a4_similarity_metric_swap(benchmark, kb, questions, metric):
    baseline = _evaluate(kb, PipelineConfig(), questions)
    swapped = benchmark(
        _evaluate, kb, PipelineConfig().with_similarity(metric), questions
    )
    print()
    _show("A4 baseline (lcs)", baseline)
    _show(f"A4: {metric}", swapped)
    # Property mapping tolerates metric choice on the easy band but the
    # paper's LCS configuration must remain at least as good.
    assert swapped.correct <= baseline.correct
    assert swapped.paper_precision <= 1.0

"""P5 — serving-layer resilience: snapshot restore vs. uninterrupted warmth.

Simulates the crash-safe warm-state story end to end.  Two services answer
the identical replayed QALD workload through ``repro.serve.ResilientServer``:

* **uninterrupted** — one process: a cold pass to earn the caches, then a
  measured warm pass;
* **restarted** — the same cold pass, then the process "dies": its warm
  state is saved with ``save_snapshot``, the server is stopped and
  discarded, and a brand-new system over a freshly loaded KB restores the
  snapshot before running the measured pass.

The measured passes are compared on the combined result-cache + plan-cache
hit rate.  The acceptance bar (ISSUE 5): the restarted service must reach
at least 80% of the uninterrupted warm hit rate, with byte-identical
answers across every pass of both services::

    PYTHONPATH=src python benchmarks/bench_serve_resilience.py \
        --repeats 2 --output BENCH_serve.json

``--quick`` runs a four-question smoke that checks the machinery (the
restore-ratio and identical-answers gates still apply — the snapshot
mechanism is deterministic, so they hold at any scale).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.core import QuestionAnsweringSystem
from repro.kb import load_curated_kb
from repro.qald.devset import load_dev_questions
from repro.serve import ResilientServer, ServerConfig


def fresh_server() -> ResilientServer:
    """A new system over a freshly loaded KB — no shared cache warmth."""
    system = QuestionAnsweringSystem.over(load_curated_kb())
    return ResilientServer(system, ServerConfig(workers=4))


def answer_signature(answer) -> tuple:
    """Everything observable about one answer, for equality checks."""
    return (
        answer.question,
        tuple(term.n3() for term in answer.answers),
        answer.boolean,
        answer.failure,
        answer.failure_stage,
    )


def cache_totals(server: ResilientServer) -> dict[str, int]:
    """Combined hits/misses over the caches the snapshot layer persists."""
    totals = {"hits": 0, "misses": 0}
    stats = server.system.kb.engine.cache_stats()
    for name in ("result_cache", "plan_cache"):
        table = stats.get(name)
        if isinstance(table, dict):
            totals["hits"] += table.get("hits", 0)
            totals["misses"] += table.get("misses", 0)
    return totals


def replay(
    server: ResilientServer, questions: list[str], repeats: int
) -> tuple[float, list[tuple]]:
    start = time.perf_counter()
    signatures: list[tuple] = []
    for _ in range(repeats):
        signatures = [answer_signature(server.answer(q)) for q in questions]
    return time.perf_counter() - start, signatures


def measured_pass(
    server: ResilientServer, questions: list[str], repeats: int
) -> tuple[float, list[tuple], float]:
    """Replay the workload and return (seconds, signatures, hit_rate)."""
    before = cache_totals(server)
    seconds, signatures = replay(server, questions, repeats)
    after = cache_totals(server)
    hits = after["hits"] - before["hits"]
    misses = after["misses"] - before["misses"]
    rate = hits / (hits + misses) if hits + misses else 0.0
    return seconds, signatures, rate


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=2,
                        help="times the measured pass replays the workload")
    parser.add_argument("--output", default=None,
                        help="write the BENCH JSON artifact here")
    parser.add_argument("--quick", action="store_true",
                        help="four-question smoke run for CI")
    args = parser.parse_args(argv)

    questions = [q.text for q in load_dev_questions()]
    if args.quick:
        questions = questions[:4]

    # -- uninterrupted service -----------------------------------------
    with fresh_server() as server:
        cold_seconds, cold_sigs = replay(server, questions, 1)
        warm_seconds, warm_sigs, warm_rate = measured_pass(
            server, questions, args.repeats
        )

    # -- killed-and-restarted service ----------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "warm.snapshot"
        with fresh_server() as victim:
            _, victim_sigs = replay(victim, questions, 1)
            header = victim.save_snapshot(path)
        # The old server is stopped and dropped: the "crash".  The restarted
        # process owns a freshly loaded KB and restores the snapshot into it.
        with fresh_server() as restarted:
            restored_counts = restarted.restore_snapshot(path)
            restored_seconds, restored_sigs, restored_rate = measured_pass(
                restarted, questions, args.repeats
            )
        snapshot_bytes = header["payload_bytes"]

    restore_ratio = restored_rate / warm_rate if warm_rate else 0.0
    identical = cold_sigs == warm_sigs == victim_sigs == restored_sigs

    result = {
        "benchmark": "serve_resilience",
        "questions": len(questions),
        "repeats": args.repeats,
        "quick": args.quick,
        "uninterrupted": {
            "cold_seconds": round(cold_seconds, 4),
            "warm_seconds": round(warm_seconds, 4),
            "warm_hit_rate": round(warm_rate, 4),
        },
        "restarted": {
            "restored_seconds": round(restored_seconds, 4),
            "warm_hit_rate": round(restored_rate, 4),
            "snapshot_bytes": snapshot_bytes,
            "restored_counts": restored_counts,
        },
        "restore_ratio": round(restore_ratio, 4),
        "restore_target": 0.8,
        "restore_ok": restore_ratio >= 0.8,
        "identical_answers": identical,
    }

    print("BENCH " + json.dumps(result))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(result, handle, indent=2)
            handle.write("\n")

    if not identical:
        for label, sigs in (("warm", warm_sigs), ("restored", restored_sigs)):
            for base, other in zip(cold_sigs, sigs):
                if base != other:
                    print(f"MISMATCH ({label}):\n  cold : {base}\n  other: {other}",
                          file=sys.stderr)
        return 1
    return 0 if result["restore_ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())

"""Threshold study on the development split.

The paper never states the string-similarity threshold its property
mapping used.  This bench sweeps the threshold over the 20-question dev
split (disjoint from the benchmark) and shows the precision/recall
trade-off that justifies the reproduction's default of 0.70.

    pytest benchmarks/bench_threshold_sweep.py --benchmark-only
"""

import pytest

from repro.core import PipelineConfig, QuestionAnsweringSystem
from repro.qald import QaldEvaluator
from repro.qald.devset import load_dev_questions

THRESHOLDS = [0.50, 0.60, 0.70, 0.80, 0.90]


def _evaluate_at(kb, threshold, questions):
    config = PipelineConfig(similarity_threshold=threshold)
    system = QuestionAnsweringSystem.over(kb, config)
    return QaldEvaluator(kb, system).evaluate(questions)


def test_threshold_sweep(benchmark, kb):
    questions = load_dev_questions()

    def sweep():
        return {t: _evaluate_at(kb, t, questions) for t in THRESHOLDS}

    results = benchmark(sweep)

    print("\nSimilarity-threshold sweep (dev split, 20 questions):")
    print(f"{'threshold':>10s}{'answered':>10s}{'correct':>9s}"
          f"{'P':>7s}{'R':>7s}{'F1':>7s}")
    for threshold, result in sorted(results.items()):
        print(
            f"{threshold:>10.2f}{result.answered:>10d}{result.correct:>9d}"
            f"{result.paper_precision:>7.2f}{result.paper_recall:>7.2f}"
            f"{result.paper_f1:>7.2f}"
        )

    default = results[PipelineConfig().similarity_threshold]
    best_f1 = max(result.paper_f1 for result in results.values())
    # The shipped default must be at (or within a whisker of) the sweep's
    # best F1 on held-out questions.
    assert default.paper_f1 >= best_f1 - 0.02

    # Monotone coverage: lowering the threshold can only answer more.
    answered = [results[t].answered for t in sorted(results)]
    assert answered == sorted(answered, reverse=True)


def test_dev_split_disjoint_from_benchmark():
    from repro.qald import load_questions

    test_texts = {q.text for q in load_questions()}
    dev_texts = {q.text for q in load_dev_questions()}
    assert not test_texts & dev_texts


def test_dev_gold_queries_execute(kb):
    evaluator = QaldEvaluator(kb, object())
    for question in load_dev_questions():
        gold = evaluator.gold_answers(question)
        if not question.ask:
            assert gold, f"Q{question.qid} has empty gold"

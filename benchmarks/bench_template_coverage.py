"""Grammar-template coverage over the benchmark (the recall mechanism).

For every in-scope benchmark question, records which parser template
analysed it. The distribution explains Table 2's recall mechanically:
questions landing in "fallback" can never produce triple patterns.

    pytest benchmarks/bench_template_coverage.py --benchmark-only
"""

from collections import Counter

import pytest

from repro.nlp import Pipeline
from repro.qald import in_scope_questions


def test_template_distribution(benchmark, kb):
    pipeline = Pipeline(kb.surface_index)
    questions = in_scope_questions()

    def classify_all():
        return Counter(
            pipeline.annotate(q.text).graph.template for q in questions
        )

    distribution = benchmark(classify_all)

    print("\nTemplate coverage over the 55 in-scope questions:")
    for template, count in distribution.most_common():
        print(f"  {count:3d}  {template}")

    covered = sum(c for t, c in distribution.items() if t != "fallback")
    fallback = distribution.get("fallback", 0)
    print(f"  => {covered} analysed by a template, {fallback} fallback")

    # Recall is lost at three gates, and the distribution pins the first:
    # ~21 questions never parse (superlatives, imperatives, comparatives,
    # relative clauses); of the ~34 that parse, extraction/mapping drops
    # more (boolean copulas parse but extract nothing in the faithful
    # config; 'alive' fails mapping); execution/type-checking drops the
    # rest ('When ...' object-property answers) down to 18 answered.
    assert fallback >= 15
    assert covered > 18  # more parse than answer: later gates do real work


def test_answered_questions_never_come_from_fallback(kb, qa):
    pipeline = Pipeline(kb.surface_index)
    for question in in_scope_questions():
        answer = qa.answer(question.text)
        if answer.answered:
            template = pipeline.annotate(question.text).graph.template
            assert template != "fallback", question.text

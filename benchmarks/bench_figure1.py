"""E3 — Figure 1: the dependency graph of the paper's running example.

Regenerates the dependency analysis of "Which book is written by Orhan
Pamuk" and checks that the arcs and the two extracted triple patterns
match the paper, then benchmarks the annotation pipeline.

    pytest benchmarks/bench_figure1.py --benchmark-only
"""

import pytest

from repro.core import TripleExtractor
from repro.nlp import Pipeline

QUESTION = "Which book is written by Orhan Pamuk?"

#: The typed dependencies of Figure 1 (entity mention pre-merged, as the
#: NER/MWE stage of the original pipeline would).
EXPECTED_ARCS = {
    ("det", "book", "Which"),
    ("nsubjpass", "written", "book"),
    ("auxpass", "written", "is"),
    ("prep", "written", "by"),
    ("pobj", "by", "Orhan Pamuk"),
}

EXPECTED_TRIPLES = {
    "[Subject: ?x] [Predicate: rdf:type] [Object: book]",
    "[Subject: ?x] [Predicate: write] [Object: Orhan Pamuk]",
}


def test_figure1_dependency_graph(benchmark, kb):
    pipeline = Pipeline(kb.surface_index)

    sentence = benchmark(pipeline.annotate, QUESTION)

    graph = sentence.graph
    print("\nFigure 1 — dependency graph")
    print(graph.to_figure())

    arcs = {
        (arc.relation, graph.token(arc.head).text, graph.token(arc.dependent).text)
        for arc in graph.arcs
    }
    assert graph.root.text == "written"
    assert arcs == EXPECTED_ARCS


def test_figure1_triple_extraction(benchmark, kb):
    pipeline = Pipeline(kb.surface_index)
    extractor = TripleExtractor()
    sentence = pipeline.annotate(QUESTION)

    bucket = benchmark(extractor.extract, sentence)

    print("\nExtracted triple patterns:")
    for pattern in bucket:
        print(f"  {pattern}")
    assert {str(pattern) for pattern in bucket} == EXPECTED_TRIPLES


def test_pipeline_throughput(benchmark, kb):
    """Annotation throughput over a mixed batch (parser templates)."""
    pipeline = Pipeline(kb.surface_index)
    batch = [
        QUESTION,
        "How tall is Michael Jordan?",
        "Where did Abraham Lincoln die?",
        "Who is the mayor of Berlin?",
        "How many pages does War and Peace have?",
        "Is Frank Herbert still alive?",
        "Which river does the Brooklyn Bridge cross?",
        "In which country is the Limerick Lake?",
    ]

    def annotate_batch():
        return [pipeline.annotate(text) for text in batch]

    sentences = benchmark(annotate_batch)
    assert all(s.graph.root is not None for s in sentences)

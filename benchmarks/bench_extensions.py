"""X1 — quantifying the paper's "room for improvement" (section 6).

Reruns the Table 2 evaluation with each future-work extension enabled,
measuring how much recall each one recovers while precision holds:

* imperative normalisation  ("Give me all ..." -> wh-grammar)
* boolean ASK generation    (yes/no questions)
* data-property patterns    (the section 5 research gap: "When ..." dates)

    pytest benchmarks/bench_extensions.py --benchmark-only
"""

import pytest

from repro.core import PipelineConfig, QuestionAnsweringSystem
from repro.qald import QaldEvaluator, load_questions


@pytest.fixture(scope="module")
def questions():
    return load_questions()


def _evaluate(kb, config, questions):
    system = QuestionAnsweringSystem.over(kb, config)
    return QaldEvaluator(kb, system).evaluate(questions)


def _show(name, result):
    print(
        f"{name:26s} answered={result.answered:2d} correct={result.correct:2d} "
        f"P={result.paper_precision:.2f} R={result.paper_recall:.2f} "
        f"F1={result.paper_f1:.2f}"
    )


@pytest.mark.parametrize("extension", ["booleans", "data-patterns", "imperatives"])
def test_x1_single_extension(benchmark, kb, questions, extension):
    config = {
        "booleans": PipelineConfig(enable_boolean_questions=True),
        "data-patterns": PipelineConfig(enable_data_property_patterns=True),
        "imperatives": PipelineConfig(enable_imperatives=True),
    }[extension]
    faithful = _evaluate(kb, PipelineConfig(), questions)
    extended = benchmark(_evaluate, kb, config, questions)
    print()
    _show("faithful (Table 2)", faithful)
    _show(f"X1 +{extension}", extended)
    # Each extension recovers coverage without losing precision.
    assert extended.correct >= faithful.correct
    assert extended.answered >= faithful.answered
    assert extended.paper_precision >= faithful.paper_precision - 0.01


def test_x1_all_extensions(benchmark, kb, questions):
    faithful = _evaluate(kb, PipelineConfig(), questions)
    extended = benchmark(
        _evaluate, kb, PipelineConfig().with_extensions(), questions
    )
    print()
    _show("faithful (Table 2)", faithful)
    _show("X1 all extensions", extended)
    # The combined extensions must move the system decisively: ~half the
    # benchmark answered at equal-or-better precision.
    assert extended.answered >= 25
    assert extended.correct >= 22
    assert extended.paper_f1 >= faithful.paper_f1 + 0.10
    assert extended.paper_precision >= faithful.paper_precision

"""P2 — PATTY mining scalability with corpus size.

Measures the full mining pipeline (corpus verbalisation, distant-
supervision extraction, aggregation, store construction) as the corpus
grows, plus the prefix-tree subsumption machinery in isolation.

    pytest benchmarks/bench_patty_mining.py --benchmark-only
"""

import pytest

from repro.patty import (
    PatternExtractor,
    PatternTaxonomy,
    PrefixTree,
    build_pattern_store,
    generate_corpus,
)

SENTENCES_PER_FACT = [1, 3, 9]


@pytest.mark.parametrize("spf", SENTENCES_PER_FACT, ids=lambda n: f"{n}x")
def test_full_mining_pipeline(benchmark, kb, spf):
    store = benchmark(build_pattern_store, kb, spf)
    # The headline artefact must be stable at every scale.
    assert store.properties_for("die")[0][0] == "deathPlace"
    assert store.properties_for("bear")[0][0] == "birthPlace"
    print(f"\nspf={spf}: {len(store)} indexed words, "
          f"{len(store.patterns())} aggregated patterns")


@pytest.mark.parametrize("spf", SENTENCES_PER_FACT, ids=lambda n: f"{n}x")
def test_extraction_only(benchmark, kb, spf):
    corpus = generate_corpus(kb, sentences_per_fact=spf)
    extractor = PatternExtractor(kb)
    occurrences = benchmark(extractor.extract, corpus)
    assert occurrences


def test_corpus_generation(benchmark, kb):
    corpus = benchmark(generate_corpus, kb, 3)
    assert len(corpus) > 500


def test_taxonomy_construction(benchmark, kb):
    corpus = generate_corpus(kb, sentences_per_fact=5)
    extractor = PatternExtractor(kb)
    aggregates = extractor.aggregate(extractor.extract(corpus))

    taxonomy = benchmark(PatternTaxonomy, aggregates.values())
    clusters = taxonomy.synonym_sets()
    assert clusters
    print(f"\n{len(taxonomy.patterns())} patterns, {len(clusters)} synonym sets")


def test_prefix_tree_operations(benchmark):
    """Insert + subsumption query throughput on a synthetic pattern load."""
    patterns = [
        (tuple(f"w{i % 7}" for i in range(start, start + length)),
         {(f"s{j}", f"o{j}") for j in range(start % 5 + 1)})
        for start in range(200)
        for length in (1, 2, 3)
    ]

    def build_and_query():
        tree = PrefixTree()
        for tokens, support in patterns:
            tree.insert(tokens, support)
        hits = 0
        for tokens, __ in patterns[:100]:
            if tree.inclusion(tokens, patterns[0][0]) > 0:
                hits += 1
        return tree, hits

    tree, __ = benchmark(build_and_query)
    assert len(tree) > 0

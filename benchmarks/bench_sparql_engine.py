"""P1 — SPARQL engine performance on generated knowledge bases.

Measures the store and executor on DBpedia-shaped synthetic data at
growing scales: point lookups, star joins, path joins, filter scans and
aggregation.  Demonstrates that the selectivity-ordered planner keeps join
cost tied to the small relation, not the scan.

    pytest benchmarks/bench_sparql_engine.py --benchmark-only

Run as a script for the id-space vs term-space engine comparison (see
docs/performance.md, "Engine architecture"): both engines answer the same
join-heavy workload with result caching off, answers are checked for
equality as multisets, and a BENCH JSON artifact reports per-query and
aggregate speedups::

    PYTHONPATH=src python benchmarks/bench_sparql_engine.py \
        --repeats 30 --output BENCH_sparql_engine.json

``--quick`` shrinks the KB and repeat count for the CI smoke job.
"""

import argparse
import gc
import json
import sys
import time
from collections import Counter

import pytest

from repro.kb import load_synthetic_kb

SCALES = [1, 4, 16]


@pytest.fixture(scope="module", params=SCALES, ids=lambda s: f"scale{s}")
def synthetic(request):
    kb = load_synthetic_kb(scale=request.param)
    return request.param, kb


def test_point_lookup(benchmark, synthetic):
    scale, kb = synthetic
    query = "SELECT ?p WHERE { res:SynWriter_0 dbont:birthPlace ?p }"
    result = benchmark(kb.select, query)
    assert len(result) == 1


def test_type_scan(benchmark, synthetic):
    scale, kb = synthetic
    result = benchmark(kb.select, "SELECT ?b WHERE { ?b a dbont:Novel }")
    assert len(result) == 300 * scale


def test_star_join(benchmark, synthetic):
    scale, kb = synthetic
    query = """
        SELECT ?b ?p WHERE {
          ?b a dbont:Novel .
          ?b dbont:author res:SynWriter_1 .
          ?b dbont:numberOfPages ?p .
        }
    """
    result = benchmark(kb.select, query)
    assert len(result) == 3


def test_path_join(benchmark, synthetic):
    scale, kb = synthetic
    query = """
        SELECT ?b WHERE {
          ?b dbont:author ?w .
          ?w dbont:birthPlace ?c .
          ?c dbont:country res:SynCountry_0 .
        }
    """
    result = benchmark(kb.select, query)
    assert len(result) > 0


def test_filter_scan(benchmark, synthetic):
    scale, kb = synthetic
    query = """
        SELECT ?b WHERE {
          ?b dbont:numberOfPages ?p FILTER (?p > 1000)
        }
    """
    result = benchmark(kb.select, query)
    assert len(result) >= 0


def test_count_aggregate(benchmark, synthetic):
    scale, kb = synthetic
    result = benchmark(kb.select, "SELECT COUNT(?b) WHERE { ?b a dbont:Book }")
    assert result.scalar() == 300 * scale


def test_order_by_limit(benchmark, synthetic):
    scale, kb = synthetic
    query = """
        SELECT ?c WHERE { ?c a dbont:City . ?c dbont:populationTotal ?p }
        ORDER BY DESC(?p) LIMIT 5
    """
    result = benchmark(kb.select, query)
    assert len(result) == 5


def test_graph_load(benchmark, synthetic):
    """Store construction throughput (dictionary encoding + 3 indexes)."""
    scale, kb = synthetic
    triples = list(kb.graph)

    def rebuild():
        from repro.rdf import Graph
        return Graph(triples)

    graph = benchmark(rebuild)
    assert len(graph) == len(kb.graph)


# ---------------------------------------------------------------------------
# The 500k-triple end of the P1 range: built once, queried with single-round
# pedantic timing (construction dominates; queries must stay index-bound).
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def big_kb():
    return load_synthetic_kb(scale=100)  # ~460k triples


def test_big_scale_point_lookup(benchmark, big_kb):
    result = benchmark.pedantic(
        big_kb.select,
        args=("SELECT ?p WHERE { res:SynWriter_4999 dbont:birthPlace ?p }",),
        rounds=20,
    )
    assert len(result) == 1


def test_big_scale_star_join(benchmark, big_kb):
    query = """
        SELECT ?b ?p WHERE {
          ?b a dbont:Novel .
          ?b dbont:author res:SynWriter_77 .
          ?b dbont:numberOfPages ?p .
        }
    """
    result = benchmark.pedantic(big_kb.select, args=(query,), rounds=10)
    assert len(result) == 3


def test_big_scale_path_join(benchmark, big_kb):
    query = """
        SELECT ?b WHERE {
          ?b dbont:author ?w .
          ?w dbont:birthPlace ?c .
          ?c dbont:country res:SynCountry_1 .
        }
    """
    result = benchmark.pedantic(big_kb.select, args=(query,), rounds=5)
    assert len(result) > 0


def test_big_scale_count(benchmark, big_kb):
    result = benchmark.pedantic(
        big_kb.select,
        args=("SELECT COUNT(?b) WHERE { ?b a dbont:Book }",),
        rounds=3,
    )
    assert result.scalar() == 30000


# ---------------------------------------------------------------------------
# Script mode: term-space oracle vs row id-space vs columnar id-space
# ---------------------------------------------------------------------------

#: The join-heavy comparison workload.  Multi-pattern joins are where the
#: term-space evaluator pays its per-row decode + dict-copy tax and where
#: the columnar engine amortises per-row python into whole-column batch
#: operators, so they carry the speedup acceptance gates; the
#: single-pattern scans are included to show neither engine regresses the
#: easy cases.
WORKLOAD = [
    ("star_join", """
        SELECT ?b ?p WHERE {
          ?b a dbont:Novel .
          ?b dbont:author res:SynWriter_1 .
          ?b dbont:numberOfPages ?p .
        }
    """, True),
    ("path_join", """
        SELECT ?b WHERE {
          ?b dbont:author ?w .
          ?w dbont:birthPlace ?c .
          ?c dbont:country res:SynCountry_0 .
        }
    """, True),
    ("type_author_join", """
        SELECT ?b ?w WHERE {
          ?b a dbont:Novel .
          ?b dbont:author ?w .
        }
    """, True),
    ("type_scan", "SELECT ?b WHERE { ?b a dbont:Novel }", False),
    ("filter_scan", """
        SELECT ?b WHERE {
          ?b dbont:numberOfPages ?p FILTER (?p > 1000)
        }
    """, False),
    ("order_by_limit", """
        SELECT ?c WHERE { ?c a dbont:City . ?c dbont:populationTotal ?p }
        ORDER BY DESC(?p) LIMIT 5
    """, True),
    ("count_aggregate", "SELECT COUNT(?b) WHERE { ?b a dbont:Book }", False),
]

#: (mode key, engine constructor kwargs).  ``term`` is the original
#: term-space evaluator, ``row`` the row-tuple id-space engine, and
#: ``columnar`` the batch engine (the production default).
MODES = [
    ("term", {"idspace": False}),
    ("row", {"idspace": True, "columnar": False}),
    ("columnar", {"idspace": True, "columnar": True}),
]


def _time_engine(engine, ast, repeats: int) -> tuple[float, object]:
    engine.query(ast)  # warmup: compile the plan, touch the indexes
    # Cyclic GC pauses (~20ms on the synthetic store's object graph) would
    # otherwise land in whichever timing window crosses the gen-2
    # allocation threshold and swamp sub-millisecond queries.
    gc.collect()
    gc.disable()
    try:
        result = None
        start = time.perf_counter()
        for _ in range(repeats):
            result = engine.query(ast)
        return time.perf_counter() - start, result
    finally:
        gc.enable()


def run_comparison(scale: int, repeats: int) -> dict:
    from repro.sparql.engine import SparqlEngine
    from repro.sparql.parser import parse_query

    kb = load_synthetic_kb(scale=scale)
    # Result caching off in every engine: this measures evaluation, not
    # memoization.  The id-space engines still compile plans (that is part
    # of the engine, and the plan cache amortises it exactly as in
    # production).
    engines = {
        mode: SparqlEngine(kb.graph, cache_size=0, **kwargs)
        for mode, kwargs in MODES
    }

    queries: list[dict] = []
    identical = True
    join_totals = {mode: 0.0 for mode, __ in MODES}
    for name, text, join_heavy in WORKLOAD:
        ast = parse_query(text)
        timings = {}
        results = {}
        for mode, __ in MODES:
            timings[mode], results[mode] = _time_engine(
                engines[mode], ast, repeats
            )
        # ORDER BY is deterministic across engines (stable sort + id-order
        # tie-break, docs/performance.md), so ordered results compare
        # byte-for-byte; unordered results compare as multisets (the
        # engines enumerate joins differently).
        ordered = bool(getattr(ast, "order_by", ()))
        reference = results["term"]
        if ordered:
            same = all(
                results[mode].rows == reference.rows for mode, __ in MODES
            )
        else:
            expected = Counter(reference.rows)
            same = all(
                Counter(results[mode].rows) == expected for mode, __ in MODES
            )
        identical = identical and same
        if join_heavy:
            for mode, __ in MODES:
                join_totals[mode] += timings[mode]

        def ratio(num: float, den: float) -> float:
            return round(num / den, 2) if den else 0.0

        queries.append({
            "query": name,
            "join_heavy": join_heavy,
            "rows": len(reference.rows),
            "termspace_seconds": round(timings["term"], 4),
            "rowspace_seconds": round(timings["row"], 4),
            "columnar_seconds": round(timings["columnar"], 4),
            "row_vs_term_speedup": ratio(timings["term"], timings["row"]),
            "columnar_vs_row_speedup": ratio(
                timings["row"], timings["columnar"]
            ),
            "columnar_vs_term_speedup": ratio(
                timings["term"], timings["columnar"]
            ),
            "identical": same,
        })

    def aggregate(num_mode: str, den_mode: str) -> float:
        denominator = join_totals[den_mode]
        return round(join_totals[num_mode] / denominator, 2) if denominator else 0.0

    return {
        "benchmark": "sparql_engine_columnar",
        "scale": scale,
        "repeats": repeats,
        "identical_answers": identical,
        "join_heavy_speedup_row_vs_term": aggregate("term", "row"),
        "join_heavy_speedup_columnar_vs_row": aggregate("row", "columnar"),
        "join_heavy_speedup_columnar_vs_term": aggregate("term", "columnar"),
        # Backward-compatible key: best engine vs the term-space oracle.
        "join_heavy_speedup": aggregate("term", "columnar"),
        "columnar_not_slower_than_row": (
            join_totals["columnar"] <= join_totals["row"]
        ),
        "queries": queries,
    }


def _print_table(report: dict) -> None:
    header = (
        f"{'query':<20} {'rows':>6} {'term (s)':>9} {'row (s)':>9} "
        f"{'col (s)':>9} {'col/row':>8} {'col/term':>9}  ok"
    )
    print(header)
    print("-" * len(header))
    for entry in report["queries"]:
        print(
            f"{entry['query']:<20} {entry['rows']:>6} "
            f"{entry['termspace_seconds']:>9.4f} "
            f"{entry['rowspace_seconds']:>9.4f} "
            f"{entry['columnar_seconds']:>9.4f} "
            f"{entry['columnar_vs_row_speedup']:>7.2f}x "
            f"{entry['columnar_vs_term_speedup']:>8.2f}x  "
            f"{'yes' if entry['identical'] else 'NO'}"
        )
    print(
        "join-heavy aggregate: "
        f"row {report['join_heavy_speedup_row_vs_term']:.2f}x over term, "
        f"columnar {report['join_heavy_speedup_columnar_vs_row']:.2f}x over row, "
        f"{report['join_heavy_speedup_columnar_vs_term']:.2f}x over term"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare the term-space, row id-space, and columnar engines."
    )
    parser.add_argument("--scale", type=int, default=16,
                        help="synthetic KB scale factor (default 16)")
    parser.add_argument("--repeats", type=int, default=30,
                        help="evaluations per query per engine (default 30)")
    parser.add_argument("--output", default=None,
                        help="write the BENCH JSON artifact here")
    parser.add_argument("--quick", action="store_true",
                        help="small KB + few repeats: CI smoke, no speedup gate")
    args = parser.parse_args(argv)

    scale = 2 if args.quick else args.scale
    repeats = 5 if args.quick else args.repeats
    report = run_comparison(scale, repeats)
    report["quick"] = args.quick

    _print_table(report)
    print("BENCH " + json.dumps(report))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")

    if not report["identical_answers"]:
        print("ANSWER MISMATCH between engines", file=sys.stderr)
        return 1
    if not report["columnar_not_slower_than_row"]:
        print(
            "REGRESSION: columnar slower than the row engine on the "
            "join-heavy group",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

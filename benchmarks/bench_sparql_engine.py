"""P1 — SPARQL engine performance on generated knowledge bases.

Measures the store and executor on DBpedia-shaped synthetic data at
growing scales: point lookups, star joins, path joins, filter scans and
aggregation.  Demonstrates that the selectivity-ordered planner keeps join
cost tied to the small relation, not the scan.

    pytest benchmarks/bench_sparql_engine.py --benchmark-only
"""

import pytest

from repro.kb import load_synthetic_kb

SCALES = [1, 4, 16]


@pytest.fixture(scope="module", params=SCALES, ids=lambda s: f"scale{s}")
def synthetic(request):
    kb = load_synthetic_kb(scale=request.param)
    return request.param, kb


def test_point_lookup(benchmark, synthetic):
    scale, kb = synthetic
    query = "SELECT ?p WHERE { res:SynWriter_0 dbont:birthPlace ?p }"
    result = benchmark(kb.select, query)
    assert len(result) == 1


def test_type_scan(benchmark, synthetic):
    scale, kb = synthetic
    result = benchmark(kb.select, "SELECT ?b WHERE { ?b a dbont:Novel }")
    assert len(result) == 300 * scale


def test_star_join(benchmark, synthetic):
    scale, kb = synthetic
    query = """
        SELECT ?b ?p WHERE {
          ?b a dbont:Novel .
          ?b dbont:author res:SynWriter_1 .
          ?b dbont:numberOfPages ?p .
        }
    """
    result = benchmark(kb.select, query)
    assert len(result) == 3


def test_path_join(benchmark, synthetic):
    scale, kb = synthetic
    query = """
        SELECT ?b WHERE {
          ?b dbont:author ?w .
          ?w dbont:birthPlace ?c .
          ?c dbont:country res:SynCountry_0 .
        }
    """
    result = benchmark(kb.select, query)
    assert len(result) > 0


def test_filter_scan(benchmark, synthetic):
    scale, kb = synthetic
    query = """
        SELECT ?b WHERE {
          ?b dbont:numberOfPages ?p FILTER (?p > 1000)
        }
    """
    result = benchmark(kb.select, query)
    assert len(result) >= 0


def test_count_aggregate(benchmark, synthetic):
    scale, kb = synthetic
    result = benchmark(kb.select, "SELECT COUNT(?b) WHERE { ?b a dbont:Book }")
    assert result.scalar() == 300 * scale


def test_order_by_limit(benchmark, synthetic):
    scale, kb = synthetic
    query = """
        SELECT ?c WHERE { ?c a dbont:City . ?c dbont:populationTotal ?p }
        ORDER BY DESC(?p) LIMIT 5
    """
    result = benchmark(kb.select, query)
    assert len(result) == 5


def test_graph_load(benchmark, synthetic):
    """Store construction throughput (dictionary encoding + 3 indexes)."""
    scale, kb = synthetic
    triples = list(kb.graph)

    def rebuild():
        from repro.rdf import Graph
        return Graph(triples)

    graph = benchmark(rebuild)
    assert len(graph) == len(kb.graph)


# ---------------------------------------------------------------------------
# The 500k-triple end of the P1 range: built once, queried with single-round
# pedantic timing (construction dominates; queries must stay index-bound).
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def big_kb():
    return load_synthetic_kb(scale=100)  # ~460k triples


def test_big_scale_point_lookup(benchmark, big_kb):
    result = benchmark.pedantic(
        big_kb.select,
        args=("SELECT ?p WHERE { res:SynWriter_4999 dbont:birthPlace ?p }",),
        rounds=20,
    )
    assert len(result) == 1


def test_big_scale_star_join(benchmark, big_kb):
    query = """
        SELECT ?b ?p WHERE {
          ?b a dbont:Novel .
          ?b dbont:author res:SynWriter_77 .
          ?b dbont:numberOfPages ?p .
        }
    """
    result = benchmark.pedantic(big_kb.select, args=(query,), rounds=10)
    assert len(result) == 3


def test_big_scale_path_join(benchmark, big_kb):
    query = """
        SELECT ?b WHERE {
          ?b dbont:author ?w .
          ?w dbont:birthPlace ?c .
          ?c dbont:country res:SynCountry_1 .
        }
    """
    result = benchmark.pedantic(big_kb.select, args=(query,), rounds=5)
    assert len(result) > 0


def test_big_scale_count(benchmark, big_kb):
    result = benchmark.pedantic(
        big_kb.select,
        args=("SELECT COUNT(?b) WHERE { ?b a dbont:Book }",),
        rounds=3,
    )
    assert result.scalar() == 30000

"""P1 — SPARQL engine performance on generated knowledge bases.

Measures the store and executor on DBpedia-shaped synthetic data at
growing scales: point lookups, star joins, path joins, filter scans and
aggregation.  Demonstrates that the selectivity-ordered planner keeps join
cost tied to the small relation, not the scan.

    pytest benchmarks/bench_sparql_engine.py --benchmark-only

Run as a script for the id-space vs term-space engine comparison (see
docs/performance.md, "Engine architecture"): both engines answer the same
join-heavy workload with result caching off, answers are checked for
equality as multisets, and a BENCH JSON artifact reports per-query and
aggregate speedups::

    PYTHONPATH=src python benchmarks/bench_sparql_engine.py \
        --repeats 30 --output BENCH_sparql_engine.json

``--quick`` shrinks the KB and repeat count for the CI smoke job.
"""

import argparse
import gc
import json
import sys
import time
from collections import Counter

import pytest

from repro.kb import load_synthetic_kb

SCALES = [1, 4, 16]


@pytest.fixture(scope="module", params=SCALES, ids=lambda s: f"scale{s}")
def synthetic(request):
    kb = load_synthetic_kb(scale=request.param)
    return request.param, kb


def test_point_lookup(benchmark, synthetic):
    scale, kb = synthetic
    query = "SELECT ?p WHERE { res:SynWriter_0 dbont:birthPlace ?p }"
    result = benchmark(kb.select, query)
    assert len(result) == 1


def test_type_scan(benchmark, synthetic):
    scale, kb = synthetic
    result = benchmark(kb.select, "SELECT ?b WHERE { ?b a dbont:Novel }")
    assert len(result) == 300 * scale


def test_star_join(benchmark, synthetic):
    scale, kb = synthetic
    query = """
        SELECT ?b ?p WHERE {
          ?b a dbont:Novel .
          ?b dbont:author res:SynWriter_1 .
          ?b dbont:numberOfPages ?p .
        }
    """
    result = benchmark(kb.select, query)
    assert len(result) == 3


def test_path_join(benchmark, synthetic):
    scale, kb = synthetic
    query = """
        SELECT ?b WHERE {
          ?b dbont:author ?w .
          ?w dbont:birthPlace ?c .
          ?c dbont:country res:SynCountry_0 .
        }
    """
    result = benchmark(kb.select, query)
    assert len(result) > 0


def test_filter_scan(benchmark, synthetic):
    scale, kb = synthetic
    query = """
        SELECT ?b WHERE {
          ?b dbont:numberOfPages ?p FILTER (?p > 1000)
        }
    """
    result = benchmark(kb.select, query)
    assert len(result) >= 0


def test_count_aggregate(benchmark, synthetic):
    scale, kb = synthetic
    result = benchmark(kb.select, "SELECT COUNT(?b) WHERE { ?b a dbont:Book }")
    assert result.scalar() == 300 * scale


def test_order_by_limit(benchmark, synthetic):
    scale, kb = synthetic
    query = """
        SELECT ?c WHERE { ?c a dbont:City . ?c dbont:populationTotal ?p }
        ORDER BY DESC(?p) LIMIT 5
    """
    result = benchmark(kb.select, query)
    assert len(result) == 5


def test_graph_load(benchmark, synthetic):
    """Store construction throughput (dictionary encoding + 3 indexes)."""
    scale, kb = synthetic
    triples = list(kb.graph)

    def rebuild():
        from repro.rdf import Graph
        return Graph(triples)

    graph = benchmark(rebuild)
    assert len(graph) == len(kb.graph)


# ---------------------------------------------------------------------------
# The 500k-triple end of the P1 range: built once, queried with single-round
# pedantic timing (construction dominates; queries must stay index-bound).
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def big_kb():
    return load_synthetic_kb(scale=100)  # ~460k triples


def test_big_scale_point_lookup(benchmark, big_kb):
    result = benchmark.pedantic(
        big_kb.select,
        args=("SELECT ?p WHERE { res:SynWriter_4999 dbont:birthPlace ?p }",),
        rounds=20,
    )
    assert len(result) == 1


def test_big_scale_star_join(benchmark, big_kb):
    query = """
        SELECT ?b ?p WHERE {
          ?b a dbont:Novel .
          ?b dbont:author res:SynWriter_77 .
          ?b dbont:numberOfPages ?p .
        }
    """
    result = benchmark.pedantic(big_kb.select, args=(query,), rounds=10)
    assert len(result) == 3


def test_big_scale_path_join(benchmark, big_kb):
    query = """
        SELECT ?b WHERE {
          ?b dbont:author ?w .
          ?w dbont:birthPlace ?c .
          ?c dbont:country res:SynCountry_1 .
        }
    """
    result = benchmark.pedantic(big_kb.select, args=(query,), rounds=5)
    assert len(result) > 0


def test_big_scale_count(benchmark, big_kb):
    result = benchmark.pedantic(
        big_kb.select,
        args=("SELECT COUNT(?b) WHERE { ?b a dbont:Book }",),
        rounds=3,
    )
    assert result.scalar() == 30000


# ---------------------------------------------------------------------------
# Script mode: id-space compiled engine vs term-space oracle
# ---------------------------------------------------------------------------

#: The join-heavy comparison workload.  Multi-pattern joins are where the
#: term-space evaluator pays its per-row decode + dict-copy tax, so they
#: carry the speedup acceptance gate; the single-pattern scans are included
#: to show the id-space engine does not regress the easy cases.
WORKLOAD = [
    ("star_join", """
        SELECT ?b ?p WHERE {
          ?b a dbont:Novel .
          ?b dbont:author res:SynWriter_1 .
          ?b dbont:numberOfPages ?p .
        }
    """, True),
    ("path_join", """
        SELECT ?b WHERE {
          ?b dbont:author ?w .
          ?w dbont:birthPlace ?c .
          ?c dbont:country res:SynCountry_0 .
        }
    """, True),
    ("type_author_join", """
        SELECT ?b ?w WHERE {
          ?b a dbont:Novel .
          ?b dbont:author ?w .
        }
    """, True),
    ("type_scan", "SELECT ?b WHERE { ?b a dbont:Novel }", False),
    ("filter_scan", """
        SELECT ?b WHERE {
          ?b dbont:numberOfPages ?p FILTER (?p > 1000)
        }
    """, False),
    ("order_by_limit", """
        SELECT ?c WHERE { ?c a dbont:City . ?c dbont:populationTotal ?p }
        ORDER BY DESC(?p) LIMIT 5
    """, True),
    ("count_aggregate", "SELECT COUNT(?b) WHERE { ?b a dbont:Book }", False),
]


def _time_engine(engine, ast, repeats: int) -> tuple[float, object]:
    engine.query(ast)  # warmup: compile the plan, touch the indexes
    # Cyclic GC pauses (~20ms on the synthetic store's object graph) would
    # otherwise land in whichever timing window crosses the gen-2
    # allocation threshold and swamp sub-millisecond queries.
    gc.collect()
    gc.disable()
    try:
        result = None
        start = time.perf_counter()
        for _ in range(repeats):
            result = engine.query(ast)
        return time.perf_counter() - start, result
    finally:
        gc.enable()


def run_comparison(scale: int, repeats: int) -> dict:
    from repro.rdf.terms import Variable
    from repro.sparql.engine import SparqlEngine
    from repro.sparql.parser import parse_query

    kb = load_synthetic_kb(scale=scale)
    # Result caching off in both engines: this measures evaluation, not
    # memoization.  The id-space engine still compiles plans (that is part
    # of the engine, and the plan cache amortises it exactly as in
    # production).
    idspace = SparqlEngine(kb.graph, cache_size=0, idspace=True)
    termspace = SparqlEngine(kb.graph, cache_size=0, idspace=False)

    queries: list[dict] = []
    identical = True
    join_id_total = join_term_total = 0.0
    for name, text, join_heavy in WORKLOAD:
        ast = parse_query(text)
        term_seconds, term_result = _time_engine(termspace, ast, repeats)
        id_seconds, id_result = _time_engine(idspace, ast, repeats)
        # ORDER/LIMIT queries may legitimately break ties differently;
        # everything else must agree as a row multiset.
        ordered = bool(getattr(ast, "order_by", ()))
        if ordered:
            same = len(id_result.rows) == len(term_result.rows)
        else:
            same = Counter(id_result.rows) == Counter(term_result.rows)
        identical = identical and same
        if join_heavy:
            join_id_total += id_seconds
            join_term_total += term_seconds
        queries.append({
            "query": name,
            "join_heavy": join_heavy,
            "rows": len(id_result.rows),
            "termspace_seconds": round(term_seconds, 4),
            "idspace_seconds": round(id_seconds, 4),
            "speedup": round(term_seconds / id_seconds, 2) if id_seconds else 0.0,
            "identical": same,
        })

    join_speedup = join_term_total / join_id_total if join_id_total else 0.0
    return {
        "benchmark": "sparql_engine_idspace",
        "scale": scale,
        "repeats": repeats,
        "identical_answers": identical,
        "join_heavy_speedup": round(join_speedup, 2),
        "queries": queries,
    }


def _print_table(report: dict) -> None:
    header = f"{'query':<20} {'rows':>6} {'term (s)':>10} {'id (s)':>10} {'speedup':>8}  ok"
    print(header)
    print("-" * len(header))
    for entry in report["queries"]:
        print(
            f"{entry['query']:<20} {entry['rows']:>6} "
            f"{entry['termspace_seconds']:>10.4f} {entry['idspace_seconds']:>10.4f} "
            f"{entry['speedup']:>7.2f}x  {'yes' if entry['identical'] else 'NO'}"
        )
    print(f"join-heavy aggregate speedup: {report['join_heavy_speedup']:.2f}x")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare the id-space compiled engine to the term-space oracle."
    )
    parser.add_argument("--scale", type=int, default=16,
                        help="synthetic KB scale factor (default 16)")
    parser.add_argument("--repeats", type=int, default=30,
                        help="evaluations per query per engine (default 30)")
    parser.add_argument("--output", default=None,
                        help="write the BENCH JSON artifact here")
    parser.add_argument("--quick", action="store_true",
                        help="small KB + few repeats: CI smoke, no speedup gate")
    args = parser.parse_args(argv)

    scale = 2 if args.quick else args.scale
    repeats = 3 if args.quick else args.repeats
    report = run_comparison(scale, repeats)
    report["quick"] = args.quick

    _print_table(report)
    print("BENCH " + json.dumps(report))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")

    if not report["identical_answers"]:
        print("ANSWER MISMATCH between id-space and term-space engines",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

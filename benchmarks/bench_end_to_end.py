"""P3 — end-to-end question latency.

Per-question wall time for each question shape the pipeline covers, plus
the one-off resource-construction cost (pattern mining + WordNet maps).

    pytest benchmarks/bench_end_to_end.py --benchmark-only
"""

import pytest

from repro.core import QuestionAnsweringSystem

QUESTIONS = {
    "passive-wh": "Which book is written by Orhan Pamuk?",
    "howadj": "How tall is Michael Jordan?",
    "where-do": "Where did Abraham Lincoln die?",
    "role-copula": "Who is the mayor of Berlin?",
    "howmany": "How many pages does War and Peace have?",
    "fronted-object": "Which river does the Brooklyn Bridge cross?",
    "unanswerable": "Is Frank Herbert still alive?",
}


@pytest.mark.parametrize("shape", list(QUESTIONS), ids=list(QUESTIONS))
def test_question_latency(benchmark, qa, shape):
    question = QUESTIONS[shape]
    answer = benchmark(qa.answer, question)
    if shape == "unanswerable":
        assert not answer.answered
    else:
        assert answer.answered, answer.failure


def test_system_construction(benchmark, kb):
    """One-off cost: mining patterns + building the WordNet maps."""
    system = benchmark(QuestionAnsweringSystem.over, kb)
    assert system.answer("How tall is Michael Jordan?").answered


def test_kb_construction(benchmark):
    from repro.kb import load_curated_kb
    kb = benchmark(load_curated_kb)
    assert len(kb) > 3000

"""NED accuracy and throughput: degree vs personalised-PageRank centrality.

Disambiguation gold set: ambiguous surface forms with a context mention
that settles the reading (the section 2.2.5 task).  Measures accuracy of
both centrality methods and the per-mention latency.

    pytest benchmarks/bench_ned.py --benchmark-only
"""

import pytest

from repro.ned import Disambiguator
from repro.rdf import DBR

#: (ambiguous surface, context surface or None, expected entity local name)
GOLD = [
    ("Michael Jordan", None, "Michael_Jordan"),
    ("Michael Jordan", "Chicago Bulls", "Michael_Jordan"),
    ("Berlin", None, "Berlin"),
    ("Berlin", "Germany", "Berlin"),
    ("Berlin", "New Hampshire", "Berlin_New_Hampshire"),
    ("Paris", None, "Paris"),
    ("Paris", "France", "Paris"),
    ("Paris", "Texas", "Paris_Texas"),
    ("Dune", "Frank Herbert", "Dune_novel"),
    ("Dune", "David Lynch", "Dune_film"),
    ("Anne Hathaway", "William Shakespeare", "Anne_Hathaway_Shakespeare"),
    ("Anne Hathaway", "Brooklyn", "Anne_Hathaway_actress"),
]


def _mentions(kb, surface, context):
    mentions = [(surface, kb.surface_index.candidates(surface))]
    if context is not None:
        mentions.append((context, kb.surface_index.candidates(context)))
    return mentions


def _accuracy(kb, method):
    ned = Disambiguator(kb, method=method)
    correct = 0
    failures = []
    for surface, context, expected in GOLD:
        results = ned.disambiguate(_mentions(kb, surface, context))
        chosen = results[0].entity
        if chosen == DBR[expected]:
            correct += 1
        else:
            failures.append((surface, context, chosen.local_name, expected))
    return correct / len(GOLD), failures


@pytest.mark.parametrize("method", ["degree", "pagerank"])
def test_disambiguation_accuracy(benchmark, kb, method):
    accuracy, failures = benchmark(_accuracy, kb, method)
    print(f"\n{method}: accuracy {accuracy:.0%} on {len(GOLD)} cases")
    for surface, context, chosen, expected in failures:
        print(f"  MISS {surface!r} (ctx {context!r}): {chosen} != {expected}")
    if method == "degree":
        # The pipeline's method must nail the gold set.
        assert accuracy == 1.0
    else:
        # Finding: personalised PageRank *underperforms* direct-link
        # agreement on sparse page-link graphs — teleport mass pools in
        # low-degree loops (tiny towns, film<->director pairs) instead of
        # following the context mention.  Pinned so the gap stays visible.
        assert 0.4 <= accuracy < 1.0


def test_degree_beats_pagerank(kb):
    degree_accuracy, __ = _accuracy(kb, "degree")
    pagerank_accuracy, __ = _accuracy(kb, "pagerank")
    assert degree_accuracy > pagerank_accuracy


def test_single_mention_latency(benchmark, kb):
    ned = Disambiguator(kb)
    result = benchmark(ned.resolve, "Michael Jordan")
    assert result.entity == DBR.Michael_Jordan

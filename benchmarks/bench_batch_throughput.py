"""P4 — batch answering throughput: cached vs. uncached seed path.

Measures repeated QALD-style runs end to end — the workload the caching
layers target: the SPARQL result cache, the similarity memo, candidate
deduplication and branch-and-bound product pruning, plus the
``answer_many()`` thread-pool fan-out.

Two configurations answer the identical question stream:

* **baseline** — the seed's cold path: term-space query evaluation, query
  cache off, similarity memo off, no product pruning, questions answered
  sequentially;
* **optimized** — everything on (including the id-space compiled engine),
  batch executed via ``answer_many()``.

The script asserts both produce identical answers, then emits a BENCH
JSON artifact (see ``BENCH_batch.json`` at the repo root for the recorded
numbers)::

    PYTHONPATH=src python benchmarks/bench_batch_throughput.py \
        --repeats 5 --output BENCH_batch.json

``--quick`` runs a two-question, one-repeat smoke (wired into the tier-1
test suite via ``tests/perf/test_batch.py``) that checks the machinery,
not the speedup.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core import PipelineConfig, QuestionAnsweringSystem
from repro.kb import load_curated_kb
from repro.qald.devset import load_dev_questions


def build_system(
    config: PipelineConfig, query_cache: bool, idspace: bool = True
) -> QuestionAnsweringSystem:
    """A fresh KB + system so no cache warmth leaks between configurations."""
    kb = load_curated_kb()
    kb.engine.cache_enabled = query_cache
    kb.engine.idspace = idspace
    return QuestionAnsweringSystem.over(kb, config)


def answer_signature(answer) -> tuple:
    """Everything observable about one answer, for equality checks."""
    return (
        answer.question,
        tuple(term.n3() for term in answer.answers),
        answer.query.to_sparql() if answer.query is not None else None,
        answer.expected_type.value,
        answer.failure,
        answer.boolean,
    )


def run_baseline(questions: list[str], repeats: int) -> tuple[float, list[tuple]]:
    # The seed's cold path evaluated queries in term space; keeping the
    # baseline on that evaluator makes the identical-answers check a
    # cross-engine differential test on the real question stream.
    system = build_system(
        PipelineConfig().without_perf_caches(), query_cache=False, idspace=False
    )
    start = time.perf_counter()
    signatures: list[tuple] = []
    for _ in range(repeats):
        signatures = [answer_signature(system.answer(q)) for q in questions]
    return time.perf_counter() - start, signatures


def run_optimized(
    questions: list[str], repeats: int, workers: int
) -> tuple[float, list[tuple], dict]:
    system = build_system(PipelineConfig(), query_cache=True)
    start = time.perf_counter()
    signatures: list[tuple] = []
    for _ in range(repeats):
        answers = system.answer_many(questions, max_workers=workers)
        signatures = [answer_signature(a) for a in answers]
    elapsed = time.perf_counter() - start
    return elapsed, signatures, system.metrics()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=5,
                        help="times the question batch is replayed (default 5)")
    parser.add_argument("--workers", type=int, default=4,
                        help="answer_many() thread-pool width (default 4)")
    parser.add_argument("--output", default=None,
                        help="write the BENCH JSON artifact here")
    parser.add_argument("--quick", action="store_true",
                        help="tiny smoke run for CI (no speedup assertion)")
    args = parser.parse_args(argv)

    questions = [q.text for q in load_dev_questions()]
    repeats = args.repeats
    if args.quick:
        questions = questions[:2]
        repeats = 1

    baseline_seconds, baseline_sigs = run_baseline(questions, repeats)
    optimized_seconds, optimized_sigs, metrics = run_optimized(
        questions, repeats, args.workers
    )

    identical = baseline_sigs == optimized_sigs
    speedup = baseline_seconds / optimized_seconds if optimized_seconds else 0.0

    result = {
        "benchmark": "batch_throughput",
        "questions": len(questions),
        "repeats": repeats,
        "workers": args.workers,
        "quick": args.quick,
        "baseline_seconds": round(baseline_seconds, 4),
        "optimized_seconds": round(optimized_seconds, 4),
        "speedup": round(speedup, 2),
        "identical_answers": identical,
        "metrics": metrics,
    }

    print("BENCH " + json.dumps(result))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(result, handle, indent=2)
            handle.write("\n")

    if not identical:
        for base, opt in zip(baseline_sigs, optimized_sigs):
            if base != opt:
                print(f"MISMATCH:\n  baseline : {base}\n  optimized: {opt}",
                      file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

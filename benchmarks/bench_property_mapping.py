"""E4/E5 — the property-mapping worked examples of sections 2.2.1-2.2.3.

* E4: "written" -> {dbo:writer, dbo:author}; the taxiDriver/river trap.
* E5: "die" -> {deathPlace, birthPlace, residence}, deathPlace first.

    pytest benchmarks/bench_property_mapping.py --benchmark-only
"""

import pytest

from repro.core import PipelineConfig, TripleExtractor, TripleMapper
from repro.nlp import Pipeline
from repro.patty import build_pattern_store
from repro.rdf import DBO
from repro.similarity import lcs_score, subsequence_similarity
from repro.wordnet import (
    build_adjective_map,
    build_similar_property_pairs,
    build_wordnet,
)


@pytest.fixture(scope="module")
def mapper(kb):
    wordnet = build_wordnet()
    return TripleMapper(
        kb,
        build_pattern_store(kb),
        build_similar_property_pairs(kb.ontology, wordnet),
        build_adjective_map(kb.ontology, wordnet),
        PipelineConfig(),
    )


def _predicates(kb, mapper, question):
    pipeline = Pipeline(kb.surface_index)
    sentence = pipeline.annotate(question)
    mapped = mapper.map(sentence, TripleExtractor().extract(sentence))
    main = next(c for c in mapped if c.pattern.is_main)
    return main.predicates


def test_e4_written_maps_to_writer_and_author(benchmark, kb, mapper):
    predicates = benchmark(
        _predicates, kb, mapper, "Which book is written by Orhan Pamuk?"
    )
    iris = {candidate.iri for candidate in predicates}
    print("\nPt(\"written\") =", sorted(iri.local_name for iri in iris))
    assert DBO.writer in iris and DBO.author in iris


def test_e4_taxidriver_trap(benchmark):
    """Section 2.2.1: 'the property taxiDriver encapsulates the word river'
    — the similarity scheme must not treat that as a match."""

    def scores():
        return {
            "one_sided": lcs_score("river", "taxiDriver"),
            "symmetric": subsequence_similarity("river", "taxiDriver"),
            "exact": subsequence_similarity("river", "river"),
        }

    observed = benchmark(scores)
    print(f"\nriver vs taxiDriver: one-sided={observed['one_sided']:.2f} "
          f"symmetric={observed['symmetric']:.2f}")
    # The naive one-sided score falls into the trap ...
    assert observed["one_sided"] == 1.0
    # ... the pipeline's symmetric score does not.
    assert observed["symmetric"] <= 0.5 < PipelineConfig().similarity_threshold
    assert observed["exact"] == 1.0


def test_e5_die_property_ranking(benchmark, kb):
    store = benchmark(build_pattern_store, kb)
    ranked = store.properties_for("die")
    print("\nPt(\"die\") =", [(name, freq) for name, freq in ranked])
    names = [name for name, __ in ranked]
    # The paper's candidate set ...
    assert set(names) >= {"deathPlace", "birthPlace", "residence"}
    # ... with deathPlace ranked first by frequency.
    assert names[0] == "deathPlace"


def test_e5_frequencies_drive_answer(kb, qa):
    answer = qa.answer("Where did Abraham Lincoln die?")
    assert answer.query is not None
    assert any(t.predicate == DBO.deathPlace for t in answer.query.triples)


def test_adjective_example_tall(benchmark, kb, mapper):
    predicates = benchmark(_predicates, kb, mapper, "How tall is Michael Jordan?")
    assert predicates[0].iri == DBO.height
    print("\nPt(\"tall\") =", [c.iri.local_name for c in predicates])

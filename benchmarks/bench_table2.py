"""E1 — Table 2: Precision, Recall, F1 on the QALD-2-style benchmark.

Regenerates the paper's headline table (and benchmarks the full evaluation
run).  The assertion bands encode the reproduction target from DESIGN.md:
high precision (>=0.75), low recall (0.25-0.45), F1 in the 0.40-0.55 band,
with the same answered/correct counts the paper reports (18/15).

    pytest benchmarks/bench_table2.py --benchmark-only
"""

import pytest

from repro.qald import QaldEvaluator, format_table2, load_questions
from repro.qald.report import PAPER_TABLE2, format_category_breakdown


@pytest.fixture(scope="module")
def questions():
    return load_questions()


def test_table2_reproduction(benchmark, kb, qa, questions):
    evaluator = QaldEvaluator(kb, qa)

    result = benchmark(evaluator.evaluate, questions)

    print()
    print(format_table2(result))
    print()
    print(format_category_breakdown(result))

    # Reproduction bands (shape, per DESIGN.md E1).
    assert result.total == 55
    assert result.paper_precision >= 0.75
    assert 0.25 <= result.paper_recall <= 0.45
    assert 0.40 <= result.paper_f1 <= 0.55
    # Same counts as the paper: 18 processed, 15 correct.
    assert result.answered == 18
    assert result.correct == 15
    # Within a whisker of the published percentages.
    assert abs(result.paper_precision - PAPER_TABLE2["precision"]) < 0.05
    assert abs(result.paper_recall - PAPER_TABLE2["recall"]) < 0.05
    assert abs(result.paper_f1 - PAPER_TABLE2["f1"]) < 0.05


def test_gold_standard_execution(benchmark, kb, questions):
    """Benchmark the gold-query side alone (engine throughput on the
    benchmark workload)."""
    evaluator = QaldEvaluator(kb, object())
    in_scope = [q for q in questions if q.in_scope]

    def run_all_gold():
        return [evaluator.gold_answers(q) for q in in_scope]

    golds = benchmark(run_all_gold)
    assert len(golds) == 55

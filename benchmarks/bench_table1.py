"""E2 — Table 1: expected answer types per question word.

Regenerates the routing table and verifies, over every answered benchmark
question, that the type filter admits exactly the type Table 1 specifies.

    pytest benchmarks/bench_table1.py --benchmark-only
"""

import pytest

from repro.core import ExpectedType, expected_answer_type
from repro.core.typecheck import answer_matches_type
from repro.nlp import Pipeline
from repro.qald import load_questions

#: The paper's Table 1, with the question forms used to probe each row.
TABLE_1_ROWS = [
    ("Who", "Who wrote Dune?", ExpectedType.PERSON_OR_ORGANISATION,
     "Person, Organization, Company"),
    ("Where", "Where did Abraham Lincoln die?", ExpectedType.PLACE, "Place"),
    ("When", "When did Frank Herbert die?", ExpectedType.DATE, "Date"),
    ("How many", "How many pages does War and Peace have?",
     ExpectedType.NUMERIC, "Numeric"),
]


def test_table1_routing(benchmark, kb):
    pipeline = Pipeline(kb.surface_index)

    def classify_all():
        return [
            expected_answer_type(pipeline.annotate(question))
            for __, question, __e, __l in TABLE_1_ROWS
        ]

    observed = benchmark(classify_all)

    print("\nTable 1 — Expected answer types for questions")
    print(f"{'Question Type':16s}{'Expected answer type':32s}{'Observed':24s}")
    for (word, __, expected, label), got in zip(TABLE_1_ROWS, observed):
        print(f"{word:16s}{label:32s}{got.value:24s}")
        assert got is expected


def test_type_filter_on_live_answers(benchmark, kb, qa):
    """Every answer the system returns must satisfy its question's expected
    type — the filter of section 2.3.2 in action on the whole benchmark."""
    in_scope = [q for q in load_questions() if q.in_scope]

    def answer_all():
        return [(q, qa.answer(q.text)) for q in in_scope]

    results = benchmark(answer_all)

    checked = 0
    for question, answer in results:
        for term in answer.answers:
            assert answer_matches_type(kb, term, answer.expected_type), (
                question.text, term,
            )
            checked += 1
    assert checked > 0
    print(f"\n{checked} answers type-checked across {len(results)} questions")


def test_which_questions_skip_type_check(kb, qa):
    """'Which N' carries its class constraint in the query instead."""
    answer = qa.answer("Which book is written by Orhan Pamuk?")
    assert answer.expected_type is ExpectedType.ANY
    assert all(kb.is_instance_of(a, "Book") for a in answer.answers)

#!/usr/bin/env python
"""KB scale benchmark: in-heap dict backend vs mmap segment shards.

Builds the deterministic synthetic KB at ``--scale`` (default 160 — about
800k triples, 10x the largest scale the engine benchmarks use), writes a
hash-sharded segment directory, and then runs the same join-heavy workload
in **two isolated subprocesses**:

* ``memory``   — rebuilds the KB in-heap (the single-process baseline:
  cold start pays record materialisation + dict index build, peak RSS
  holds every triple and term as Python objects);
* ``segments`` — opens the segment directory (cold start is manifest +
  checksum validation; the triples stay mmapped on disk) and serves the
  same queries through the identical engine, with the inline
  scatter-gather executor installed for the subject-star queries.

Each lane reports its own wall-clock load time, per-query latencies, peak
RSS (``ru_maxrss`` of the lane process), and canonicalised answers.  The
parent compares answers across lanes — every SELECT in the workload is
ORDER BY'd, so the comparison is **byte-identical row for row** (COUNT and
ASK compare by value) — and exits non-zero on any divergence.  Outside
``--quick`` it also enforces the headline claim: segmented peak RSS below
the single-heap baseline.

Usage:
    python benchmarks/bench_kb_scale.py --output BENCH_kb_scale.json
    python benchmarks/bench_kb_scale.py --quick   # CI smoke (small scale)
    python benchmarks/bench_kb_scale.py --lane memory ...   # internal
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

#: The workload: join-heavy, every SELECT fully ordered so answers are
#: comparable byte for byte.  ``star`` queries are subject-star (eligible
#: for scatter-gather); ``path`` joins hop across subjects and exercise
#: the merged multi-shard scans.
WORKLOAD = [
    (
        "star_writer_place",
        "SELECT ?w ?c WHERE { ?w a dbo:Writer . ?w dbo:birthPlace ?c . "
        "?w dbo:height ?h } ORDER BY ?w ?c",
    ),
    (
        "star_book_pages",
        "SELECT ?b ?n WHERE { ?b a dbo:Novel . ?b dbo:numberOfPages ?n . "
        "?b dbo:author ?a } ORDER BY ?n ?b LIMIT 500",
    ),
    (
        "star_city_filter",
        "SELECT ?c ?p WHERE { ?c a dbo:City . ?c dbo:populationTotal ?p . "
        "FILTER(?p > 1000000) } ORDER BY ?p ?c",
    ),
    (
        "path_book_country",
        "SELECT ?b ?co WHERE { ?b dbo:author ?w . ?w dbo:birthPlace ?c . "
        "?c dbo:country ?co } ORDER BY ?b ?co LIMIT 500",
    ),
    (
        "path_writer_capital",
        "SELECT ?w ?cap WHERE { ?w dbo:birthPlace ?c . ?c dbo:country ?co . "
        "?co dbo:capital ?cap } ORDER BY ?w ?cap LIMIT 500",
    ),
    (
        "count_writers",
        "SELECT (COUNT(?w) AS ?n) WHERE { ?w a dbo:Writer . "
        "?w dbo:birthPlace ?c }",
    ),
    (
        "ask_tall_writer",
        "ASK { ?w a dbo:Writer . ?w dbo:height ?h . FILTER(?h > 2.0) }",
    ),
]

#: The join-heavy lane: selective two-star conjunctions — the semi-join
#: shipping class (two subject variables, shared join variable,
#: pushdown-eligible filters).  Every query is fully ordered so lane
#: answers compare byte for byte against the in-memory oracle.  The
#: scatter lanes measure *steady-state serving*: per-shard result caches
#: stay warm across repeats (engine-level result caches are cleared in
#: every lane), which is the mode the shared serving pool runs in.
JOIN_WORKLOAD = [
    (
        "join_tall_writer_big_city",
        "SELECT ?w ?c WHERE { ?w a dbo:Writer . ?w dbo:height ?h . "
        "?w dbo:birthPlace ?c . FILTER(?h > 2.05) . ?c a dbo:City . "
        "?c dbo:populationTotal ?p . FILTER(?p > 5000000) } ORDER BY ?w ?c",
    ),
    (
        "join_long_novel_tall_author",
        "SELECT ?b ?w WHERE { ?b a dbo:Novel . ?b dbo:numberOfPages ?n . "
        "?b dbo:author ?w . FILTER(?n > 900) . ?w a dbo:Writer . "
        "?w dbo:height ?h . FILTER(?h > 1.95) } ORDER BY ?b ?w",
    ),
    (
        "join_short_writer_small_city",
        "SELECT ?w ?p WHERE { ?w a dbo:Writer . ?w dbo:height ?h . "
        "?w dbo:birthPlace ?c . FILTER(?h < 1.55) . ?c a dbo:City . "
        "?c dbo:populationTotal ?p . FILTER(?p < 200000) } ORDER BY ?w ?p",
    ),
    (
        "join_heavy_book_city",
        "SELECT ?b ?c WHERE { ?b a dbo:Novel . ?b dbo:numberOfPages ?n . "
        "?b dbo:author ?w . FILTER(?n > 850) . ?w dbo:birthPlace ?c . "
        "?w dbo:height ?h . FILTER(?h > 1.9) } ORDER BY ?b ?c LIMIT 500",
    ),
    (
        "join_ask_giant_pair",
        "ASK { ?w a dbo:Writer . ?w dbo:height ?h . FILTER(?h > 2.09) . "
        "?w dbo:birthPlace ?c . ?c dbo:populationTotal ?p . "
        "FILTER(?p > 8000000) }",
    ),
]


def _canonical(result) -> list:
    """Canonical, JSON-stable form of one query result."""
    if hasattr(result, "rows"):
        return [
            [None if term is None else term.n3() for term in row]
            for row in result.rows
        ]
    return [bool(result.value)]


def _peak_rss_mb() -> float:
    # /proc VmHWM resets on execve; Linux ru_maxrss is inherited across
    # fork+exec and would report the spawning parent's peak instead.
    try:
        with open("/proc/self/status", encoding="ascii") as status:
            for line in status:
                if line.startswith("VmHWM:"):
                    return round(int(line.split()[1]) / 1024.0, 1)
    except OSError:
        pass
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - bytes on macOS
        peak //= 1024
    return round(peak / 1024.0, 1)


def run_lane(args) -> dict:
    """One isolated measurement process; prints a JSON document."""
    from repro.sparql import SparqlEngine

    if args.lane == "build":
        from repro.kb import build_segments, load_synthetic_kb

        start = time.perf_counter()
        kb = load_synthetic_kb(scale=args.scale, seed=args.seed)
        build_kb_s = time.perf_counter() - start
        start = time.perf_counter()
        manifest = build_segments(kb.graph, args.segments, shards=args.shards)
        print(
            json.dumps(
                {
                    "triples": manifest["triples"],
                    "shards": manifest["shards"],
                    "fingerprint": manifest["fingerprint"],
                    "build_kb_s": round(build_kb_s, 3),
                    "build_segments_s": round(time.perf_counter() - start, 3),
                }
            )
        )
        return {}

    start = time.perf_counter()
    if args.lane == "memory":
        from repro.kb import load_synthetic_kb

        kb = load_synthetic_kb(scale=args.scale, seed=args.seed)
        engine = kb.engine
        triples = len(kb.graph)
        executor = None
    else:
        from repro.kb import SegmentedBackend
        from repro.sparql import ScatterGatherExecutor

        backend = SegmentedBackend(args.segments).open()
        engine = SparqlEngine(backend.graph_view())
        executor = None
        if args.lane != "join_plain":
            executor = ScatterGatherExecutor(
                backend,
                processes={"join_pool": 2}.get(args.lane, 0),
            )
            engine.install_scatter(executor)
        triples = len(backend)
    load_s = time.perf_counter() - start

    if args.lane in ("memory", "segments"):
        workload = list(WORKLOAD)
        if args.lane == "memory":
            workload += JOIN_WORKLOAD  # the join lanes' oracle answers
    else:
        workload = list(JOIN_WORKLOAD)

    answers: dict[str, list] = {}
    latencies: dict[str, float] = {}
    for name, text in workload:
        if executor is not None and name.startswith("join_"):
            # Steady-state serving measurement: warm the per-shard result
            # caches once (untimed), then time repeats with the engine's
            # own result cache cleared — what a repeated question costs
            # behind the shared serving pool.
            executor.invalidate_caches()
            engine.clear_caches()
            engine.query(text)
        best = None
        for __ in range(args.repeats):
            engine.clear_caches()
            begin = time.perf_counter()
            result = engine.query(text)
            elapsed = time.perf_counter() - begin
            best = elapsed if best is None else min(best, elapsed)
        answers[name] = _canonical(result)
        latencies[name] = round(best, 6)
    if executor is not None:
        executor.close()

    print(
        json.dumps(
            {
                "lane": args.lane,
                "triples": triples,
                "load_s": round(load_s, 3),
                "peak_rss_mb": _peak_rss_mb(),
                "latency_s": latencies,
                "answers": answers,
            }
        )
    )
    return {}


def _spawn_lane(lane: str, args, segments: str) -> dict:
    command = [
        sys.executable,
        os.path.abspath(__file__),
        "--lane", lane,
        "--scale", str(args.scale),
        "--seed", str(args.seed),
        "--shards", str(args.shards),
        "--repeats", str(args.repeats),
        "--segments", segments,
    ]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    completed = subprocess.run(
        command, capture_output=True, text=True, env=env, check=True
    )
    return json.loads(completed.stdout.splitlines()[-1])


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=160,
                        help="synthetic KB scale (default 160, ~800k triples)")
    parser.add_argument("--seed", type=int, default=13)
    parser.add_argument("--shards", type=int, default=8)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: scale 6, 4 shards, 1 repeat")
    parser.add_argument("--output", default="BENCH_kb_scale.json")
    parser.add_argument(
        "--lane",
        choices=[
            "build", "memory", "segments",
            "join_plain", "join_inline", "join_pool",
        ],
        help=argparse.SUPPRESS,
    )
    parser.add_argument("--segments", help=argparse.SUPPRESS)
    args = parser.parse_args()

    if args.lane:
        return bool(run_lane(args))

    if args.quick:
        args.scale, args.shards, args.repeats = 6, 4, 1

    # The build runs in a subprocess too: the parent stays small, so the
    # lane processes fork from a slim image and their peak-RSS numbers are
    # theirs alone.
    with tempfile.TemporaryDirectory(prefix="kbseg-") as segments:
        print(f"building synthetic KB (scale={args.scale}) ...", flush=True)
        manifest = _spawn_lane("build", args, segments)
        print(
            f"  wrote {manifest['shards']} shards "
            f"({manifest['triples']} triples) in "
            f"{manifest['build_kb_s'] + manifest['build_segments_s']:.1f}s",
            flush=True,
        )

        lanes = {
            lane: _spawn_lane(lane, args, segments)
            for lane in (
                "memory", "segments",
                "join_plain", "join_inline", "join_pool",
            )
        }

    memory, segmented = lanes["memory"], lanes["segments"]
    join_names = [name for name, __ in JOIN_WORKLOAD]
    oracle_joins = {name: memory["answers"][name] for name in join_names}
    join_divergent = [
        (lane, name)
        for lane in ("join_plain", "join_inline", "join_pool")
        for name in join_names
        if lanes[lane]["answers"][name] != oracle_joins[name]
    ]
    identical = (
        {
            name: memory["answers"][name] for name, __ in WORKLOAD
        } == segmented["answers"]
        and not join_divergent
    )

    def _join_total(lane: str) -> float:
        return sum(lanes[lane]["latency_s"][name] for name in join_names)
    rss_below = segmented["peak_rss_mb"] < memory["peak_rss_mb"]
    report = {
        "benchmark": "kb_scale",
        "quick": args.quick,
        "scale": args.scale,
        "shards": args.shards,
        "repeats": args.repeats,
        "triples": memory["triples"],
        "segment_fingerprint": manifest["fingerprint"],
        "identical_answers": identical,
        "segments_rss_below_memory": rss_below,
        "cold_start_speedup": round(
            memory["load_s"] / max(segmented["load_s"], 1e-9), 2
        ),
        # Steady-state semi-join serving vs cold single-process joins over
        # the same segments: warm per-shard result caches are what the
        # shared serving pool amortises across repeated questions.
        "scatter_join_speedup": round(
            _join_total("join_plain") / max(_join_total("join_inline"), 1e-9),
            2,
        ),
        "scatter_join_pool_speedup": round(
            _join_total("join_plain") / max(_join_total("join_pool"), 1e-9),
            2,
        ),
        "lanes": {
            lane: {key: value for key, value in data.items() if key != "answers"}
            for lane, data in lanes.items()
        },
        "queries": [
            {
                "name": name,
                "rows": len(memory["answers"][name]),
                "memory_s": memory["latency_s"][name],
                "segments_s": segmented["latency_s"][name],
            }
            for name, __ in WORKLOAD
        ],
        "join_queries": [
            {
                "name": name,
                "rows": len(memory["answers"][name]),
                "memory_s": memory["latency_s"][name],
                "plain_s": lanes["join_plain"]["latency_s"][name],
                "inline_s": lanes["join_inline"]["latency_s"][name],
                "pool_s": lanes["join_pool"]["latency_s"][name],
            }
            for name in join_names
        ],
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print(f"\nreport written to {args.output}")
    print(f"  identical_answers:          {identical}")
    print(
        f"  peak RSS:                   memory {memory['peak_rss_mb']}MB, "
        f"segments {segmented['peak_rss_mb']}MB"
    )
    print(
        f"  cold start:                 memory {memory['load_s']}s, "
        f"segments {segmented['load_s']}s "
        f"({report['cold_start_speedup']}x)"
    )
    print(
        f"  scatter join speedup:       inline "
        f"{report['scatter_join_speedup']}x, pool "
        f"{report['scatter_join_pool_speedup']}x (steady-state vs plain)"
    )
    if not identical:
        for name, __ in WORKLOAD:
            if memory["answers"][name] != segmented["answers"][name]:
                print(f"  DIVERGENT: {name}", file=sys.stderr)
        for lane, name in join_divergent:
            print(f"  DIVERGENT: {lane}/{name}", file=sys.stderr)
        return 1
    if not args.quick and not rss_below:
        print("  FAIL: segmented peak RSS not below in-heap baseline",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Relational patterns for *data* properties (the section 5 research gap).

    "Extracted relational patterns in [6] consist of only object
    properties.  There is a research gap for extracting relational pattern
    for data properties."

The extension closes the gap with the same distant-supervision machinery
as :mod:`repro.patty`, applied to date-bearing sentences: the corpus
verbalises date facts ("Frank Herbert died on 11 February 1986"), the
extractor spots one entity plus one date expression, lifts the connecting
phrase, and attributes it to every date-valued KB fact matching the
(entity, date) pair.  The result is a second :class:`PatternStore` whose
lookups map verbs to data properties: "bear" -> ``dbo:birthDate``,
"die" -> ``dbo:deathDate``.
"""

from __future__ import annotations

import datetime as dt
import random
import re

from repro.kb.builder import KnowledgeBase
from repro.kb.ontology import PropertyKind, ValueType
from repro.nlp.morphology import lemmatize
from repro.nlp.postagger import PosTagger
from repro.nlp.tokenizer import tokenize
from repro.patty.patterns import RelationalPattern
from repro.patty.store import PatternStore
from repro.rdf.datatypes import literal_value
from repro.rdf.namespaces import DBO
from repro.rdf.terms import Literal

#: Verbalisation templates for date-valued properties; {s} = entity label,
#: {d} = rendered date.
DATA_TEMPLATES: dict[str, list[tuple[str, int]]] = {
    "birthDate": [
        ("{s} was born on {d}", 8),
        ("{s} , born {d} ,", 3),
    ],
    "deathDate": [
        ("{s} died on {d}", 8),
        ("{s} passed away on {d}", 2),
    ],
    "foundingDate": [
        ("{s} was founded on {d}", 5),
        ("{s} was established on {d}", 2),
    ],
    "releaseDate": [
        ("{s} was released on {d}", 5),
    ],
    "publicationDate": [
        ("{s} was published on {d}", 4),
    ],
    "launchDate": [
        ("{s} was launched on {d}", 5),
    ],
}

_MONTHS = (
    "January", "February", "March", "April", "May", "June", "July",
    "August", "September", "October", "November", "December",
)

_DATE_RE = re.compile(
    r"\b(?P<day>\d{1,2})\s+(?P<month>" + "|".join(_MONTHS) + r")\s+(?P<year>\d{4})\b"
)

MAX_PATTERN_TOKENS = 6


def _render_date(value: dt.date) -> str:
    return f"{value.day} {_MONTHS[value.month - 1]} {value.year}"


def _parse_date(day: str, month: str, year: str) -> dt.date | None:
    try:
        return dt.date(int(year), _MONTHS.index(month) + 1, int(day))
    except ValueError:
        return None


def generate_data_corpus(
    kb: KnowledgeBase, sentences_per_fact: int = 3, seed: int = 47
) -> list[tuple[str, str, dt.date, str]]:
    """Verbalise date facts; yields (text, entity_name, date, relation)."""
    rng = random.Random(seed)
    sentences: list[tuple[str, str, dt.date, str]] = []
    for prop_name, templates in sorted(DATA_TEMPLATES.items()):
        predicate = DBO[prop_name]
        total = sum(weight for __, weight in templates)
        for triple in kb.graph.match(None, predicate, None):
            if not isinstance(triple.object, Literal):
                continue
            value = literal_value(triple.object)
            if not isinstance(value, dt.date):
                continue
            label = kb.label_of(triple.subject)
            for __ in range(sentences_per_fact):
                pick = rng.randrange(total)
                for template, weight in templates:
                    if pick < weight:
                        break
                    pick -= weight
                sentences.append((
                    template.format(s=label, d=_render_date(value)),
                    triple.subject.local_name,
                    value,
                    prop_name,
                ))
    return sentences


class DataPatternExtractor:
    """Distant supervision over (entity, date) sentence pairs."""

    def __init__(self, kb: KnowledgeBase) -> None:
        self._kb = kb
        self._tagger = PosTagger()
        self._date_properties = [
            prop for prop in kb.ontology.data_properties()
            if prop.value_type is ValueType.DATE
        ]

    def extract(self, sentences) -> dict[tuple[str, str], RelationalPattern]:
        aggregates: dict[tuple[str, str], RelationalPattern] = {}
        for text, __entity, __value, __relation in sentences:
            for pattern_text, subject, relation in self._extract_one(text):
                key = (pattern_text, relation)
                aggregate = aggregates.get(key)
                if aggregate is None:
                    aggregate = RelationalPattern(pattern_text, relation)
                    aggregates[key] = aggregate
                aggregate.record(subject, "date")
        return aggregates

    def _extract_one(self, text: str):
        date_match = _DATE_RE.search(text)
        if date_match is None:
            return
        value = _parse_date(
            date_match.group("day"), date_match.group("month"),
            date_match.group("year"),
        )
        if value is None:
            return
        prefix = text[: date_match.start()]
        tokens = tokenize(prefix)
        spots = list(self._kb.surface_index.spot(tokens))
        if not spots:
            return
        start, end, candidates = spots[0]
        between = [t for t in tokens[end:] if any(ch.isalnum() for ch in t)]
        if not between or len(between) > MAX_PATTERN_TOKENS:
            return
        tags = self._tagger.tag(between)
        lemmas = [lemmatize(word, tag).lower() for word, tag in zip(between, tags)]
        pattern_text = " ".join(lemmas)
        # Attribute to every date property whose value matches the pair.
        for entity in candidates:
            for prop in self._date_properties:
                for obj in self._kb.graph.objects_of(entity, prop.iri):
                    if isinstance(obj, Literal) and literal_value(obj) == value:
                        yield (pattern_text, entity.local_name, prop.name)


def build_data_pattern_store(
    kb: KnowledgeBase, sentences_per_fact: int = 3, seed: int = 47
) -> PatternStore:
    """Mine the data-property pattern store.

    >>> from repro.kb import load_curated_kb
    >>> store = build_data_pattern_store(load_curated_kb())
    >>> store.properties_for("die")[0][0]
    'deathDate'
    """
    sentences = generate_data_corpus(kb, sentences_per_fact, seed)
    aggregates = DataPatternExtractor(kb).extract(sentences)
    store = PatternStore()
    for aggregate in aggregates.values():
        store.add_pattern(aggregate)
    return store

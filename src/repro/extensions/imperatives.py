"""Imperative-request normalisation.

QALD-2 phrases list requests imperatively: "Give me all films directed by
Alfred Hitchcock."  The section 2.1 extractor covers interrogative
grammar, so the extension rewrites the imperative frame into the
equivalent wh-question — "Which films directed by Alfred Hitchcock?"
becomes parseable by the passive-wh template once the participle is
re-anchored with a copula ("Which films were directed by ...?").

The rewrite is purely syntactic; everything downstream (mapping, query
generation, ranking) is the unmodified pipeline.
"""

from __future__ import annotations

import re

#: "Give me all ...", "Give me a list of all ...", "List all ...",
#: "Show me all ..." — the imperative frames QALD uses.
_IMPERATIVE_RE = re.compile(
    r"""^\s*
        (?:give\s+me|show\s+me|list|name)\s+
        (?:a\s+list\s+of\s+)?
        (?:all\s+|every\s+)?
        (?P<rest>.+?)
        \s*[.?!]?\s*$
    """,
    re.IGNORECASE | re.VERBOSE,
)

#: Bare participle right after the noun block ("films directed by X") —
#: re-anchor it with a copula so the passive template matches.
_PARTICIPLE_RE = re.compile(
    r"^(?P<np>\w+(?:\s+\w+)?)\s+(?P<vbn>\w+(?:ed|en|wn|de|ilt|ung))\s+by\s+"
)


def normalize_imperative(text: str) -> str | None:
    """Rewrite an imperative list request as a wh-question.

    Returns None when the text is not an imperative request (the caller
    then proceeds with the original question).

    >>> normalize_imperative("Give me all films directed by Alfred Hitchcock.")
    'Which films were directed by Alfred Hitchcock?'
    >>> normalize_imperative("Give me all cities in Germany.")
    'Which cities are located in Germany?'
    >>> normalize_imperative("Who wrote Dune?") is None
    True
    """
    match = _IMPERATIVE_RE.match(text)
    if match is None:
        return None
    rest = match.group("rest").strip()
    if not rest or not any(ch.isalnum() for ch in rest):
        return None

    participle = _PARTICIPLE_RE.match(rest)
    if participle is not None:
        noun_phrase = participle.group("np")
        rewritten = rest.replace(
            f"{noun_phrase} {participle.group('vbn')}",
            f"{noun_phrase} were {participle.group('vbn')}",
            1,
        )
        return f"Which {rewritten}?"

    # "cities in Germany" / "soccer clubs in Spain" — re-anchor with the
    # passive locative frame the extractor's grammar covers.  Other
    # prepositional frames ("albums of Michael Jackson") have no safe
    # rewrite and fall through: partial coverage, documented in the
    # extension benchmark.
    tokens = rest.split()
    for cut in (1, 2):
        if len(tokens) > cut + 1 and tokens[cut] in ("in", "from"):
            noun = " ".join(tokens[:cut])
            return f"Which {noun} are located in {' '.join(tokens[cut + 1:])}?"

    return f"Which {rest}?"

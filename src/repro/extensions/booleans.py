"""Boolean (yes/no) question support via ASK query generation.

The original pipeline only builds SELECT queries, so every boolean
question goes unanswered (five of them in the benchmark).  The extension
covers the two boolean frames the parser already analyses:

* **copular**: "Is Berlin the capital of Germany?" — parses to a noun root
  with ``cop``/``nsubj``/``prep``/``pobj``; the extension extracts the
  *ground* pattern ``[Germany, capital, Berlin]`` and asks it.
* **passive/locative**: "Was Abraham Lincoln born in Washington?" — verb
  root with ``nsubjpass`` and ``prep``/``pobj``; ground pattern
  ``[Abraham Lincoln, bear, Washington]``.

Property mapping reuses the unmodified section 2.2 machinery; the only
new moving part is ASK construction and boolean answer shaping.
Questions like "Is Frank Herbert still alive?" *remain* unanswerable —
the predicate still cannot be mapped; the extension widens query shapes,
not lexical coverage.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mapping import CandidateTriple, MappingFailure, TripleMapper
from repro.core.triples import Slot, SlotKind, TriplePattern
from repro.nlp.dependencies import DependencyGraph, Token
from repro.nlp.pipeline import Sentence
from repro.rdf.namespaces import RDF
from repro.rdf.terms import Term, Triple, Variable
from repro.sparql.ast import AskQuery, BGP, Group


@dataclass(frozen=True)
class BooleanCandidate:
    """One ground ASK candidate with its ranking weight."""

    triples: tuple[Triple, ...]
    score: float

    def to_ast(self) -> AskQuery:
        return AskQuery(where=Group((BGP(self.triples),)))


class BooleanQuestionHandler:
    """Extracts ground patterns from boolean parses and builds ASK queries."""

    def __init__(self, mapper: TripleMapper) -> None:
        self._mapper = mapper

    # ------------------------------------------------------------------

    def is_boolean_question(self, sentence: Sentence) -> bool:
        """Auxiliary-fronted questions with no wh-word are yes/no."""
        tokens = [t for t in sentence.tokens if t.pos not in (".", ",")]
        if not tokens:
            return False
        first = tokens[0]
        fronted_aux = first.is_verb() and first.lemma in ("be", "do", "have")
        has_wh = any(t.is_wh_word() for t in tokens)
        return fronted_aux and not has_wh

    def extract(self, sentence: Sentence) -> list[TriplePattern]:
        """Ground triple patterns for a boolean question (may be empty)."""
        graph = sentence.graph
        root = graph.root
        if root is None:
            return []
        if root.is_noun() and graph.child(root, "cop") is not None:
            return self._from_copular(graph, root)
        if root.is_verb():
            return self._from_verbal(graph, root)
        return []

    def _argument(self, token: Token) -> Slot | None:
        if token.entity:
            return Slot.entity(token)
        return None

    def _from_copular(self, graph: DependencyGraph, root: Token) -> list[TriplePattern]:
        # "Is <S> the <N> of <O>?" -> [O, N, S]
        subject_token = graph.child(root, "nsubj")
        prep = graph.child(root, "prep")
        pobj = graph.child(prep, "pobj") if prep is not None else None
        if subject_token is None or pobj is None:
            return []
        subject_slot = self._argument(pobj)
        object_slot = self._argument(subject_token)
        if subject_slot is None or object_slot is None:
            return []
        return [TriplePattern(subject_slot, Slot.text_of(root), object_slot,
                              is_main=True)]

    def _from_verbal(self, graph: DependencyGraph, root: Token) -> list[TriplePattern]:
        # "Was <S> VBN in <O>?" / "Did <S> VB <O>?" -> [S, V, O]
        subject_token = graph.child(root, "nsubjpass") or graph.child(root, "nsubj")
        object_token = graph.child(root, "dobj")
        if object_token is None:
            prep = graph.child(root, "prep")
            if prep is not None:
                object_token = graph.child(prep, "pobj")
        if subject_token is None or object_token is None:
            return []
        subject_slot = self._argument(subject_token)
        object_slot = self._argument(object_token)
        if subject_slot is None or object_slot is None:
            return []
        return [TriplePattern(subject_slot, Slot.text_of(root), object_slot,
                              is_main=True)]

    # ------------------------------------------------------------------

    def candidates(
        self, sentence: Sentence, bucket: list[TriplePattern]
    ) -> list[BooleanCandidate]:
        """Map the ground patterns and expand into ranked ASK candidates."""
        try:
            mapped = self._mapper.map(sentence, bucket)
        except MappingFailure:
            return []
        out: list[BooleanCandidate] = []
        for candidate in mapped:
            out.extend(self._expand(candidate))
        out.sort(key=lambda c: -c.score)
        return out

    @staticmethod
    def _expand(candidate: CandidateTriple) -> list[BooleanCandidate]:
        out = []
        for subject in candidate.subjects:
            for obj in candidate.objects:
                if isinstance(subject, Variable) or isinstance(obj, Variable):
                    continue
                for predicate in candidate.predicates:
                    if predicate.iri == RDF.type:
                        continue
                    out.append(BooleanCandidate(
                        (Triple(subject, predicate.iri, obj),), predicate.weight,
                    ))
                    # The fronted form often inverts the property direction
                    # ("Is Berlin the capital of Germany?" asks
                    # capital(Germany) = Berlin): try both.
                    out.append(BooleanCandidate(
                        (Triple(obj, predicate.iri, subject),),
                        predicate.weight * 0.99,
                    ))
        return out

"""Future-work extensions (paper, section 6).

    "As for the future work, triple extraction method should be improved to
    handle a broad range of questions.  Also, relational patterns for
    object and data properties can be extracted from large corpora."

Three extensions, each guarded by a :class:`repro.core.PipelineConfig`
flag and off by default (the faithful configuration must reproduce the
paper's Table 2, including its failures):

* :mod:`repro.extensions.imperatives` — normalise "Give me all ..."
  requests into the wh-question grammar (``enable_imperatives``);
* :mod:`repro.extensions.booleans` — ground triple patterns + ASK query
  generation for yes/no questions (``enable_boolean_questions``);
* :mod:`repro.extensions.datapatterns` — mine relational patterns for
  *data* properties from date-bearing corpus sentences, closing the
  section 5 research gap (``enable_data_property_patterns``).

The benchmark ``benchmarks/bench_extensions.py`` quantifies how much of
the paper's "room for improvement" each extension recovers.
"""

from repro.extensions.booleans import BooleanQuestionHandler
from repro.extensions.datapatterns import (
    DATA_TEMPLATES,
    build_data_pattern_store,
    generate_data_corpus,
)
from repro.extensions.imperatives import normalize_imperative

__all__ = [
    "normalize_imperative",
    "BooleanQuestionHandler",
    "generate_data_corpus",
    "build_data_pattern_store",
    "DATA_TEMPLATES",
]

"""Named-entity disambiguation (substitute for the paper's reference [15]).

Hakimov, Oto & Dogdu 2012 disambiguate spotted entities with a graph-based
centrality score over the Wikipedia page-link graph, combined with string
similarity between the mention and the candidate's label — exactly what
section 2.2.5 of the QA paper plugs in.  This package implements that
method over the knowledge base's page-link graph:

* :mod:`repro.ned.centrality` — candidate-graph centrality scoring
* :mod:`repro.ned.disambiguator` — centrality + string-similarity fusion
"""

from repro.ned.centrality import (
    candidate_centrality,
    degree_prior,
    pagerank_centrality,
)
from repro.ned.disambiguator import Disambiguator, DisambiguationResult

__all__ = [
    "candidate_centrality",
    "degree_prior",
    "pagerank_centrality",
    "Disambiguator",
    "DisambiguationResult",
]

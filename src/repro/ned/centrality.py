"""Centrality scoring over the page-link candidate graph.

The method of the paper's reference [15]: build the subgraph induced by all
candidate entities of all spotted mentions, and score each candidate by how
strongly it is connected to the candidates of the *other* mentions — the
correct readings of co-occurring mentions reinforce each other through
page links (the basketball player Michael Jordan links to Chicago Bulls,
the machine-learning researcher does not).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.kb.pagelinks import PageLinkGraph
from repro.rdf.terms import IRI


def candidate_centrality(
    page_links: PageLinkGraph,
    candidate_sets: Sequence[list[IRI]],
) -> dict[IRI, float]:
    """Score every candidate by its connectivity to other mentions' candidates.

    For candidate ``c`` of mention ``i``:

    * +1.0 for each direct page link to a candidate of another mention;
    * +0.5 scaled Jaccard overlap of link neighbourhoods (shared-context
      signal even without a direct link).

    Returns a score for every candidate in every set.
    """
    scores: dict[IRI, float] = {}
    for i, candidates in enumerate(candidate_sets):
        others = [
            other
            for j, other_set in enumerate(candidate_sets)
            if j != i
            for other in other_set
        ]
        for candidate in candidates:
            score = 0.0
            neighbourhood = page_links.neighbours(candidate)
            for other in others:
                if page_links.connected(candidate, other):
                    score += 1.0
                other_neighbourhood = page_links.neighbours(other)
                union = neighbourhood | other_neighbourhood
                if union:
                    overlap = len(neighbourhood & other_neighbourhood) / len(union)
                    score += 0.5 * overlap
            scores[candidate] = max(scores.get(candidate, 0.0), score)
    return scores


def degree_prior(page_links: PageLinkGraph, candidate: IRI) -> float:
    """Log-scaled global degree — the 'prominence' prior used when a
    question mentions a single entity and no co-occurrence signal exists
    (the page-link analogue of Wikipedia article popularity)."""
    return math.log1p(page_links.degree(candidate))


def pagerank_centrality(
    page_links: PageLinkGraph,
    candidate_sets: Sequence[list[IRI]],
    damping: float = 0.85,
    iterations: int = 30,
) -> dict[IRI, float]:
    """Personalised PageRank over the candidate neighbourhood subgraph.

    The alternative centrality of the reference-[15] family: build the
    subgraph induced by all candidates plus their direct neighbours and
    run power iteration with the teleport vector concentrated on the
    mention candidates (personalised PageRank).  Rank then measures how
    reachable a candidate is *from the other mentions' candidates* —
    context agreement, not global prominence — while still rewarding
    indirect connectivity through hub pages, which the direct-link scorer
    cannot see.

    Pure power iteration (no dependencies); deterministic.
    """
    candidates = {c for candidate_set in candidate_sets for c in candidate_set}
    if not candidates:
        return {}
    # Induced subgraph: candidates + one-hop neighbourhood.
    nodes: set[IRI] = set(candidates)
    for candidate in candidates:
        nodes |= page_links.neighbours(candidate)
    node_list = sorted(nodes, key=lambda n: n.value)
    index = {node: i for i, node in enumerate(node_list)}
    out_edges: list[list[int]] = [[] for __ in node_list]
    for node in node_list:
        for neighbour in page_links.neighbours(node):
            if neighbour in index:
                out_edges[index[node]].append(index[neighbour])

    count = len(node_list)
    # Teleport mass concentrated on the candidates (personalisation).
    teleport = [0.0] * count
    for candidate in candidates:
        teleport[index[candidate]] = 1.0 / len(candidates)

    rank = list(teleport)
    for __ in range(iterations):
        incoming = [0.0] * count
        dangling = 0.0
        for source, targets in enumerate(out_edges):
            if not targets:
                dangling += rank[source]
                continue
            share = rank[source] / len(targets)
            for target in targets:
                incoming[target] += share
        rank = [
            (1.0 - damping) * teleport[i]
            + damping * (incoming[i] + dangling * teleport[i])
            for i in range(count)
        ]

    return {candidate: rank[index[candidate]] for candidate in candidates}

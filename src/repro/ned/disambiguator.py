"""Candidate selection: centrality + string similarity (section 2.2.5).

    "The disambiguation method is based on page links between all spotted
    named entities.  Additionally, we assign score of string similarity
    between spotted entities and named entity, which needs to be
    disambiguated."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.kb.builder import KnowledgeBase
from repro.ned.centrality import (
    candidate_centrality,
    degree_prior,
    pagerank_centrality,
)
from repro.rdf.terms import IRI
from repro.similarity import subsequence_similarity


@dataclass(frozen=True)
class DisambiguationResult:
    """The chosen entity for one mention, with its score breakdown."""

    surface: str
    entity: IRI
    score: float
    centrality: float
    string_similarity: float
    prior: float


class Disambiguator:
    """Resolves mention candidate sets to entities.

    ``centrality_weight`` balances the graph signal against string
    similarity; the degree prior only breaks ties (small weight), matching
    the reference method's reliance on link structure first.
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        centrality_weight: float = 1.0,
        similarity_weight: float = 1.0,
        prior_weight: float = 0.1,
        similarity: Callable[[str, str], float] = subsequence_similarity,
        method: str = "degree",
    ) -> None:
        if method not in ("degree", "pagerank"):
            raise ValueError(f"unknown centrality method {method!r}")
        self._kb = kb
        self._centrality_weight = centrality_weight
        self._similarity_weight = similarity_weight
        self._prior_weight = prior_weight
        self._similarity = similarity
        self._method = method

    def disambiguate(
        self,
        mentions: Sequence[tuple[str, list[IRI]]],
    ) -> list[DisambiguationResult]:
        """Pick one entity per (surface, candidates) mention.

        >>> kb = __import__("repro.kb", fromlist=["load_curated_kb"]).load_curated_kb()
        >>> ned = Disambiguator(kb)
        >>> [r] = ned.disambiguate([("Michael Jordan",
        ...     kb.surface_index.candidates("Michael Jordan"))])
        >>> r.entity.local_name
        'Michael_Jordan'
        """
        candidate_sets = [candidates for __, candidates in mentions]
        if self._method == "pagerank":
            centrality = pagerank_centrality(self._kb.page_links, candidate_sets)
            # PageRank mass is tiny per node; rescale to the same order of
            # magnitude as the direct-link scores.
            if centrality:
                top = max(centrality.values()) or 1.0
                centrality = {k: v / top for k, v in centrality.items()}
        else:
            centrality = candidate_centrality(self._kb.page_links, candidate_sets)

        results: list[DisambiguationResult] = []
        for surface, candidates in mentions:
            best: DisambiguationResult | None = None
            for candidate in candidates:
                label = self._kb.label_of(candidate)
                similarity = self._similarity(surface, label)
                graph_score = centrality.get(candidate, 0.0)
                prior = degree_prior(self._kb.page_links, candidate)
                score = (
                    self._centrality_weight * graph_score
                    + self._similarity_weight * similarity
                    + self._prior_weight * prior
                )
                result = DisambiguationResult(
                    surface=surface,
                    entity=candidate,
                    score=score,
                    centrality=graph_score,
                    string_similarity=similarity,
                    prior=prior,
                )
                if best is None or result.score > best.score:
                    best = result
            if best is not None:
                results.append(best)
        return results

    def resolve(self, surface: str) -> DisambiguationResult | None:
        """Disambiguate a single mention straight from the surface index."""
        candidates = self._kb.surface_index.candidates(surface)
        if not candidates:
            return None
        [result] = self.disambiguate([(surface, candidates)])
        return result

"""repro — reproduction of "Semantic Question Answering System over Linked
Data using Relational Patterns" (Hakimov et al., EDBT/ICDT Workshops 2013).

The stable public surface is :mod:`repro.api` (re-exported here)::

    from repro.api import QuestionAnsweringSystem, load_curated_kb

    kb = load_curated_kb()
    qa = QuestionAnsweringSystem.over(kb)
    print(qa.answer("Which book is written by Orhan Pamuk?").answers)

Subsystems (see README.md for the map): :mod:`repro.rdf`,
:mod:`repro.sparql`, :mod:`repro.kb`, :mod:`repro.nlp`,
:mod:`repro.wordnet`, :mod:`repro.patty`, :mod:`repro.ned`,
:mod:`repro.similarity`, :mod:`repro.core`, :mod:`repro.qald`,
:mod:`repro.perf`, :mod:`repro.reliability`, :mod:`repro.obs`.
"""

from repro.api import (
    Answer,
    Explanation,
    KnowledgeBase,
    PipelineConfig,
    QuestionAnsweringSystem,
    answer_many,
    load_curated_kb,
    load_synthetic_kb,
)

__version__ = "1.1.0"

__all__ = [
    "QuestionAnsweringSystem",
    "Answer",
    "Explanation",
    "PipelineConfig",
    "KnowledgeBase",
    "load_curated_kb",
    "load_synthetic_kb",
    "answer_many",
    "__version__",
]

"""repro — reproduction of "Semantic Question Answering System over Linked
Data using Relational Patterns" (Hakimov et al., EDBT/ICDT Workshops 2013).

Top-level convenience API::

    from repro import load_curated_kb, QuestionAnsweringSystem

    kb = load_curated_kb()
    qa = QuestionAnsweringSystem.over(kb)
    print(qa.answer("Which book is written by Orhan Pamuk?").answers)

Subsystems (see README.md for the map): :mod:`repro.rdf`,
:mod:`repro.sparql`, :mod:`repro.kb`, :mod:`repro.nlp`,
:mod:`repro.wordnet`, :mod:`repro.patty`, :mod:`repro.ned`,
:mod:`repro.similarity`, :mod:`repro.core`, :mod:`repro.qald`.
"""

from repro.core.config import PipelineConfig
from repro.core.system import Answer, QuestionAnsweringSystem
from repro.kb.builder import KnowledgeBase
from repro.kb.dataset import load_curated_kb
from repro.kb.generator import load_synthetic_kb

__version__ = "1.0.0"

__all__ = [
    "QuestionAnsweringSystem",
    "Answer",
    "PipelineConfig",
    "KnowledgeBase",
    "load_curated_kb",
    "load_synthetic_kb",
    "__version__",
]

"""Performance infrastructure: caches, counters, batch execution.

This package backs the throughput-oriented answering layer:

* :mod:`repro.perf.lru` — thread-safe LRU cache (SPARQL parse/result
  caches, similarity memo);
* :mod:`repro.perf.stats` — per-stage timing counters shared by the
  pipeline and its caches;
* :mod:`repro.perf.batch` — :class:`BatchAnswerer`, the thread-pool
  fan-out behind ``QuestionAnsweringSystem.answer_many``.
"""

from repro.perf.batch import BatchAnswerer, default_workers
from repro.perf.lru import LRUCache
from repro.perf.stats import PerfStats, StageTimer

__all__ = [
    "BatchAnswerer",
    "LRUCache",
    "PerfStats",
    "StageTimer",
    "default_workers",
]

"""Per-stage timing counters for the answering pipeline.

Every :class:`repro.core.system.QuestionAnsweringSystem` owns a
:class:`PerfStats`; the pipeline stages (annotate / extract / map /
generate / execute) record wall time and call counts into it, and the
caches (SPARQL result cache, similarity memo) publish their hit/miss
counters through :meth:`PerfStats.snapshot`.  The batch benchmark folds the
snapshot (via ``QuestionAnsweringSystem.metrics()``) into its BENCH JSON
artifact, and ``docs/performance.md`` documents how to read it.

All mutation happens under one lock so worker threads of
:class:`repro.perf.batch.BatchAnswerer` can share a single instance.

This is the low-level accumulator, not the reporting surface: the unified
``repro.metrics/v1`` schema of :class:`repro.obs.metrics.MetricsRegistry`
absorbs every snapshot here (timers become ``stage.<name>.seconds``
histograms, counters keep their names) via
``QuestionAnsweringSystem.metrics()``, which supersedes the deprecated
``perf_report()``.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator


class StageTimer:
    """Accumulated wall time and call count for one pipeline stage."""

    __slots__ = ("calls", "total_seconds")

    def __init__(self) -> None:
        self.calls = 0
        self.total_seconds = 0.0

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.calls if self.calls else 0.0

    def as_dict(self) -> dict[str, float | int]:
        return {
            "calls": self.calls,
            "total_seconds": round(self.total_seconds, 6),
            "mean_seconds": round(self.mean_seconds, 6),
        }


class PerfStats:
    """Thread-safe registry of stage timers and named counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._timers: dict[str, StageTimer] = {}
        self._counters: dict[str, int] = {}

    # -- timers ----------------------------------------------------------

    @contextmanager
    def timer(self, stage: str) -> Iterator[None]:
        """Time a ``with`` block under the given stage name.

        >>> stats = PerfStats()
        >>> with stats.timer("annotate"):
        ...     pass
        >>> stats.snapshot()["timers"]["annotate"]["calls"]
        1
        """
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record(stage, time.perf_counter() - start)

    def record(self, stage: str, seconds: float) -> None:
        """Add one observation to a stage timer."""
        with self._lock:
            timer = self._timers.get(stage)
            if timer is None:
                timer = self._timers[stage] = StageTimer()
            timer.calls += 1
            timer.total_seconds += seconds

    # -- counters --------------------------------------------------------

    def increment(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    # -- reporting -------------------------------------------------------

    def snapshot(self) -> dict:
        """Immutable copy of every timer and counter."""
        with self._lock:
            return {
                "timers": {
                    name: timer.as_dict()
                    for name, timer in sorted(self._timers.items())
                },
                "counters": dict(sorted(self._counters.items())),
            }

    def merge(self, other: "PerfStats") -> None:
        """Fold another instance's observations into this one."""
        data = other.snapshot()
        with self._lock:
            for name, entry in data["timers"].items():
                timer = self._timers.get(name)
                if timer is None:
                    timer = self._timers[name] = StageTimer()
                timer.calls += entry["calls"]
                timer.total_seconds += entry["total_seconds"]
            for name, value in data["counters"].items():
                self._counters[name] = self._counters.get(name, 0) + value

    def reset(self) -> None:
        with self._lock:
            self._timers.clear()
            self._counters.clear()

    def format_table(self) -> str:
        """Plain-text report (used by ``python -m repro`` verbose runs)."""
        data = self.snapshot()
        lines = ["stage                        calls    total(s)     mean(ms)"]
        for name, entry in data["timers"].items():
            lines.append(
                f"{name:<28}{entry['calls']:>6}{entry['total_seconds']:>12.4f}"
                f"{entry['mean_seconds'] * 1000:>12.3f}"
            )
        if data["counters"]:
            lines.append("counters:")
            for name, value in data["counters"].items():
                lines.append(f"  {name} = {value}")
        return "\n".join(lines)

"""Batch answering: fan questions out over a thread pool.

The pipeline is read-only over its shared resources once constructed — the
graph indexes, pattern store, WordNet maps and surface index are never
mutated by :meth:`~repro.core.system.QuestionAnsweringSystem.answer` — so
questions can run concurrently against one system instance.  The only
shared *mutable* state is the cache/stat layer, and every one of those
structures (:class:`repro.perf.lru.LRUCache`,
:class:`repro.perf.stats.PerfStats`, the similarity memo) takes its own
lock.  ``docs/performance.md`` spells out the full thread-safety contract.

Results are returned in input order and are exactly what sequential
``answer()`` calls would have produced: each question is answered by the
same deterministic pipeline, and no stage's outcome depends on which thread
ran it or on cache warmth (caches change *when* work happens, never its
result).

**Observability** (docs/observability.md): the tracer's open-span stack is
thread-local, so a traced batch builds one independent span tree per
question on whichever worker thread answered it — ``Answer.trace`` carries
it — and the shared caches' hit/miss events land on the right question's
spans.  Only the cache-delta sub-spans of the map stage are approximate
under concurrency (counters are shared).

**Batch isolation** (docs/reliability.md): one poisoned question can never
kill the batch.  ``answer()`` itself never raises (the reliability layer
converts stage failures into typed ``Answer.failure`` diagnostics), and as
a last line of defence every per-question call here is guarded — an escape
is converted into a failed ``Answer`` for that question only, counted under
``batch.failures``, while every other question completes normally.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.system import Answer, QuestionAnsweringSystem


def default_workers() -> int:
    """Pool width: one thread per core, capped to keep contention sane."""
    return min(8, os.cpu_count() or 1)


class BatchAnswerer:
    """Answers many questions concurrently over one shared system.

    The system's knowledge base must not be mutated while a batch is in
    flight (the same contract as any concurrent reader of
    :class:`repro.rdf.Graph`).
    """

    def __init__(
        self,
        system: "QuestionAnsweringSystem",
        max_workers: int | None = None,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self._system = system
        self._max_workers = max_workers if max_workers is not None else default_workers()

    @property
    def max_workers(self) -> int:
        return self._max_workers

    def answer_many(self, questions: Sequence[str] | Iterable[str]) -> "list[Answer]":
        """Answer every question; results align with the input order."""
        questions = list(questions)
        if not questions:
            return []
        stats = self._system.stats
        stats.increment("batch.questions", len(questions))
        if len(questions) == 1 or self._max_workers == 1:
            return [self._answer_isolated(question) for question in questions]
        with stats.timer("batch.wall"):
            with ThreadPoolExecutor(
                max_workers=min(self._max_workers, len(questions)),
                thread_name_prefix="repro-batch",
            ) as pool:
                return list(pool.map(self._answer_isolated, questions))

    def _answer_isolated(self, question: str) -> "Answer":
        """One question, contained: an escaping exception fails only it.

        The failure is routed through the typed taxonomy
        (:class:`repro.reliability.errors.InternalError`), so a batch
        failure carries the same ``failure``/``failure_stage`` contract as
        a single-question failure.
        """
        try:
            return self._system.answer(question)
        except Exception as error:
            from repro.core.system import Answer
            from repro.reliability.errors import InternalError

            self._system.stats.increment("batch.failures")
            typed = InternalError.from_exception(error)
            return Answer(
                question=question,
                failure=typed.describe(),
                failure_stage=typed.stage_value,
            )

"""A small thread-safe LRU cache with hit/miss accounting.

Used by the SPARQL parse/result caches and the similarity memo layer.
``functools.lru_cache`` is not enough for those call sites: the caches must
be explicitly invalidatable (graph mutation bumps a generation counter),
sized at runtime, and must expose their hit/miss counters to
:class:`repro.perf.stats.PerfStats` so benchmarks can report cache
efficiency.

Thread-safety contract: every public method takes the internal lock, so the
cache can be shared by the :class:`repro.perf.batch.BatchAnswerer` worker
threads.  Values are expected to be immutable (parsed ASTs, frozen result
tuples, floats) — the cache hands out the stored object itself, never a
copy.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable

#: Sentinel distinguishing "cached None" from "absent".
_MISSING = object()


class LRUCache:
    """Bounded mapping with least-recently-used eviction.

    >>> cache = LRUCache(maxsize=2)
    >>> cache.put("a", 1); cache.put("b", 2)
    >>> cache.get("a")
    1
    >>> cache.put("c", 3)      # evicts "b", the least recently used
    >>> cache.get("b") is None
    True
    >>> (cache.hits, cache.misses)
    (1, 1)
    """

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 0:
            raise ValueError(f"maxsize must be >= 0, got {maxsize}")
        self.maxsize = maxsize
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, refreshing its recency on a hit."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return default
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh ``key``; evicts the LRU entry when full."""
        if self.maxsize == 0:
            return
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._data.clear()

    def keys(self) -> list:
        """Snapshot of the keys, least-recently-used first (so replaying
        them through ``put`` reproduces the recency order)."""
        with self._lock:
            return list(self._data.keys())

    def items(self) -> list[tuple[Hashable, Any]]:
        """Snapshot of ``(key, value)`` pairs, least-recently-used first.

        The warm-state snapshot layer (``repro.serve.snapshot``) persists
        these; values are handed out unchanged (the immutability contract
        above), never copied.
        """
        with self._lock:
            return list(self._data.items())

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, int | float]:
        """Counter snapshot for perf reports."""
        return {
            "size": len(self),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }

"""The stable top-level facade — import from here, not from submodules.

Everything a downstream user of the reproduction needs lives behind this
one module, so internal reorganisations (which submodule owns ``Answer``,
where the tracer lives, …) never break callers::

    from repro.api import QuestionAnsweringSystem, load_curated_kb

    qa = QuestionAnsweringSystem.over(load_curated_kb())
    result = qa.answer("Which book is written by Orhan Pamuk?")
    print(result.answers)
    print(result.explanation())          # structured, str() == report text

Batch answering without holding a system yourself::

    from repro.api import answer_many

    results = answer_many(["Who wrote Dune?", "Where was Kafka born?"])

The exported names (and nothing else here) are covered by the
compatibility promise:

============================  =========================================
``QuestionAnsweringSystem``   the whole pipeline; ``.answer()`` /
                              ``.answer_many()`` / ``.metrics()``
``PipelineConfig``            frozen config; ``.with_extensions()``,
                              ``.with_tracing()``, ``.updated()``
``Answer``                    one question's outcome; ``.explanation()``
``Explanation``               structured account of the pipeline run
``KnowledgeBase``             the curated/synthetic KB container
``load_curated_kb``           the paper's curated DBpedia slice
``load_synthetic_kb``         the larger generated KB (benchmarks)
``load_kb``                   one entry point for any storage backend:
                              curated in-memory, a segment directory,
                              or an explicit ``KBBackend``/config
``answer_many``               one-shot batch helper (below)
``ResilientServer``           long-lived concurrent serving layer:
                              admission control, circuit breakers,
                              warm-state snapshots (``repro.serve``)
``ServerConfig``              sizing/policy knobs for the server
============================  =========================================

Observability (``docs/observability.md``) is reached from these same
objects: ``PipelineConfig.with_tracing()`` turns on span traces
(``Answer.trace``), and ``QuestionAnsweringSystem.metrics()`` emits the
unified ``repro.metrics/v1`` document.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import os

from repro.core.config import PipelineConfig
from repro.core.explain import Explanation
from repro.core.system import Answer, QuestionAnsweringSystem
from repro.kb.backend import KBBackend
from repro.kb.builder import KnowledgeBase
from repro.kb.dataset import load_curated_kb
from repro.kb.generator import load_synthetic_kb
from repro.kb.schema import build_dbpedia_ontology
from repro.kb.shard import SegmentedBackend
from repro.serve.server import ResilientServer, ServerConfig

__all__ = [
    "QuestionAnsweringSystem",
    "PipelineConfig",
    "Answer",
    "Explanation",
    "KnowledgeBase",
    "load_curated_kb",
    "load_synthetic_kb",
    "load_kb",
    "answer_many",
    "ResilientServer",
    "ServerConfig",
]


def load_kb(
    source: "str | os.PathLike | KBBackend | PipelineConfig | None" = None,
) -> KnowledgeBase:
    """One entry point for loading a knowledge base from any storage.

    ``source`` selects the backend:

    * ``None`` or ``"curated"`` — the curated in-memory KB
      (:func:`load_curated_kb`), unchanged default behaviour;
    * a path (``str``/``PathLike``) to a segment directory written by
      ``repro kb build-segments`` — served out-of-core through
      :class:`repro.kb.SegmentedBackend`;
    * a :class:`repro.kb.KBBackend` instance — wrapped directly via
      :meth:`KnowledgeBase.from_backend`;
    * a :class:`PipelineConfig` — resolved from its ``kb_backend`` /
      ``kb_segments_path`` fields (what the CLI passes through).
    """
    if source is None or source == "curated":
        return load_curated_kb()
    if isinstance(source, PipelineConfig):
        if source.kb_backend == "memory":
            return load_curated_kb()
        if source.kb_backend == "segments":
            if not source.kb_segments_path:
                raise ValueError(
                    "kb_backend='segments' needs kb_segments_path "
                    "(CLI: --kb-path DIR, written by "
                    "'repro kb build-segments')"
                )
            return load_kb(source.kb_segments_path)
        raise ValueError(f"unknown kb_backend {source.kb_backend!r}")
    if isinstance(source, KBBackend):
        return KnowledgeBase.from_backend(build_dbpedia_ontology(), source)
    path = os.fspath(source)
    return KnowledgeBase.from_backend(
        build_dbpedia_ontology(), SegmentedBackend(path)
    )


def answer_many(
    questions: Sequence[str] | Iterable[str],
    *,
    kb: KnowledgeBase | None = None,
    config: PipelineConfig | None = None,
    max_workers: int | None = None,
) -> list[Answer]:
    """Answer a batch of questions in one call, results in input order.

    Builds a :class:`QuestionAnsweringSystem` over ``kb`` (the curated KB
    when omitted) and fans the questions out over a thread pool — the
    convenience wrapper around
    :meth:`QuestionAnsweringSystem.answer_many` for callers who do not
    need to keep the system (and its warm caches) around.  Constructing
    the system dominates one-shot cost, so hold your own instance when
    answering repeatedly.
    """
    system = QuestionAnsweringSystem.over(
        kb if kb is not None else load_curated_kb(), config
    )
    return system.answer_many(questions, max_workers=max_workers)

"""Crash-safe warm-state snapshots (``repro.snapshot/v1``).

A restarted server pays the cold-start cliff: empty result cache, empty
plan cache, empty similarity memos.  This module persists those warm caches
so a restart resumes near its pre-crash hit rate.

**File format** — one file, two parts:

* line 1: a JSON header (UTF-8, newline-terminated) carrying the schema
  identifier, a SHA-256 checksum + byte length of the payload, the
  knowledge-base fingerprint (triple count + graph generation) the state
  was captured against, and the restore-side entry counts;
* the rest: a pickle of ``QuestionAnsweringSystem.export_warm_state()``.

Compiled query plans are never serialised — they close over graph indexes
— only their AST keys travel, and the restore recompiles them against the
*current* graph.  Result-cache entries are only valid for the exact graph
they were computed on, which is what the fingerprint enforces: any
mismatch (mutation bumped the generation, different KB entirely) rejects
the snapshot with a typed :class:`~repro.serve.errors.SnapshotError` and
leaves the caches cold — a safe, merely slower, start.

**Crash safety** — the snapshot is written to a temp file in the target
directory and moved into place with ``os.replace``: readers see either the
old complete file or the new complete file, never a torn write.  A crash
*during* a write leaves a stray ``.tmp`` file and an intact previous
snapshot.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile

from repro.serve.errors import SnapshotError

#: Schema identifier stamped into (and required of) every snapshot header.
SNAPSHOT_SCHEMA = "repro.snapshot/v1"


def kb_fingerprint(system) -> dict:
    """The identity of the storage a warm state is valid against.

    Combines the graph-level counts with the storage backend's own
    :meth:`~repro.kb.backend.KBBackend.fingerprint` — for segment sets
    that is the content hash of every shard's checksum, so a snapshot
    taken over one segment directory never restores over different (or
    rebuilt) segments even when the triple counts happen to agree.
    """
    graph = system.kb.graph
    fingerprint: dict = {
        "triples": len(graph),
        "generation": graph.generation,
    }
    backend = getattr(system.kb, "backend", None)
    if backend is not None:
        fingerprint["backend"] = backend.fingerprint()
    return fingerprint


def save_snapshot(system, path: str | os.PathLike) -> dict:
    """Write the system's warm caches to ``path`` atomically.

    Returns the header dict (schema, checksum, fingerprint, counts).
    """
    state = system.export_warm_state()
    payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    header = {
        "schema": SNAPSHOT_SCHEMA,
        "checksum": hashlib.sha256(payload).hexdigest(),
        "payload_bytes": len(payload),
        "kb": kb_fingerprint(system),
        "counts": {
            "plan_keys": len(state["engine"]["plan_keys"]),
            "results": len(state["engine"]["results"]),
            "mapper_memos": sum(
                len(entries) for entries in state["mapper"].values()
            ),
        },
    }
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(json.dumps(header).encode("utf-8") + b"\n")
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    system.stats.increment("snapshot.saved")
    return header


def load_snapshot(system, path: str | os.PathLike) -> dict[str, int]:
    """Validate and restore a snapshot into the system's caches.

    Returns the restore counts (``plans`` / ``results`` /
    ``mapper_memos``).  Raises :class:`SnapshotError` — after bumping the
    ``snapshot.rejected`` counter — on any validation failure; the caches
    are untouched in that case (validation happens before any ``put``).
    """
    try:
        with open(os.fspath(path), "rb") as handle:
            header_line = handle.readline()
            payload = handle.read()
    except OSError as error:
        return _reject(system, f"unreadable snapshot: {error}")

    try:
        header = json.loads(header_line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        return _reject(system, f"corrupt snapshot header: {error}")

    if header.get("schema") != SNAPSHOT_SCHEMA:
        return _reject(
            system,
            f"unknown snapshot schema {header.get('schema')!r} "
            f"(expected {SNAPSHOT_SCHEMA!r})",
        )
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header.get("checksum") or len(payload) != header.get(
        "payload_bytes"
    ):
        return _reject(system, "snapshot payload failed checksum validation")
    fingerprint = kb_fingerprint(system)
    if header.get("kb") != fingerprint:
        return _reject(
            system,
            f"snapshot was captured against KB {header.get('kb')}, "
            f"running KB is {fingerprint}",
        )

    try:
        state = pickle.loads(payload)
        counts = system.restore_warm_state(state)
    except SnapshotError:
        raise
    except Exception as error:  # torn/garbage payload that passed checksum
        return _reject(system, f"snapshot restore failed: {error}")
    system.stats.increment("snapshot.restored")
    return counts


def _reject(system, reason: str) -> "dict[str, int]":
    system.stats.increment("snapshot.rejected")
    raise SnapshotError(reason)

"""A per-stage circuit breaker with half-open probing.

State machine (the classic three states):

* **closed** — requests flow; ``failure_threshold`` *consecutive* failures
  trip the breaker open (a single success resets the streak, so sporadic
  candidate errors under normal load never trip it);
* **open** — requests are rejected instantly (fail-fast) until
  ``recovery_s`` has elapsed since the trip;
* **half-open** — after the recovery wait, up to ``half_open_probes``
  in-flight requests are let through as probes.  A probe success closes
  the breaker; a probe failure re-opens it and restarts the recovery
  clock.

``clock`` is injectable so tests drive the recovery timer deterministically
(the same pattern as :class:`repro.reliability.budgets.Deadline`).  All
transitions happen under one lock; the breaker is shared by every serving
worker thread.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

#: State names, also exported as gauge values via :meth:`CircuitBreaker.snapshot`.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"

#: Numeric codes for the ``breaker.<name>.state`` gauge (bounded, documented
#: in docs/observability.md): closed=0, open=1, half_open=2.
STATE_CODES = {CLOSED: 0, OPEN: 1, HALF_OPEN: 2}


class CircuitBreaker:
    """One breaker, usually guarding one pipeline stage.

    >>> ticks = [0.0]
    >>> breaker = CircuitBreaker("execute", failure_threshold=2,
    ...                          recovery_s=5.0, clock=lambda: ticks[0])
    >>> breaker.allow(), breaker.state
    (True, 'closed')
    >>> breaker.record_failure(); breaker.record_failure()
    >>> breaker.state, breaker.allow()
    ('open', False)
    >>> ticks[0] = 6.0          # recovery window elapsed
    >>> breaker.allow(), breaker.state   # the probe is admitted
    (True, 'half_open')
    >>> breaker.record_success(); breaker.state
    'closed'
    """

    def __init__(
        self,
        name: str,
        failure_threshold: int = 5,
        recovery_s: float = 5.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        self.name = name
        self.failure_threshold = failure_threshold
        self.recovery_s = recovery_s
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        # Lifetime transition/rejection counters (exported as metrics).
        self.opened_count = 0
        self.closed_count = 0
        self.rejected_count = 0
        self.probe_count = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    # ------------------------------------------------------------------

    def allow(self) -> bool:
        """Admission check; called by the guard *before* the stage runs.

        Returns False when the request must be rejected (breaker open, or
        half-open with every probe slot taken).  A True return from the
        half-open state claims a probe slot, which the subsequent
        ``record_success``/``record_failure`` releases.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if self._clock() - self._opened_at >= self.recovery_s:
                    self._state = HALF_OPEN
                    self._probes_in_flight = 0
                else:
                    self.rejected_count += 1
                    return False
            # half-open: admit at most half_open_probes concurrent probes
            if self._probes_in_flight < self.half_open_probes:
                self._probes_in_flight += 1
                self.probe_count += 1
                return True
            self.rejected_count += 1
            return False

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            if self._state == HALF_OPEN:
                self._state = CLOSED
                self._probes_in_flight = 0
                self.closed_count += 1

    def record_failure(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                # The probe failed: back to open, recovery clock restarts.
                self._trip()
                return
            self._consecutive_failures += 1
            if (
                self._state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._trip()

    def _trip(self) -> None:
        """Transition to open (caller holds the lock)."""
        self._state = OPEN
        self._opened_at = self._clock()
        self._consecutive_failures = 0
        self._probes_in_flight = 0
        self.opened_count += 1

    def reset(self) -> None:
        """Force-close (used by the soak harness between phases)."""
        with self._lock:
            self._state = CLOSED
            self._consecutive_failures = 0
            self._probes_in_flight = 0

    # ------------------------------------------------------------------

    def snapshot(self) -> dict[str, int]:
        """Bounded per-breaker metric values (one entry per field, never
        per request): state code + lifetime transition counters."""
        with self._lock:
            return {
                "state": STATE_CODES[self._state],
                "opened": self.opened_count,
                "closed": self.closed_count,
                "rejected": self.rejected_count,
                "probes": self.probe_count,
            }

"""The resilient serving layer (docs/reliability.md "Serving & overload
behavior").

:class:`ResilientServer` turns the batch-oriented
:class:`repro.core.system.QuestionAnsweringSystem` into a long-lived
concurrent service with explicit overload behavior:

* **admission control** — a bounded request queue; a full queue sheds the
  request with a typed :class:`Overloaded` failure (``reject`` policy) or
  re-routes it onto a small tight-budget lane (``degrade`` policy);
* **circuit breakers + bulkheads** — per-stage failure breakers with
  half-open probing and per-stage concurrency limits
  (:class:`~repro.serve.guard.StageGuard`), so a wedged SPARQL backend
  cannot starve the NLP-only stages;
* **crash-safe warm state** — versioned, checksummed snapshots of the warm
  caches (:mod:`repro.serve.snapshot`) so a restarted server skips the
  cold-start cliff;
* **chaos/soak harness** — :func:`repro.serve.soak.run_soak` drives the
  server under concurrent fault schedules and asserts the serving
  invariants (every request resolves, typed failures only, no state bleed).
"""

from repro.serve.breaker import CircuitBreaker
from repro.serve.errors import Overloaded, ServeError, ServerClosed, SnapshotError
from repro.serve.guard import GUARDED_STAGES, Bulkhead, StageGuard
from repro.serve.server import ResilientServer, ServerConfig
from repro.serve.snapshot import SNAPSHOT_SCHEMA, load_snapshot, save_snapshot
from repro.serve.soak import SoakReport, run_soak

__all__ = [
    "ResilientServer",
    "ServerConfig",
    "CircuitBreaker",
    "StageGuard",
    "Bulkhead",
    "GUARDED_STAGES",
    "ServeError",
    "Overloaded",
    "ServerClosed",
    "SnapshotError",
    "SNAPSHOT_SCHEMA",
    "save_snapshot",
    "load_snapshot",
    "SoakReport",
    "run_soak",
]

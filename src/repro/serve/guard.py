"""Bulkheads and the stage guard: the serving layer's grip on the pipeline.

The pipeline exposes exactly one integration point
(``PipelineConfig.stage_guard``): an object with ``enter(stage)`` /
``exit(stage, failed)`` hooks called at the annotate/map/execute stage
boundaries.  :class:`StageGuard` implements it by composing, per stage,

* a :class:`Bulkhead` — a plain semaphore capping how many worker threads
  may be *inside* the stage at once, so a slow SPARQL backend (execute)
  cannot absorb every worker and starve the NLP-only stages; and
* a :class:`~repro.serve.breaker.CircuitBreaker` — failure-rate fail-fast.

``enter`` acquires the bulkhead first, then consults the breaker (and
releases the bulkhead again if the breaker rejects), raising the typed
:class:`~repro.reliability.BulkheadSaturatedError` /
:class:`~repro.reliability.CircuitOpenError`.  Rejections raised by
``enter`` never see a matching ``exit`` call — the pipeline only calls
``exit`` for stages it actually entered — so a rejection neither releases
an unacquired slot nor counts as a fresh breaker failure.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.perf.stats import PerfStats
from repro.reliability.errors import BulkheadSaturatedError, CircuitOpenError
from repro.serve.breaker import CircuitBreaker

#: The stage boundaries the pipeline exposes to the guard.  Extract and
#: generate run in-process between annotate and execute and are cheap; the
#: three guarded stages are where external work (parsing, vocabulary scans,
#: SPARQL execution) concentrates.
GUARDED_STAGES: tuple[str, ...] = ("annotate", "map", "execute")


class Bulkhead:
    """A per-stage concurrency limit with a bounded acquire wait.

    ``wait_s=0`` (the default) makes saturation shed instantly — the
    serving layer prefers a fast typed rejection over queueing inside the
    pipeline, because queueing is the admission queue's job.
    """

    def __init__(self, name: str, max_concurrent: int, wait_s: float = 0.0) -> None:
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        self.name = name
        self.max_concurrent = max_concurrent
        self.wait_s = wait_s
        self._semaphore = threading.BoundedSemaphore(max_concurrent)
        self._lock = threading.Lock()
        self._in_flight = 0
        self.rejected_count = 0

    def acquire(self) -> bool:
        if self.wait_s > 0:
            acquired = self._semaphore.acquire(timeout=self.wait_s)
        else:
            acquired = self._semaphore.acquire(blocking=False)
        with self._lock:
            if acquired:
                self._in_flight += 1
            else:
                self.rejected_count += 1
        return acquired

    def release(self) -> None:
        with self._lock:
            self._in_flight -= 1
        self._semaphore.release()

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {
                "limit": self.max_concurrent,
                "in_flight": self._in_flight,
                "rejected": self.rejected_count,
            }


class StageGuard:
    """Per-stage breakers + bulkheads behind the pipeline's guard hooks."""

    def __init__(
        self,
        breakers: dict[str, CircuitBreaker] | None = None,
        bulkheads: dict[str, Bulkhead] | None = None,
        stats: PerfStats | None = None,
    ) -> None:
        self._breakers = breakers if breakers is not None else {}
        self._bulkheads = bulkheads if bulkheads is not None else {}
        self._stats = stats

    @classmethod
    def default(
        cls,
        failure_threshold: int = 5,
        recovery_s: float = 5.0,
        concurrency: dict[str, int] | None = None,
        stats: PerfStats | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> "StageGuard":
        """A guard over every stage in :data:`GUARDED_STAGES`.

        ``concurrency`` maps stage name -> bulkhead size (stages absent
        from the mapping get no bulkhead, only a breaker).
        """
        concurrency = concurrency if concurrency is not None else {}
        breakers = {
            stage: CircuitBreaker(
                stage,
                failure_threshold=failure_threshold,
                recovery_s=recovery_s,
                clock=clock,
            )
            for stage in GUARDED_STAGES
        }
        bulkheads = {
            stage: Bulkhead(stage, limit)
            for stage, limit in concurrency.items()
            if limit is not None
        }
        return cls(breakers=breakers, bulkheads=bulkheads, stats=stats)

    # -- the pipeline-facing hook protocol ------------------------------

    def enter(self, stage: str) -> None:
        """Gate entry to a stage; raises the typed rejection on refusal."""
        bulkhead = self._bulkheads.get(stage)
        if bulkhead is not None and not bulkhead.acquire():
            self._count(f"bulkhead.{stage}.rejected")
            raise BulkheadSaturatedError(
                stage,
                f"{bulkhead.in_flight}/{bulkhead.max_concurrent} slots busy",
            )
        breaker = self._breakers.get(stage)
        if breaker is not None and not breaker.allow():
            if bulkhead is not None:
                bulkhead.release()
            self._count(f"breaker.{stage}.rejected")
            raise CircuitOpenError(stage, "circuit breaker open")

    def exit(self, stage: str, failed: bool) -> None:
        """Record the stage outcome and release the bulkhead slot."""
        breaker = self._breakers.get(stage)
        if breaker is not None:
            before = breaker.state
            if failed:
                breaker.record_failure()
                self._count(f"breaker.{stage}.failures")
                if breaker.state != before and breaker.state == "open":
                    self._count(f"breaker.{stage}.opened")
            else:
                breaker.record_success()
                if before == "half_open" and breaker.state == "closed":
                    self._count(f"breaker.{stage}.closed")
        bulkhead = self._bulkheads.get(stage)
        if bulkhead is not None:
            bulkhead.release()

    # -- management -----------------------------------------------------

    def breaker(self, stage: str) -> CircuitBreaker | None:
        return self._breakers.get(stage)

    def reset(self) -> None:
        """Force-close every breaker (soak-harness phase boundaries)."""
        for breaker in self._breakers.values():
            breaker.reset()

    def snapshot(self) -> dict[str, dict[str, int]]:
        """Bounded metric families: one ``breaker.<stage>`` and
        ``bulkhead.<stage>`` entry per *stage* — never per request."""
        doc: dict[str, dict[str, int]] = {}
        for stage, breaker in self._breakers.items():
            doc[f"breaker.{stage}"] = breaker.snapshot()
        for stage, bulkhead in self._bulkheads.items():
            doc[f"bulkhead.{stage}"] = bulkhead.snapshot()
        return doc

    def _count(self, name: str) -> None:
        if self._stats is not None:
            self._stats.increment(name)

"""Chaos/soak harness for the serving layer.

:func:`run_soak` drives a :class:`~repro.serve.server.ResilientServer`
under a deterministic concurrent fault schedule and checks the serving
invariants that no unit test can: behavior *under sustained concurrent
load with faults firing mid-request*.

**Chaos schedule** (seeded, reproducible — no randomness beyond the seed):

* *slow-stage faults* — ``slow``-kind :class:`FaultSpec` on the execute
  stage: injected latency, answers unchanged (the wedged-backend shape);
* *breaker-trip storms* — bursts of ``error``-kind execute faults sized
  past the breaker threshold, so the execute breaker trips, rejects
  fast, half-open-probes, and recovers — repeatedly;
* *annotate storms* — ``error``-kind annotate faults matched to dedicated
  marker questions (containing :data:`CHAOS_MARKER`), tripping the
  annotate breaker while control traffic degrades to shallow annotation;
* *snapshot corruption* — a warm snapshot is saved, a corrupted copy is
  restored (must be rejected with a typed
  :class:`~repro.serve.errors.SnapshotError`), then the intact one is
  restored (must succeed);
* *mid-request hot reload* — the serving system is swapped for a twin
  while requests are in flight.

**Invariants asserted** (violations land in ``SoakReport.violations``):

1. every submitted request's future resolves within the hang timeout
   (no deadlock, no stranded future);
2. a request that did not answer carries a failure diagnostic, and every
   *shed* request's failure is serving-typed (``failure_stage="serve"``);
3. no cross-request state bleed: control questions that succeeded
   cleanly (not degraded, not truncated) match the pre-soak sequential
   answers byte-for-byte;
4. after the soak — faults disarmed, breakers reset — the full control
   set answered sequentially is byte-identical to the clean run (warm
   caches poisoned by chaos would show up here).
"""

from __future__ import annotations

import random
import time
from concurrent.futures import Future
from dataclasses import dataclass, field

from repro.core.config import PipelineConfig
from repro.core.system import Answer, QuestionAnsweringSystem
from repro.kb.builder import KnowledgeBase
from repro.qald.devset import load_dev_questions
from repro.reliability.faults import FaultInjector, FaultSpec
from repro.serve.errors import SnapshotError
from repro.serve.server import ResilientServer, ServerConfig, peak_rss_mb
from repro.serve.snapshot import load_snapshot, save_snapshot

#: Substring marking dedicated chaos questions; match-targeted faults fire
#: only on questions containing it, so control traffic stays comparable.
CHAOS_MARKER = "zzchaos"

#: Seconds a future may stay unresolved after the drive loop ends before
#: the harness calls it a hang (invariant 1).
HANG_TIMEOUT_S = 30.0


def answer_signature(answer: Answer) -> tuple:
    """A byte-comparable digest of what a question produced."""
    return (
        answer.question,
        tuple(term.n3() for term in answer.answers),
        answer.boolean,
        answer.failure,
        answer.failure_stage,
        answer.truncated,
        tuple(answer.degraded),
    )


@dataclass
class SoakReport:
    """Outcome of one soak run (``ok`` is the CI gate)."""

    duration_s: float
    submitted: int = 0
    resolved: int = 0
    answered: int = 0
    typed_failures: int = 0
    shed: int = 0
    degraded: int = 0
    chaos_events: dict[str, int] = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)
    post_soak_identical: bool = False
    metrics: dict = field(default_factory=dict)
    #: Whether the serving workers shared one segment directory + scatter
    #: pool (segmented KB), and this replica's peak resident set — the
    #: measured form of the "no per-replica heap copy" claim.
    shared_segments: bool = False
    peak_rss_mb: float | None = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "PASS" if self.ok else f"FAIL ({len(self.violations)} violations)"
        lines = [
            f"soak {status}: {self.submitted} submitted, "
            f"{self.resolved} resolved, {self.answered} answered, "
            f"{self.typed_failures} typed failures, {self.shed} shed, "
            f"{self.degraded} degraded in {self.duration_s:.1f}s",
            "chaos events: "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.chaos_events.items())),
            f"post-soak control answers identical: {self.post_soak_identical}",
            f"shared segments + scatter pool: {self.shared_segments}"
            + (
                f", replica peak RSS {self.peak_rss_mb} MiB"
                if self.peak_rss_mb is not None
                else ""
            ),
        ]
        lines.extend(f"VIOLATION: {v}" for v in self.violations)
        return "\n".join(lines)


def run_soak(
    kb: KnowledgeBase,
    duration_s: float = 10.0,
    seed: int = 0,
    quick: bool = False,
    server_config: ServerConfig | None = None,
    snapshot_path=None,
) -> SoakReport:
    """Run the chaos/soak harness over ``kb``; see the module docstring.

    ``quick`` trims the fault burst sizes (for the CI smoke job);
    ``snapshot_path`` enables the snapshot-corruption chaos events (a
    writable file path, e.g. under a temp directory).
    """
    rng = random.Random(seed)
    faults = FaultInjector()
    config = PipelineConfig().with_fault_injector(faults)
    system = QuestionAnsweringSystem.over(kb, config)
    twin = QuestionAnsweringSystem.over(kb, config)

    controls = [question.text for question in load_dev_questions()]
    clean = {
        text: answer_signature(system.answer(text)) for text in controls
    }

    if server_config is None:
        server_config = ServerConfig(
            max_queue=32,
            workers=4,
            shed_policy="degrade",
            breaker_failure_threshold=3,
            breaker_recovery_s=0.3,
        )
    server = ResilientServer(system, server_config)
    report = SoakReport(duration_s=duration_s)
    report.shared_segments = server.scatter is not None
    events = report.chaos_events
    in_flight: list[tuple[str, bool, Future]] = []
    storm_size = server_config.breaker_failure_threshold + (1 if quick else 3)

    def chaos(step: int) -> None:
        """One deterministic chaos event, rotated by step count."""
        kind = step % 5
        if kind == 0:
            faults.arm(
                FaultSpec("execute", "slow", times=8, delay_ms=2.0)
            )
            events["slow_execute"] = events.get("slow_execute", 0) + 1
        elif kind == 1:
            # Breaker storm: enough execute errors to trip the breaker.
            # The fault fires once per *candidate*, and the breaker counts
            # one failure per *question*, so the firing budget is sized
            # well past the per-question candidate count.
            faults.arm(FaultSpec("execute", "error", times=storm_size * 16))
            events["execute_storm"] = events.get("execute_storm", 0) + 1
        elif kind == 2:
            faults.arm(
                FaultSpec("annotate", "error", match=CHAOS_MARKER, times=storm_size)
            )
            for index in range(storm_size):
                submit(f"Who is {CHAOS_MARKER} {step} {index}?", chaos_q=True)
            events["annotate_storm"] = events.get("annotate_storm", 0) + 1
        elif kind == 3 and snapshot_path is not None:
            _snapshot_chaos(server, snapshot_path, report, events)
        elif kind == 4:
            server.hot_reload(twin if server.system is system else system)
            events["hot_reload"] = events.get("hot_reload", 0) + 1

    def submit(text: str, chaos_q: bool = False) -> None:
        future = server.submit(text)
        report.submitted += 1
        in_flight.append((text, chaos_q, future))

    # -- drive loop -----------------------------------------------------
    deadline = time.monotonic() + duration_s
    # Chaos fires in bursts spaced comfortably past the breaker recovery
    # window: the calm stretches in between are what let breakers recover
    # (exercising the half-open/close path) and let clean control answers
    # accumulate for the byte-compare invariant.
    chaos_spacing_s = max(3.0 * server_config.breaker_recovery_s, duration_s / 12.0)
    next_chaos = time.monotonic() + chaos_spacing_s / 2.0
    chaos_step = 0
    while time.monotonic() < deadline:
        if time.monotonic() >= next_chaos:
            chaos(chaos_step)
            chaos_step += 1
            next_chaos = time.monotonic() + chaos_spacing_s
        burst = rng.randint(1, 4)
        for _ in range(burst):
            submit(rng.choice(controls))
        # Let the queue drain a little so admission shedding is exercised
        # but not the only behavior.
        time.sleep(0.001)

    # -- invariant 1: every future resolves (no deadlock) ---------------
    outcomes: list[tuple[str, bool, Answer]] = []
    for text, chaos_q, future in in_flight:
        try:
            answer = future.result(timeout=HANG_TIMEOUT_S)
        except Exception as error:
            report.violations.append(
                f"request did not resolve cleanly ({text!r}): "
                f"{type(error).__name__}: {error}"
            )
            continue
        report.resolved += 1
        outcomes.append((text, chaos_q, answer))

    # -- invariants 2 + 3 ----------------------------------------------
    for text, chaos_q, answer in outcomes:
        if answer.degraded:
            report.degraded += 1
        if answer.answered:
            report.answered += 1
        elif answer.failure is None:
            report.violations.append(
                f"unanswered request with no failure diagnostic: {text!r}"
            )
        else:
            report.typed_failures += 1
        if answer.failure_stage == "serve":
            report.shed += 1
            if "Overloaded" not in answer.failure and "ServerClosed" not in answer.failure:
                report.violations.append(
                    f"shed request without a typed serve failure: "
                    f"{answer.failure!r}"
                )
        if (
            not chaos_q
            and answer.answered
            and not answer.degraded
            and not answer.truncated
            and answer.failure is None
        ):
            if answer_signature(answer) != clean[text]:
                report.violations.append(
                    f"cross-request state bleed: {text!r} answered "
                    f"differently under load than sequentially"
                )

    # -- invariant 4: post-soak byte-identity ---------------------------
    faults.disarm()
    server.guard.reset()
    server.stop()
    report.post_soak_identical = all(
        answer_signature(system.answer(text)) == clean[text] for text in controls
    )
    if not report.post_soak_identical:
        report.violations.append(
            "post-soak sequential control answers differ from the clean run"
        )
    report.metrics = server.metrics()
    report.peak_rss_mb = peak_rss_mb()
    return report


def _snapshot_chaos(
    server: ResilientServer, path, report: SoakReport, events: dict
) -> None:
    """Save, corrupt-and-expect-rejection, then restore the intact copy."""
    import os

    server.save_snapshot(path)
    corrupt = os.fspath(path) + ".corrupt"
    with open(path, "rb") as handle:
        blob = bytearray(handle.read())
    if blob:
        # The last byte is always inside the pickle payload (the header is
        # line 1), so the flip deterministically breaks the checksum.
        blob[-1] ^= 0xFF
    with open(corrupt, "wb") as handle:
        handle.write(bytes(blob))
    try:
        load_snapshot(server.system, corrupt)
        report.violations.append(
            "corrupted snapshot was accepted (checksum not enforced)"
        )
    except SnapshotError:
        pass
    try:
        server.restore_snapshot(path)
    except SnapshotError as error:
        report.violations.append(f"intact snapshot rejected: {error}")
    events["snapshot_cycle"] = events.get("snapshot_cycle", 0) + 1

"""Typed failures owned by the serving layer.

They extend the pipeline's :class:`repro.reliability.StageError` taxonomy
so shed requests satisfy the same contract as stage failures — the caller
reads ``Answer.failure`` / ``Answer.failure_stage`` and never parses text.
Serving-layer failures are not attributed to a pipeline stage:
``failure_stage`` carries the literal ``"serve"``.
"""

from __future__ import annotations

from repro.reliability.errors import StageError


class ServeError(StageError):
    """Base of the serving-layer failures (admission, lifecycle).

    >>> Overloaded("queue full (64 waiting)").describe()
    "Overloaded at stage 'serve': queue full (64 waiting)"
    >>> Overloaded().stage_value
    'serve'
    """

    stage = None  # deliberately outside the pipeline Stage enum

    @property
    def stage_value(self) -> str:
        return "serve"


class Overloaded(ServeError):
    """Admission control shed this request: the bounded queue (and, under
    the ``degrade`` policy, the degraded lane too) had no room, or the
    request's deadline expired before a worker picked it up."""


class ServerClosed(ServeError):
    """The request arrived after :meth:`ResilientServer.stop` (or was
    still queued when the server drained).  Every such request is still
    *resolved* — with this typed failure — never dropped."""


class SnapshotError(Exception):
    """A warm-state snapshot could not be saved or restored: corrupt
    payload (checksum mismatch), unknown schema, or a knowledge-base
    fingerprint that no longer matches the running KB.  A restore failure
    is always safe: the caches are simply left cold."""

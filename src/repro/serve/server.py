"""The long-lived concurrent serving layer over the QA pipeline.

:class:`ResilientServer` accepts questions from many callers, runs them on
a fixed worker pool, and guarantees the **resolution invariant**: every
submitted request's future resolves to an :class:`repro.core.system.Answer`
— a real answer, the pipeline's own typed stage failure, or a
serving-layer typed failure (``failure_stage == "serve"``).  Futures never
carry exceptions and are never dropped, including across overload,
shutdown, and hot KB reload.

Overload behavior (docs/reliability.md "Serving & overload behavior"):

* the admission queue is bounded (``max_queue``); a full queue **sheds**
  by policy — ``reject`` resolves the request immediately with
  :class:`~repro.serve.errors.Overloaded`; ``degrade`` re-routes it onto a
  small degraded lane that answers under a tight wall-clock budget
  (``degraded_timeout_s``), trading answer depth for admission;
* every request carries a :class:`repro.reliability.Deadline` from
  admission time, so time spent *queued* counts against the request and
  an expired request is shed at dequeue instead of wasting a worker;
* per-stage circuit breakers and bulkheads
  (:class:`~repro.serve.guard.StageGuard`) are installed into the
  pipeline, so stage-level failure storms fail fast and slow SPARQL
  execution cannot absorb every worker.

Hot KB reload: :meth:`ResilientServer.hot_reload` swaps the entire system
reference atomically.  Workers read the reference once per request, so
in-flight requests finish against the system they started on — no torn
reads — and the next dequeue picks up the new one.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future
from dataclasses import dataclass

from repro.core.system import Answer, QuestionAnsweringSystem
from repro.kb.shard import SegmentedBackend
from repro.obs.metrics import MetricsRegistry
from repro.perf.stats import PerfStats
from repro.reliability.budgets import Deadline
from repro.reliability.errors import InternalError, StageError
from repro.serve.errors import Overloaded, ServerClosed, SnapshotError
from repro.serve.guard import StageGuard
from repro.serve.snapshot import load_snapshot, save_snapshot
from repro.sparql.scatter import ScatterGatherExecutor


def peak_rss_mb() -> float | None:
    """This process's peak resident set (VmHWM), in MiB.

    Linux-only (``/proc/self/status``); returns ``None`` elsewhere.  The
    serving layer reports it per replica so the shared-segment claim —
    replicas mmap one segment directory instead of holding one heap copy
    each — is a measured number in ``metrics()`` and the soak report.
    """
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return round(int(line.split()[1]) / 1024, 1)
    except OSError:
        return None
    return None

#: Queue sentinel telling a worker to exit.
_STOP = object()

#: The admission shedding policies (see :attr:`ServerConfig.shed_policy`).
SHED_POLICIES: tuple[str, ...] = ("reject", "degrade")


@dataclass(frozen=True)
class ServerConfig:
    """Sizing and policy knobs for :class:`ResilientServer`."""

    #: Bound on the admission queue; a full queue sheds (never blocks).
    max_queue: int = 64
    #: Primary worker pool size.
    workers: int = 4
    #: ``"reject"`` — shed with a typed Overloaded failure; ``"degrade"``
    #: — shed onto the degraded lane (tight budget) first, reject only
    #: when that lane is full too.
    shed_policy: str = "reject"
    #: Degraded-lane pool size and queue bound (used by ``degrade`` only).
    degraded_workers: int = 1
    max_degraded_queue: int = 16
    #: Wall-clock budget of a degraded-lane request, in seconds.
    degraded_timeout_s: float = 0.25
    #: Default per-request deadline when ``submit`` passes none
    #: (``None`` = unlimited).
    default_timeout_s: float | None = None
    #: Per-stage bulkhead sizes (``None`` disables that stage's bulkhead).
    #: Execute defaults below the worker count so a wedged SPARQL backend
    #: leaves workers free for NLP-only traffic.
    annotate_concurrency: int | None = None
    map_concurrency: int | None = None
    execute_concurrency: int | None = 3
    #: Breaker tuning (consecutive failures to trip / seconds until a
    #: half-open probe is allowed).
    breaker_failure_threshold: int = 5
    breaker_recovery_s: float = 5.0
    #: Shard-parallel execution over segmented KBs: when the served
    #: system's backend is a :class:`~repro.kb.shard.SegmentedBackend`,
    #: the server installs one shared
    #: :class:`~repro.sparql.scatter.ScatterGatherExecutor` (one scatter
    #: pool + one set of per-shard result caches for all worker threads,
    #: kept across hot reloads via ``rebind``).  ``scatter_processes``
    #: follows the executor's convention: ``0`` = inline per-shard
    #: execution, ``N`` = pool of N, ``None`` = CPU-bounded default.
    enable_scatter: bool = True
    scatter_processes: int | None = 0

    def __post_init__(self) -> None:
        if self.shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"shed_policy must be one of {SHED_POLICIES}, "
                f"got {self.shed_policy!r}"
            )
        if self.max_queue < 1 or self.workers < 1:
            raise ValueError("max_queue and workers must be >= 1")


class _Request:
    """One admitted question: its future, deadline, and lane."""

    __slots__ = ("question", "future", "deadline", "degraded")

    def __init__(
        self, question: str, future: Future, deadline: Deadline, degraded: bool
    ) -> None:
        self.question = question
        self.future = future
        self.deadline = deadline
        self.degraded = degraded


class ResilientServer:
    """Admission-controlled concurrent serving over one QA system."""

    def __init__(
        self,
        system: QuestionAnsweringSystem,
        config: ServerConfig | None = None,
    ) -> None:
        self._config = config if config is not None else ServerConfig()
        self._stats = PerfStats()
        self._guard = StageGuard.default(
            failure_threshold=self._config.breaker_failure_threshold,
            recovery_s=self._config.breaker_recovery_s,
            concurrency={
                "annotate": self._config.annotate_concurrency,
                "map": self._config.map_concurrency,
                "execute": self._config.execute_concurrency,
            },
            stats=self._stats,
        )
        system.install_stage_guard(self._guard)
        #: One scatter executor shared by every worker thread (and every
        #: hot-reloaded system over the same segments): one process pool,
        #: one mapped segment directory, one set of shard caches.
        self._scatter: ScatterGatherExecutor | None = None
        self._wire_scatter(system)
        #: Swapped atomically by :meth:`hot_reload`; workers read it once
        #: per request.
        self._system = system
        self._queue: "queue.Queue" = queue.Queue(maxsize=self._config.max_queue)
        self._degraded_queue: "queue.Queue" = queue.Queue(
            maxsize=self._config.max_degraded_queue
        )
        self._stopped = threading.Event()
        self._threads: list[threading.Thread] = []
        for index in range(self._config.workers):
            self._spawn(f"repro-serve-{index}", self._queue)
        if self._config.shed_policy == "degrade":
            for index in range(self._config.degraded_workers):
                self._spawn(f"repro-serve-degraded-{index}", self._degraded_queue)

    def _spawn(self, name: str, source: "queue.Queue") -> None:
        thread = threading.Thread(
            target=self._worker, args=(source,), name=name, daemon=True
        )
        thread.start()
        self._threads.append(thread)

    # -- admission ------------------------------------------------------

    def submit(self, question: str, timeout_s: float | None = None) -> Future:
        """Admit one question; returns a future resolving to an Answer.

        Never blocks and never raises: overload, closure and internal
        errors all resolve the future with a typed-failure Answer.
        """
        future: Future = Future()
        self._stats.increment("serve.submitted")
        if self._stopped.is_set():
            self._stats.increment("serve.closed_rejections")
            self._resolve_failure(
                future, question, ServerClosed("server is stopped")
            )
            return future
        seconds = timeout_s if timeout_s is not None else self._config.default_timeout_s
        request = _Request(question, future, Deadline(seconds), degraded=False)
        try:
            self._queue.put_nowait(request)
            return future
        except queue.Full:
            pass
        if self._config.shed_policy == "degrade":
            request.degraded = True
            try:
                self._degraded_queue.put_nowait(request)
                self._stats.increment("serve.shed.degraded")
                return future
            except queue.Full:
                pass
        self._stats.increment("serve.shed.rejected")
        self._resolve_failure(
            future,
            question,
            Overloaded(f"admission queue full ({self._config.max_queue} waiting)"),
        )
        return future

    def answer(self, question: str, timeout_s: float | None = None) -> Answer:
        """Synchronous convenience over :meth:`submit`."""
        return self.submit(question, timeout_s=timeout_s).result()

    # -- workers --------------------------------------------------------

    def _worker(self, source: "queue.Queue") -> None:
        while True:
            item = source.get()
            if item is _STOP:
                return
            try:
                self._serve_one(item)
            except BaseException:  # the resolution invariant is absolute
                if not item.future.done():
                    item.future.set_result(
                        Answer(
                            question=item.question,
                            failure=InternalError("serving worker crashed").describe(),
                            failure_stage="internal",
                        )
                    )

    def _serve_one(self, request: _Request) -> None:
        if request.deadline.expired():
            # The request's budget died in the queue; shed it now rather
            # than spend a worker computing an answer nobody is awaiting.
            self._stats.increment("serve.expired_in_queue")
            self._resolve_failure(
                request.future,
                request.question,
                Overloaded("deadline expired while queued"),
            )
            return
        system = self._system  # one atomic read; hot_reload swaps the ref
        deadline = request.deadline
        if request.degraded:
            budget = min(deadline.remaining(), self._config.degraded_timeout_s)
            deadline = Deadline(budget)
        answer = system.answer(request.question, deadline=deadline)
        if request.degraded:
            answer.degraded.append("serve:degraded-admission")
        self._stats.increment("serve.completed")
        request.future.set_result(answer)

    def _resolve_failure(
        self, future: Future, question: str, error: StageError
    ) -> None:
        future.set_result(
            Answer(
                question=question,
                failure=error.describe(),
                failure_stage=error.stage_value,
            )
        )

    # -- warm state & hot reload ---------------------------------------

    def _wire_scatter(self, system: QuestionAnsweringSystem) -> None:
        """Install (or rebind) the shared scatter executor on ``system``.

        Only systems over a :class:`SegmentedBackend` get one; in-memory
        systems keep plain execution.  On hot reload the *same* executor
        rebinds to the new system's backend — the pool and the mmap'd
        segment pages survive, while the rebind's generation bump empties
        every per-shard result cache (stale cached rows can never serve
        the reloaded KB).
        """
        if not self._config.enable_scatter:
            return
        backend = getattr(system.kb, "backend", None)
        if not isinstance(backend, SegmentedBackend):
            return
        if self._scatter is None:
            self._scatter = ScatterGatherExecutor(
                backend,
                processes=self._config.scatter_processes,
                stats=self._stats,
            )
        else:
            self._scatter.rebind(backend)
        system.kb.engine.install_scatter(self._scatter)

    def hot_reload(self, system: QuestionAnsweringSystem) -> None:
        """Swap in a new system (e.g. over a rebuilt KB) under live load.

        The stage guard moves to the new system; the reference swap is
        atomic, in-flight requests finish on the system they started on.
        The shared scatter executor rebinds to the new system's backend
        (invalidating every per-shard result cache) before the swap, so
        no request ever sees the new system with stale shard state.
        """
        system.install_stage_guard(self._guard)
        self._wire_scatter(system)
        self._system = system
        self._stats.increment("serve.reloads")

    def save_snapshot(self, path) -> dict:
        """Persist the current system's warm caches (atomic write)."""
        return save_snapshot(self._system, path)

    def restore_snapshot(self, path) -> dict[str, int]:
        """Load a warm-state snapshot into the current system.

        When a scatter pool is installed, its backend must agree with the
        served system's backend fingerprint — a drifted pool (e.g. an
        external rebind against different segments) would otherwise let a
        snapshot restore warm caches that the pool's answers no longer
        match.
        """
        if self._scatter is not None:
            backend = getattr(self._system.kb, "backend", None)
            if (
                backend is not None
                and self._scatter.backend.fingerprint() != backend.fingerprint()
            ):
                self._stats.increment("snapshot.rejected")
                raise SnapshotError(
                    "scatter pool is bound to different segments than the "
                    "served system; refusing snapshot restore"
                )
        return load_snapshot(self._system, path)

    @property
    def system(self) -> QuestionAnsweringSystem:
        return self._system

    @property
    def guard(self) -> StageGuard:
        return self._guard

    @property
    def scatter(self) -> ScatterGatherExecutor | None:
        """The shared scatter executor (``None`` for in-memory systems)."""
        return self._scatter

    # -- lifecycle ------------------------------------------------------

    def stop(self, timeout_s: float = 10.0) -> None:
        """Stop accepting work, drain workers, resolve leftovers.

        Requests still queued when the workers exit are resolved with a
        typed :class:`ServerClosed` failure — stop never strands a future.
        """
        if self._stopped.is_set():
            return
        self._stopped.set()
        for thread in self._threads:
            source = (
                self._degraded_queue if "degraded" in thread.name else self._queue
            )
            source.put(_STOP)
        for thread in self._threads:
            thread.join(timeout=timeout_s)
        for source in (self._queue, self._degraded_queue):
            while True:
                try:
                    item = source.get_nowait()
                except queue.Empty:
                    break
                if item is _STOP or item.future.done():
                    continue
                self._stats.increment("serve.closed_rejections")
                self._resolve_failure(
                    item.future,
                    item.question,
                    ServerClosed("server stopped before the request ran"),
                )
        if self._scatter is not None:
            self._scatter.close()

    def __enter__(self) -> "ResilientServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- observability --------------------------------------------------

    def metrics(self) -> dict:
        """The unified ``repro.metrics/v1`` document for server + system.

        Serving-layer families are bounded by construction: ``serve.*``
        counters are fixed names, ``breaker.*`` / ``bulkhead.*`` gauges
        are keyed per *stage* — cardinality never grows with traffic.
        """
        registry = MetricsRegistry()
        registry.absorb_perf_stats(self._stats)
        registry.set_gauge("serve.queue.depth", self._queue.qsize())
        registry.set_gauge("serve.queue.capacity", self._config.max_queue)
        registry.set_gauge(
            "serve.degraded_queue.depth", self._degraded_queue.qsize()
        )
        registry.set_gauge("serve.workers", self._config.workers)
        registry.set_gauge(
            "serve.scatter.installed", 1 if self._scatter is not None else 0
        )
        rss = peak_rss_mb()
        if rss is not None:
            registry.set_gauge("serve.replica.peak_rss_mb", rss)
        for family, values in self._guard.snapshot().items():
            for field_name, value in values.items():
                registry.set_gauge(f"{family}.{field_name}", value)
        registry.merge_snapshot(self._system.metrics())
        return registry.snapshot()

"""String similarity measures used by the property/entity mapping steps.

The paper (section 2.2.1) scores a candidate DBpedia property against a
predicate word by the length of their *greatest common subsequence* divided
by the word length, so that e.g. ``taxiDriver`` does not match ``river``
merely by substring containment.  :mod:`repro.similarity.lcs` implements that
score; :mod:`repro.similarity.metrics` provides alternative measures used by
the ablation benchmarks (A4 in DESIGN.md).
"""

from repro.similarity.cache import MemoizedSimilarity, memoize_similarity
from repro.similarity.lcs import (
    lcs_length,
    lcs_score,
    lcs_string,
    subsequence_similarity,
)
from repro.similarity.metrics import (
    dice_coefficient,
    jaccard_similarity,
    jaro_winkler,
    levenshtein_distance,
    levenshtein_similarity,
    normalized_overlap,
)
from repro.similarity.registry import SIMILARITY_FUNCTIONS, get_similarity

__all__ = [
    "lcs_length",
    "lcs_score",
    "lcs_string",
    "subsequence_similarity",
    "levenshtein_distance",
    "levenshtein_similarity",
    "jaccard_similarity",
    "dice_coefficient",
    "jaro_winkler",
    "normalized_overlap",
    "SIMILARITY_FUNCTIONS",
    "get_similarity",
    "MemoizedSimilarity",
    "memoize_similarity",
]

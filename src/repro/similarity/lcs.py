"""Greatest (longest) common subsequence scoring.

Section 2.2.1 of the paper:

    "The score is calculated by the length of greatest common subsequence
    over the length of the word.  For instance, the property 'taxiDriver'
    encapsulates the word 'river'.  With this scoring scheme, we eliminate
    these kinds of miscalculations."

A plain substring test would let ``river`` match ``taxiDriver`` perfectly.
The subsequence score still gives some credit (``river`` *is* a subsequence
of ``taxiDriver``), so the paper's guard comes from normalising by *both*
sides: we expose :func:`lcs_score` (the paper's one-sided score) and
:func:`subsequence_similarity`, the symmetric variant used by the pipeline,
which divides by the length of the longer string so that a short word buried
inside a long property name is penalised.
"""

from __future__ import annotations


def _normalize(text: str) -> str:
    """Lower-case and strip camelCase boundaries for fair comparison."""
    return text.strip().lower()


def lcs_length(a: str, b: str) -> int:
    """Return the length of the longest common subsequence of ``a`` and ``b``.

    Classic dynamic programme over a rolling row, O(len(a) * len(b)) time and
    O(min(len(a), len(b))) space.

    >>> lcs_length("river", "taxidriver")
    5
    >>> lcs_length("written", "writer")
    5
    """
    if not a or not b:
        return 0
    if len(b) < len(a):
        a, b = b, a
    previous = [0] * (len(a) + 1)
    for ch_b in b:
        current = [0]
        for i, ch_a in enumerate(a, start=1):
            if ch_a == ch_b:
                current.append(previous[i - 1] + 1)
            else:
                current.append(max(previous[i], current[i - 1]))
        previous = current
    return previous[-1]


def lcs_string(a: str, b: str) -> str:
    """Return one longest common subsequence of ``a`` and ``b``.

    Used by diagnostics and by tests that want to inspect *which* characters
    matched, not only how many.

    >>> lcs_string("written", "writer")
    'write'
    """
    if not a or not b:
        return ""
    rows = len(a) + 1
    cols = len(b) + 1
    table = [[0] * cols for _ in range(rows)]
    for i in range(1, rows):
        for j in range(1, cols):
            if a[i - 1] == b[j - 1]:
                table[i][j] = table[i - 1][j - 1] + 1
            else:
                table[i][j] = max(table[i - 1][j], table[i][j - 1])
    # Walk back from the bottom-right corner collecting matched characters.
    chars: list[str] = []
    i, j = len(a), len(b)
    while i > 0 and j > 0:
        if a[i - 1] == b[j - 1]:
            chars.append(a[i - 1])
            i -= 1
            j -= 1
        elif table[i - 1][j] >= table[i][j - 1]:
            i -= 1
        else:
            j -= 1
    return "".join(reversed(chars))


def lcs_score(word: str, candidate: str) -> float:
    """The paper's one-sided score: ``|LCS(word, candidate)| / |word|``.

    Measures how much of ``word`` is explained by ``candidate``.  Note this
    is 1.0 whenever ``word`` is a subsequence of ``candidate`` — including
    the ``river``/``taxiDriver`` trap — which is why the pipeline uses
    :func:`subsequence_similarity` instead.
    """
    word = _normalize(word)
    candidate = _normalize(candidate)
    if not word:
        return 0.0
    return lcs_length(word, candidate) / len(word)


def char_profile(text: str) -> dict[str, int]:
    """Character multiset of the normalised text.

    Feeds :func:`subsequence_upper_bound`: the profile is computed once per
    catalogue label at index-build time, then reused across every scan
    (see ``repro.core.mapping``).

    >>> char_profile("Deed") == {"d": 2, "e": 2}
    True
    """
    profile: dict[str, int] = {}
    for ch in _normalize(text):
        profile[ch] = profile.get(ch, 0) + 1
    return profile


def subsequence_upper_bound(
    profile_a: dict[str, int], len_a: int, profile_b: dict[str, int], len_b: int
) -> float:
    """Cheap sound upper bound on :func:`subsequence_similarity`.

    A common subsequence can use each character at most as often as it
    occurs in *both* strings, and can never be longer than either string,
    so ``|LCS| <= min(len_a, len_b, |bag(a) ∩ bag(b)|)`` and dividing by
    ``max(len_a, len_b)`` bounds the similarity.  O(alphabet) instead of
    the DP's O(len_a * len_b): the vocabulary scan uses it to skip label
    pairs that cannot reach the acceptance threshold.

    >>> a, b = char_profile("river"), char_profile("taxidriver")
    >>> subsequence_upper_bound(a, 5, b, 10) >= subsequence_similarity("river", "taxidriver")
    True
    """
    if len_a == 0 or len_b == 0:
        return 0.0
    small, large = (
        (profile_a, profile_b)
        if len(profile_a) <= len(profile_b)
        else (profile_b, profile_a)
    )
    common = 0
    for ch, count in small.items():
        other = large.get(ch, 0)
        common += count if count < other else other
    upper = min(common, len_a, len_b)
    return upper / (len_a if len_a > len_b else len_b)


def subsequence_similarity(word: str, candidate: str) -> float:
    """Symmetric LCS similarity: ``|LCS| / max(|word|, |candidate|)``.

    This is the operational form of the paper's "greatest common subsequence
    over the length of the word" guard: dividing by the longer string means
    ``river`` vs ``taxiDriver`` scores 5/10 = 0.5 rather than 1.0, while
    ``written`` vs ``writer`` scores 5/7 ≈ 0.714.

    >>> round(subsequence_similarity("river", "taxiDriver"), 2)
    0.5
    >>> round(subsequence_similarity("written", "writer"), 3)
    0.714
    """
    word = _normalize(word)
    candidate = _normalize(candidate)
    longest = max(len(word), len(candidate))
    if longest == 0:
        return 0.0
    return lcs_length(word, candidate) / longest

"""Alternative string-similarity metrics.

These are not used by the faithful pipeline configuration; they exist for the
A4 ablation (DESIGN.md), which swaps the paper's LCS score for each of these
and re-runs the Table 2 evaluation to show how sensitive property mapping is
to the choice of metric.
"""

from __future__ import annotations


def levenshtein_distance(a: str, b: str) -> int:
    """Edit distance (insert / delete / substitute, unit costs).

    >>> levenshtein_distance("kitten", "sitting")
    3
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(b) < len(a):
        a, b = b, a
    previous = list(range(len(a) + 1))
    for j, ch_b in enumerate(b, start=1):
        current = [j]
        for i, ch_a in enumerate(a, start=1):
            cost = 0 if ch_a == ch_b else 1
            current.append(
                min(
                    previous[i] + 1,       # deletion
                    current[i - 1] + 1,    # insertion
                    previous[i - 1] + cost,  # substitution
                )
            )
        previous = current
    return previous[-1]


def levenshtein_similarity(a: str, b: str) -> float:
    """Normalised edit similarity in [0, 1]: ``1 - dist / max_len``."""
    a, b = a.lower(), b.lower()
    longest = max(len(a), len(b))
    if longest == 0:
        return 0.0
    return 1.0 - levenshtein_distance(a, b) / longest


def _char_bigrams(text: str) -> set[str]:
    return {text[i:i + 2] for i in range(len(text) - 1)}


def jaccard_similarity(a: str, b: str) -> float:
    """Jaccard coefficient over character bigrams."""
    bigrams_a = _char_bigrams(a.lower())
    bigrams_b = _char_bigrams(b.lower())
    if not bigrams_a and not bigrams_b:
        return 0.0
    union = bigrams_a | bigrams_b
    return len(bigrams_a & bigrams_b) / len(union)


def dice_coefficient(a: str, b: str) -> float:
    """Sørensen-Dice coefficient over character bigrams."""
    bigrams_a = _char_bigrams(a.lower())
    bigrams_b = _char_bigrams(b.lower())
    total = len(bigrams_a) + len(bigrams_b)
    if total == 0:
        return 0.0
    return 2.0 * len(bigrams_a & bigrams_b) / total


def normalized_overlap(a: str, b: str) -> float:
    """Overlap coefficient over character bigrams: |A∩B| / min(|A|, |B|)."""
    bigrams_a = _char_bigrams(a.lower())
    bigrams_b = _char_bigrams(b.lower())
    smallest = min(len(bigrams_a), len(bigrams_b))
    if smallest == 0:
        return 0.0
    return len(bigrams_a & bigrams_b) / smallest


def jaro_winkler(a: str, b: str, prefix_scale: float = 0.1) -> float:
    """Jaro-Winkler similarity in [0, 1].

    Standard definition: Jaro similarity boosted by up to four characters of
    shared prefix, with ``prefix_scale`` capped at 0.25 so the result stays
    in range.
    """
    a, b = a.lower(), b.lower()
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    prefix_scale = min(prefix_scale, 0.25)

    match_window = max(len(a), len(b)) // 2 - 1
    match_window = max(match_window, 0)
    a_matched = [False] * len(a)
    b_matched = [False] * len(b)
    matches = 0
    for i, ch in enumerate(a):
        start = max(0, i - match_window)
        end = min(i + match_window + 1, len(b))
        for j in range(start, end):
            if not b_matched[j] and b[j] == ch:
                a_matched[i] = True
                b_matched[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0

    # Count transpositions among matched characters.
    transpositions = 0
    j = 0
    for i, matched in enumerate(a_matched):
        if not matched:
            continue
        while not b_matched[j]:
            j += 1
        if a[i] != b[j]:
            transpositions += 1
        j += 1
    transpositions //= 2

    jaro = (
        matches / len(a)
        + matches / len(b)
        + (matches - transpositions) / matches
    ) / 3.0

    prefix = 0
    for ch_a, ch_b in zip(a, b):
        if ch_a != ch_b or prefix == 4:
            break
        prefix += 1
    return jaro + prefix * prefix_scale * (1.0 - jaro)

"""Memoized string-similarity functions.

Property mapping (section 2.2) recomputes the same word-vs-property scores
for every question: the vocabulary side of each comparison is the fixed
ontology catalogue, and question words repeat heavily across a QALD run
("born", "write", "mayor", ...).  The LCS dynamic programme is O(|a|·|b|)
per pair, so memoizing (a, b) -> score across questions turns the mapping
stage into dictionary lookups after warm-up.

Similarity functions are pure (no graph dependence), so entries never go
stale; the cache is bounded only to keep memory predictable under
adversarial input streams.
"""

from __future__ import annotations

from repro.perf.lru import LRUCache
from repro.perf.stats import PerfStats

_MISSING = object()

#: Word-pair scores are tiny (two strings + a float); a generous default
#: comfortably holds a full QALD run's distinct pairs.
DEFAULT_MEMO_SIZE = 65536


class MemoizedSimilarity:
    """A similarity function with a bounded, thread-safe (a, b) -> score memo.

    >>> from repro.similarity.lcs import subsequence_similarity
    >>> cached = MemoizedSimilarity(subsequence_similarity)
    >>> cached("written", "writer") == subsequence_similarity("written", "writer")
    True
    >>> cached("written", "writer") == subsequence_similarity("written", "writer")
    True
    >>> cached.cache.hits
    1
    """

    def __init__(
        self,
        fn,
        maxsize: int = DEFAULT_MEMO_SIZE,
        stats: PerfStats | None = None,
        name: str = "similarity",
    ) -> None:
        self._fn = fn
        self.cache = LRUCache(maxsize)
        self._stats = stats
        self._name = name
        #: The wrapped function, for cached-vs-uncached agreement checks.
        self.__wrapped__ = fn

    def __call__(self, a: str, b: str) -> float:
        key = (a, b)
        score = self.cache.get(key, _MISSING)
        if score is not _MISSING:
            if self._stats is not None:
                self._stats.increment(f"{self._name}.memo.hits")
            return score
        score = self._fn(a, b)
        self.cache.put(key, score)
        if self._stats is not None:
            self._stats.increment(f"{self._name}.memo.misses")
        return score

    def snapshot(self) -> dict[str, int | float]:
        """Hit/miss counter snapshot (keys match ``LRUCache.stats()``).

        The observability layer diffs two snapshots around the mapping
        stage to attach a ``cache.similarity.memo`` sub-span per traced
        question (docs/observability.md).
        """
        return self.cache.stats()


def memoize_similarity(
    fn,
    maxsize: int = DEFAULT_MEMO_SIZE,
    stats: PerfStats | None = None,
    name: str = "similarity",
) -> MemoizedSimilarity:
    """Wrap ``fn`` unless it is already memoized (idempotent)."""
    if isinstance(fn, MemoizedSimilarity):
        return fn
    return MemoizedSimilarity(fn, maxsize=maxsize, stats=stats, name=name)

"""Named registry of similarity functions for configuration and ablations."""

from __future__ import annotations

from typing import Callable

from repro.similarity.lcs import lcs_score, subsequence_similarity
from repro.similarity.metrics import (
    dice_coefficient,
    jaccard_similarity,
    jaro_winkler,
    levenshtein_similarity,
    normalized_overlap,
)

SimilarityFunction = Callable[[str, str], float]

#: All similarity measures selectable by name.  ``"lcs"`` is the paper's
#: configuration; the rest back the A4 ablation in DESIGN.md.
SIMILARITY_FUNCTIONS: dict[str, SimilarityFunction] = {
    "lcs": subsequence_similarity,
    "lcs-one-sided": lcs_score,
    "levenshtein": levenshtein_similarity,
    "jaccard": jaccard_similarity,
    "dice": dice_coefficient,
    "overlap": normalized_overlap,
    "jaro-winkler": jaro_winkler,
}


def get_similarity(name: str) -> SimilarityFunction:
    """Look up a similarity function by registry name.

    Raises ``KeyError`` with the list of valid names when unknown, so a typo
    in a benchmark configuration fails loudly.
    """
    try:
        return SIMILARITY_FUNCTIONS[name]
    except KeyError:
        valid = ", ".join(sorted(SIMILARITY_FUNCTIONS))
        raise KeyError(f"unknown similarity {name!r}; expected one of: {valid}") from None

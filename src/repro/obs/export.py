"""Rendering and JSON export for traces and metrics.

Thin, dependency-free formatting helpers shared by the CLI (`ask --trace`,
`explain`, `eval --metrics-out`) and the CI metrics job.  The data model
lives in :mod:`repro.obs.trace` / :mod:`repro.obs.metrics`; this module
only shapes it for humans and files.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.metrics import METRICS_SCHEMA
from repro.obs.trace import Span

#: Schema identifier stamped on exported trace documents.
TRACE_SCHEMA = "repro.trace/v1"


def render_span_tree(root: Span) -> str:
    """The plain-text span tree (one `- name (ms) [attrs]` line per span).

    >>> span = Span("answer", {"question": "who?"})
    >>> span.close()
    >>> render_span_tree(span).startswith("- answer (")
    True
    """
    return root.render()


def trace_document(root: Span) -> dict:
    """JSON-ready document for one trace tree."""
    return {"schema": TRACE_SCHEMA, "trace": root.to_dict()}


def write_json(document: dict, path: str | Path) -> Path:
    """Write any JSON document with a trailing newline; returns the path."""
    path = Path(path)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, default=_jsonable)
        handle.write("\n")
    return path


def write_metrics(snapshot: dict, path: str | Path) -> Path:
    """Write a :meth:`MetricsRegistry.snapshot` document to ``path``.

    Refuses documents that do not carry the expected schema stamp, so a
    caller cannot silently ship a raw ``PerfStats`` snapshot where the
    unified schema is expected.
    """
    if snapshot.get("schema") != METRICS_SCHEMA:
        raise ValueError(
            f"not a {METRICS_SCHEMA} document: schema={snapshot.get('schema')!r}"
        )
    return write_json(snapshot, path)


def render_metrics(snapshot: dict) -> str:
    """Plain-text summary of a unified metrics document."""
    lines = [f"metrics ({snapshot.get('schema', 'unknown schema')})"]
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        for name, entry in histograms.items():
            lines.append(
                f"  {name:<40} count={entry['count']:<6} "
                f"total={entry['total']:<12} mean={entry['mean']}"
            )
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters:")
        for name, value in counters.items():
            lines.append(f"  {name} = {value}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        for name, value in gauges.items():
            lines.append(f"  {name} = {value}")
    return "\n".join(lines)


def _jsonable(value: Any):
    """Last-resort JSON coercion for attribute values (IRIs, enums, ...)."""
    return str(value)

"""Observability layer: span-based tracing + the unified metrics registry.

The three pieces (see ``docs/observability.md``):

* :mod:`repro.obs.trace` — :class:`Span` trees built by a :class:`Tracer`
  with a thread-local open-span stack; :data:`NULL_TRACER` is the
  zero-overhead default wired into every pipeline component.
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry`
  (counters/gauges/histograms) absorbing the perf timers, the reliability
  counters, the engine cache statistics and trace aggregates into one
  ``repro.metrics/v1`` document.
* :mod:`repro.obs.export` — text rendering and JSON export for both.

Entry points: ``PipelineConfig(enable_tracing=True)`` (or
``repro ask --trace`` / ``repro explain`` on the CLI) turns the tracer on;
``QuestionAnsweringSystem.metrics()`` (or ``repro eval --metrics-out``)
produces the unified metrics document.
"""

from repro.obs.metrics import (
    METRICS_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Span, SpanEvent, Tracer
from repro.obs.export import (
    TRACE_SCHEMA,
    render_metrics,
    render_span_tree,
    trace_document,
    write_json,
    write_metrics,
)

__all__ = [
    "Span",
    "SpanEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "METRICS_SCHEMA",
    "TRACE_SCHEMA",
    "render_span_tree",
    "render_metrics",
    "trace_document",
    "write_json",
    "write_metrics",
]

"""The unified metrics registry: counters, gauges, histograms, one schema.

Before this layer, run statistics lived in three disjoint surfaces: the
pipeline's :class:`repro.perf.stats.PerfStats` (stage timers + ad-hoc
counters, including every ``reliability.*`` counter), the SPARQL engine's
own ``PerfStats`` plus its LRU ``cache_stats()`` dicts, and — when tracing
is on — per-question span trees.  :class:`MetricsRegistry` absorbs all
three into one JSON-exportable document under the :data:`METRICS_SCHEMA`
schema; ``QuestionAnsweringSystem.metrics()`` is the one call that builds
it, and ``repro eval --metrics-out`` writes it to disk.

The absorbed surfaces are *deprecated as public APIs* (use ``metrics()``
instead of ``perf_report()``), but their internals keep working unchanged —
the registry reads their snapshots, it does not replace their plumbing.

>>> registry = MetricsRegistry()
>>> registry.inc("questions")
>>> registry.observe("stage.annotate.seconds", 0.25)
>>> registry.set_gauge("cache.size", 42)
>>> doc = registry.snapshot()
>>> doc["schema"]
'repro.metrics/v1'
>>> doc["counters"]["questions"], doc["gauges"]["cache.size"]
(1, 42)
>>> doc["histograms"]["stage.annotate.seconds"]["count"]
1
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.trace import Span
    from repro.perf.stats import PerfStats

#: Schema identifier stamped on every exported metrics document.
METRICS_SCHEMA = "repro.metrics/v1"

#: Default cap on distinct series names per instrument family.  The cap
#: keeps an exported document O(1) in *traffic*: every legitimate series is
#: keyed by a bounded vocabulary (stage names, cache names, breaker names —
#: a few dozen at most), so a registry approaching the cap means some code
#: path is minting per-request names (e.g. a question id in a metric name),
#: which this layer refuses to amplify into an unbounded export.  Dropped
#: names are counted, never silent (``metrics.dropped_series``).
MAX_SERIES_PER_KIND = 1024

#: The overflow counter itself (always admitted, or the drop would be
#: invisible exactly when it matters).
_OVERFLOW_COUNTER = "metrics.dropped_series"


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float | int | None = None

    def set(self, value: float | int) -> None:
        self.value = value


class Histogram:
    """Aggregate distribution summary: count / total / min / max / mean.

    Deliberately not a bucketed histogram: the pipeline's consumers (the
    benchmark artifacts, the CI metrics job) need cheap summary statistics,
    and aggregates merge losslessly — which a fixed bucket layout would
    not — when folding pre-aggregated :class:`~repro.perf.stats.StageTimer`
    observations in via :meth:`update`.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.update(1, value, value, value)

    def update(
        self,
        count: int,
        total: float,
        minimum: float | None = None,
        maximum: float | None = None,
    ) -> None:
        """Fold a pre-aggregated batch of observations in."""
        if count <= 0:
            return
        self.count += count
        self.total += total
        if minimum is not None:
            self.min = minimum if self.min is None else min(self.min, minimum)
        if maximum is not None:
            self.max = maximum if self.max is None else max(self.max, maximum)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, float | int | None]:
        return {
            "count": self.count,
            "total": round(self.total, 6),
            "mean": round(self.mean, 6),
            "min": None if self.min is None else round(self.min, 6),
            "max": None if self.max is None else round(self.max, 6),
        }


class MetricsRegistry:
    """Thread-safe named counters, gauges and histograms.

    One lock guards the name tables; the instrument objects themselves are
    mutated under that same lock via the ``inc``/``set_gauge``/``observe``
    convenience methods, which is how the batch answerer's worker threads
    share a registry safely.

    ``max_series`` bounds the number of *distinct names* per instrument
    kind (see :data:`MAX_SERIES_PER_KIND`): a new name beyond the cap is
    dropped and tallied under ``metrics.dropped_series`` instead of
    growing the export without bound.  Existing names keep updating
    normally at any size.
    """

    def __init__(self, max_series: int = MAX_SERIES_PER_KIND) -> None:
        self._lock = threading.Lock()
        self._max_series = max_series
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _admit(self, table: dict, name: str) -> bool:
        """Whether a *new* series name fits under the cardinality cap
        (caller holds the lock).  Drops are counted, never silent."""
        if len(table) < self._max_series or name == _OVERFLOW_COUNTER:
            return True
        counter = self._counters.get(_OVERFLOW_COUNTER)
        if counter is None:
            counter = self._counters[_OVERFLOW_COUNTER] = Counter()
        counter.inc()
        return False

    # -- instruments ---------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                if not self._admit(self._counters, name):
                    return
                counter = self._counters[name] = Counter()
            counter.inc(amount)

    def set_gauge(self, name: str, value: float | int) -> None:
        with self._lock:
            gauge = self._gauges.get(name)
            if gauge is None:
                if not self._admit(self._gauges, name):
                    return
                gauge = self._gauges[name] = Gauge()
            gauge.set(value)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            histogram = self._histogram(name)
            if histogram is not None:
                histogram.observe(value)

    def _histogram(self, name: str) -> Histogram | None:
        histogram = self._histograms.get(name)
        if histogram is None:
            if not self._admit(self._histograms, name):
                return None
            histogram = self._histograms[name] = Histogram()
        return histogram

    # -- absorption of the legacy surfaces -----------------------------

    def absorb_perf_stats(self, stats: "PerfStats", prefix: str = "") -> None:
        """Fold a :class:`PerfStats` snapshot in.

        Stage timers become ``stage.<name>.seconds`` histograms (count =
        calls, total = accumulated wall time); counters keep their names —
        which is what unifies the ``reliability.*`` counters into this
        schema without renaming anything the docs already reference.
        """
        data = stats.snapshot()
        with self._lock:
            for name, entry in data["timers"].items():
                histogram = self._histogram(f"{prefix}stage.{name}.seconds")
                if histogram is not None:
                    histogram.update(entry["calls"], entry["total_seconds"])
        for name, value in data["counters"].items():
            self.inc(prefix + name, value)

    def absorb_cache_stats(
        self, caches: Mapping[str, Mapping[str, Any]], prefix: str = "sparql."
    ) -> None:
        """Fold the engine's ``cache_stats()`` dicts in as gauges.

        Every numeric field of every per-cache dict lands as
        ``<prefix><cache>.<field>`` — for the current engine that yields
        the ``sparql.parse_cache.*``, ``sparql.plan_cache.*`` and
        ``sparql.result_cache.*`` families (hits/misses/hit_rate/
        evictions/size) plus ``sparql.prefix_memo.size``.  New caches
        added to the engine surface here with no registry changes.
        """
        for cache_name, stats in caches.items():
            if not isinstance(stats, Mapping):
                continue
            for field_name, value in stats.items():
                if isinstance(value, (int, float)):
                    self.set_gauge(f"{prefix}{cache_name}.{field_name}", value)

    def absorb_span(self, root: "Span") -> None:
        """Fold one closed trace tree into the trace histograms/counters.

        Every span contributes to a ``trace.<name>.ms`` histogram and every
        event to a ``trace.events.<name>`` counter, so a metrics document
        carries the aggregate shape of the traced questions next to the
        perf and reliability numbers.
        """
        for span in root.walk():
            self.observe(f"trace.{span.name}.ms", span.duration_ms)
            for event in span.events:
                self.inc(f"trace.events.{event.name}")

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's instruments into this one."""
        self.merge_snapshot(other.snapshot())

    def merge_snapshot(self, document: Mapping[str, Any]) -> None:
        """Fold an exported :meth:`snapshot` document into this registry
        (how :meth:`repro.serve.ResilientServer.metrics` layers the
        serving-layer families over the pipeline's own document)."""
        for name, value in document.get("counters", {}).items():
            self.inc(name, value)
        for name, value in document.get("gauges", {}).items():
            if value is not None:
                self.set_gauge(name, value)
        with self._lock:
            for name, entry in document.get("histograms", {}).items():
                histogram = self._histogram(name)
                if histogram is not None:
                    histogram.update(
                        entry["count"], entry["total"], entry["min"], entry["max"]
                    )

    # -- export --------------------------------------------------------

    def snapshot(self) -> dict:
        """The unified metrics document (see docs/observability.md)."""
        with self._lock:
            return {
                "schema": METRICS_SCHEMA,
                "counters": {
                    name: counter.value
                    for name, counter in sorted(self._counters.items())
                },
                "gauges": {
                    name: gauge.value
                    for name, gauge in sorted(self._gauges.items())
                },
                "histograms": {
                    name: histogram.as_dict()
                    for name, histogram in sorted(self._histograms.items())
                },
            }

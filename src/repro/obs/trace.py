"""Span-based tracing for the answering pipeline.

A **trace** is a tree of :class:`Span` objects rooted at one ``answer()``
call.  The :class:`QuestionAnsweringSystem` opens a root span per traced
question, one child span per pipeline stage (``annotate`` / ``extract`` /
``map`` / ``generate`` / ``execute``, with per-candidate ``typecheck``
sub-spans), and the instrumented components — the SPARQL engine's caches,
the similarity memo, the mapper's candidate ranking — attach events and
instant sub-spans to whatever span is open on the current thread.

Design constraints (docs/observability.md):

* **No-op by default.** Tracing is off unless
  ``PipelineConfig.enable_tracing`` is set; the default tracer is
  :data:`NULL_TRACER`, whose every operation is a constant-time early
  return, so tier-1 throughput is unchanged (the overhead guard in
  ``tests/obs/test_overhead.py`` pins this at <2%).
* **Thread-correct.** The open-span stack is thread-local, so the batch
  answerer's worker threads each build their own tree and events from
  shared components (the engine cache, the similarity memo) land on the
  span of the question that caused them.
* **Sampled.** ``sample_every=n`` traces every n-th root; non-sampled
  questions take the no-op path after one counter increment.

>>> tracer = Tracer()
>>> root = tracer.begin_trace("answer", question="who?")
>>> with tracer.span("annotate") as span:
...     tracer.event("cache", outcome="miss")
>>> tracer.end_trace(root)
>>> [child.name for child in root.children]
['annotate']
>>> root.children[0].events[0].name
'cache'
>>> root.closed and root.children[0].closed
True
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass
class SpanEvent:
    """A point-in-time annotation inside a span."""

    name: str
    at_ms: float  #: offset from the owning span's start, in milliseconds
    attributes: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "at_ms": round(self.at_ms, 3),
            "attributes": dict(self.attributes),
        }


@dataclass
class Span:
    """One timed node of a trace tree."""

    name: str
    attributes: dict[str, Any] = field(default_factory=dict)
    children: "list[Span]" = field(default_factory=list)
    events: list[SpanEvent] = field(default_factory=list)
    _start: float = field(default_factory=time.perf_counter, repr=False)
    _end: float | None = field(default=None, repr=False)

    def close(self) -> None:
        """Stamp the end time (idempotent: the first close wins)."""
        if self._end is None:
            self._end = time.perf_counter()

    @property
    def closed(self) -> bool:
        return self._end is not None

    @property
    def duration_ms(self) -> float:
        """Wall time in milliseconds (up to now while still open)."""
        end = self._end if self._end is not None else time.perf_counter()
        return (end - self._start) * 1000.0

    def add_event(self, name: str, **attributes: Any) -> SpanEvent:
        event = SpanEvent(
            name=name,
            at_ms=(time.perf_counter() - self._start) * 1000.0,
            attributes=attributes,
        )
        self.events.append(event)
        return event

    def child(self, name: str, **attributes: Any) -> "Span":
        """Attach an *instant* (zero-duration, already closed) child span.

        Used for cache-counter sub-spans whose work happened inside the
        parent's window rather than in a contiguous slice of it.
        """
        span = Span(name=name, attributes=attributes)
        span._start = time.perf_counter()
        span._end = span._start
        self.children.append(span)
        return span

    def walk(self) -> "Iterator[Span]":
        """This span and every descendant, depth-first, in creation order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First span named ``name`` in this subtree (depth-first)."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def to_dict(self) -> dict:
        """JSON-ready representation of the subtree."""
        return {
            "name": self.name,
            "duration_ms": round(self.duration_ms, 3),
            "attributes": dict(self.attributes),
            "events": [event.to_dict() for event in self.events],
            "children": [child.to_dict() for child in self.children],
        }

    def render(self, indent: int = 0) -> str:
        """Plain-text span tree (what ``repro ask --trace`` prints)."""
        pad = "  " * indent
        attrs = _format_attrs(self.attributes)
        lines = [f"{pad}- {self.name} ({self.duration_ms:.2f} ms){attrs}"]
        for event in self.events:
            event_attrs = _format_attrs(event.attributes)
            lines.append(f"{pad}    * {event.name}{event_attrs}")
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


def _format_attrs(attributes: dict[str, Any]) -> str:
    if not attributes:
        return ""
    parts = []
    for key in attributes:
        value = attributes[key]
        parts.append(f"{key}={value!r}" if isinstance(value, str) else f"{key}={value}")
    return " [" + " ".join(parts) + "]"


class _NullSpanContext:
    """A reusable, allocation-free ``with`` target yielding ``None``.

    ``@contextmanager`` generators cost ~1us per entry — an order of
    magnitude more than the rest of a no-op touch — so the disabled paths
    (null tracer, and :meth:`Tracer.span` outside an open trace) all hand
    back this one shared instance instead.
    """

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpanContext()


class NullTracer:
    """The default, always-off tracer: every operation is a no-op.

    Kept as its own class (rather than a disabled :class:`Tracer`) so the
    hot-path guards — ``if tracer.active:`` — resolve to a plain class
    attribute read instead of a property call.
    """

    enabled: bool = False
    active: bool = False

    def begin_trace(self, name: str, **attributes: Any) -> None:
        return None

    def end_trace(self, root: "Span | None") -> None:
        return None

    def span(self, name: str, **attributes: Any) -> _NullSpanContext:
        return _NULL_SPAN

    def open_span(self, name: str, **attributes: Any) -> None:
        return None

    def close_span(self, span: "Span | None") -> None:
        return None

    def event(self, name: str, **attributes: Any) -> None:
        return None

    def annotate(self, **attributes: Any) -> None:
        return None


#: Shared no-op tracer; the default wired into every component.
NULL_TRACER = NullTracer()


class _OpenSpanContext:
    """``with`` target for one open :class:`Span` on a tracer stack."""

    __slots__ = ("_stack", "_span")

    def __init__(self, stack: "list[Span]", span: "Span") -> None:
        self._stack = stack
        self._span = span

    def __enter__(self) -> "Span":
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._span.close()
        if self._stack and self._stack[-1] is self._span:
            self._stack.pop()
        return False


class Tracer:
    """Builds span trees with a thread-local open-span stack.

    ``sample_every=n`` makes :meth:`begin_trace` record only every n-th
    root trace (deterministically, by call count — no randomness, so runs
    are reproducible); the skipped calls return ``None`` and every nested
    operation becomes a no-op for that question.
    """

    enabled: bool = True

    def __init__(self, sample_every: int = 1) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.sample_every = sample_every
        self._calls = itertools.count()
        self._local = threading.local()

    # -- the open-span stack (per thread) ------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @property
    def active(self) -> bool:
        """True when a trace is open on the *current* thread."""
        return bool(getattr(self._local, "stack", None))

    def current(self) -> Span | None:
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    # -- root lifecycle ------------------------------------------------

    def begin_trace(self, name: str, **attributes: Any) -> Span | None:
        """Open a root span, or return ``None`` when sampled out."""
        if next(self._calls) % self.sample_every:
            return None
        root = Span(name=name, attributes=attributes)
        self._stack().append(root)
        return root

    def end_trace(self, root: Span | None) -> None:
        """Close ``root`` and pop it (and any leaked children) off the stack."""
        if root is None:
            return
        stack = self._stack()
        while stack:
            span = stack.pop()
            span.close()
            if span is root:
                return
        root.close()

    # -- nested spans, events, attributes ------------------------------

    def span(self, name: str, **attributes: Any):
        """Open a child of the current span; no-op outside a trace.

        Returns a ``with`` target yielding the open :class:`Span` (or
        ``None`` when no trace is open on this thread — the unsampled
        questions' cheap path).
        """
        stack = self._stack()
        if not stack:
            return _NULL_SPAN
        span = Span(name=name, attributes=attributes)
        stack[-1].children.append(span)
        stack.append(span)
        return _OpenSpanContext(stack, span)

    def open_span(self, name: str, **attributes: Any) -> Span | None:
        """Explicit-lifecycle twin of :meth:`span` for the hottest call
        sites: returns the opened child span, or ``None`` outside a trace.

        The pipeline's stage boundaries use this behind an ``is not None``
        guard so an untraced question pays a single comparison per stage
        instead of a context-manager entry.  Pair with :meth:`close_span`;
        a span leaked by an escaping exception is closed by
        :meth:`end_trace`.
        """
        stack = self._stack()
        if not stack:
            return None
        span = Span(name=name, attributes=attributes)
        stack[-1].children.append(span)
        stack.append(span)
        return span

    def close_span(self, span: Span | None) -> None:
        """Close a span from :meth:`open_span`, popping it (and any spans
        leaked open above it) off this thread's stack."""
        if span is None:
            return
        stack = self._stack()
        for position in range(len(stack) - 1, -1, -1):
            if stack[position] is span:
                while len(stack) > position:
                    stack.pop().close()
                return
        span.close()

    def event(self, name: str, **attributes: Any) -> None:
        """Record an event on the current span (dropped outside a trace)."""
        current = self.current()
        if current is not None:
            current.add_event(name, **attributes)

    def annotate(self, **attributes: Any) -> None:
        """Merge attributes into the current span (dropped outside a trace)."""
        current = self.current()
        if current is not None:
            current.attributes.update(attributes)

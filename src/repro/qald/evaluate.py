"""QALD evaluation: run the system, compare to gold, compute Table 2.

Two metric families are reported:

* **paper metrics** — the computation behind Table 2: precision =
  correct/answered, recall = answered/total ("can process" rate), F1 =
  harmonic mean.  A question is *answered* when the system returns a
  non-empty answer set, and *correct* when that set equals the gold set.
* **macro metrics** — the standard QALD per-question precision/recall
  averaged over all questions (empty answer -> 0 unless gold is empty),
  included because later QALD campaigns report these.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.system import Answer, QuestionAnsweringSystem
from repro.kb.builder import KnowledgeBase
from repro.qald.questions import QaldQuestion
from repro.rdf.terms import Term
from repro.sparql.results import AskResult, SelectResult


@dataclass
class QuestionOutcome:
    """One question's gold vs system comparison."""

    question: QaldQuestion
    gold: frozenset[Term] | bool
    predicted: frozenset[Term]
    answered: bool
    correct: bool
    system_answer: Answer | None = None

    @property
    def precision(self) -> float:
        if isinstance(self.gold, bool):
            return 1.0 if self.correct else 0.0
        if not self.predicted:
            return 1.0 if not self.gold else 0.0
        return len(self.predicted & self.gold) / len(self.predicted)

    @property
    def recall(self) -> float:
        if isinstance(self.gold, bool):
            return 1.0 if self.correct else 0.0
        if not self.gold:
            return 1.0 if not self.predicted else 0.0
        return len(self.predicted & self.gold) / len(self.gold)


@dataclass
class EvaluationResult:
    """Aggregate metrics over the in-scope questions."""

    outcomes: list[QuestionOutcome] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def answered(self) -> int:
        return sum(1 for o in self.outcomes if o.answered)

    @property
    def correct(self) -> int:
        return sum(1 for o in self.outcomes if o.answered and o.correct)

    # -- the paper's Table 2 computation ---------------------------------

    @property
    def paper_precision(self) -> float:
        return self.correct / self.answered if self.answered else 0.0

    @property
    def paper_recall(self) -> float:
        return self.answered / self.total if self.total else 0.0

    @property
    def paper_f1(self) -> float:
        p, r = self.paper_precision, self.paper_recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    # -- standard macro metrics --------------------------------------------

    @property
    def macro_precision(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(o.precision for o in self.outcomes) / len(self.outcomes)

    @property
    def macro_recall(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(o.recall for o in self.outcomes) / len(self.outcomes)

    @property
    def macro_f1(self) -> float:
        p, r = self.macro_precision, self.macro_recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    def by_category(self) -> dict[str, tuple[int, int, int]]:
        """category -> (total, answered, correct)."""
        stats: dict[str, list[int]] = {}
        for outcome in self.outcomes:
            bucket = stats.setdefault(outcome.question.category.value, [0, 0, 0])
            bucket[0] += 1
            if outcome.answered:
                bucket[1] += 1
                if outcome.correct:
                    bucket[2] += 1
        return {key: tuple(value) for key, value in sorted(stats.items())}


class QaldEvaluator:
    """Runs the benchmark protocol against a QA system."""

    def __init__(self, kb: KnowledgeBase, system: QuestionAnsweringSystem) -> None:
        self._kb = kb
        self._system = system

    def gold_answers(self, question: QaldQuestion) -> frozenset[Term] | bool:
        """Execute the gold SPARQL; returns the answer set (or bool)."""
        if question.gold_query is None:
            raise ValueError(f"question {question.qid} is out of scope")
        result = self._kb.engine.query(question.gold_query)
        if isinstance(result, AskResult):
            return result.value
        assert isinstance(result, SelectResult)
        [variable] = result.variables
        return frozenset(
            term for term in result.column(variable) if term is not None
        )

    def evaluate_question(self, question: QaldQuestion) -> QuestionOutcome:
        gold = self.gold_answers(question)
        system_answer = self._system.answer(question.text)
        predicted = frozenset(system_answer.answers)
        answered = system_answer.answered
        if isinstance(gold, bool):
            # The faithful pipeline never produces booleans; the
            # boolean-questions extension sets Answer.boolean when enabled.
            correct = (
                system_answer.boolean is not None
                and system_answer.boolean == gold
            )
        else:
            correct = bool(predicted) and predicted == gold
        return QuestionOutcome(
            question=question,
            gold=gold,
            predicted=predicted,
            answered=answered,
            correct=correct,
            system_answer=system_answer,
        )

    def evaluate(self, questions: list[QaldQuestion]) -> EvaluationResult:
        result = EvaluationResult()
        for question in questions:
            if question.in_scope:
                result.outcomes.append(self.evaluate_question(question))
        return result

"""The 100-question QALD-2-style benchmark.

Composition mirrors the QALD-2 open-challenge test set the paper used:

* **55 in-scope questions** — answerable from the DBpedia ontology alone;
  every one carries gold SPARQL executable on the curated mini-DBpedia.
  The difficulty mix follows QALD-2: a band of simple single-relation
  factoids, then superlatives, comparatives, aggregates, booleans,
  temporal questions, imperative "Give me all ..." requests, relative
  clauses and multi-hop chains — the shapes whose coverage gaps produce
  the paper's low recall.
* **45 out-of-scope questions** — in QALD-2 style, excluded for the same
  reasons the paper excluded theirs: YAGO classes/entities, raw infobox
  (``dbp:``) properties, FOAF/external vocabularies, or facts outside
  DBpedia.  They carry the exclusion reason instead of gold.

Question texts are either QALD-2 questions verbatim (where the curated KB
holds the relevant real-world facts) or faithful same-template analogues.
"""

from __future__ import annotations

from repro.qald.questions import QaldQuestion, QuestionCategory as C

_Q = QaldQuestion


def load_questions() -> list[QaldQuestion]:
    """All 100 benchmark questions, qid order."""
    questions: list[QaldQuestion] = []
    add = questions.append

    # ==================================================================
    # In-scope (55): gold SPARQL over the mini-DBpedia.
    # ==================================================================

    # -- simple factoids and lists (the band the pipeline can reach) ----
    add(_Q(1, "Which book is written by Orhan Pamuk?", C.LIST,
           "SELECT ?x WHERE { ?x a dbont:Book . ?x dbont:author res:Orhan_Pamuk }"))
    add(_Q(2, "Which books were written by Danielle Steel?", C.LIST,
           "SELECT ?x WHERE { ?x a dbont:Book . ?x dbont:author res:Danielle_Steel }"))
    add(_Q(3, "How tall is Claudia Schiffer?", C.FACTOID,
           "SELECT ?x WHERE { res:Claudia_Schiffer dbont:height ?x }"))
    add(_Q(4, "Who is the mayor of Berlin?", C.FACTOID,
           "SELECT ?x WHERE { res:Berlin dbont:mayor ?x }"))
    add(_Q(5, "Where did Abraham Lincoln die?", C.FACTOID,
           "SELECT ?x WHERE { res:Abraham_Lincoln dbont:deathPlace ?x }"))
    add(_Q(6, "How many pages does War and Peace have?", C.FACTOID,
           "SELECT ?x WHERE { res:War_and_Peace dbont:numberOfPages ?x }"))
    add(_Q(7, "Which river does the Brooklyn Bridge cross?", C.FACTOID,
           "SELECT ?x WHERE { res:Brooklyn_Bridge dbont:crosses ?x }"))
    add(_Q(8, "Where was Michael Jackson born?", C.FACTOID,
           "SELECT ?x WHERE { res:Michael_Jackson dbont:birthPlace ?x }"))
    add(_Q(9, "In which country is the Limerick Lake?", C.FACTOID,
           "SELECT ?x WHERE { res:Limerick_Lake dbont:country ?x }"))
    add(_Q(10, "Who wrote The Pillars of the Earth?", C.FACTOID,
           "SELECT ?x WHERE { res:The_Pillars_of_the_Earth dbont:author ?x }"))
    add(_Q(11, "What is the capital of Canada?", C.FACTOID,
           "SELECT ?x WHERE { res:Canada dbont:capital ?x }"))
    add(_Q(12, "Who created Goofy?", C.FACTOID,
           "SELECT ?x WHERE { res:Goofy dbont:creator ?x }"))
    add(_Q(13, "Who founded Intel?", C.LIST,
           "SELECT ?x WHERE { res:Intel dbont:foundedBy ?x }"))
    add(_Q(14, "Who developed World of Warcraft?", C.FACTOID,
           "SELECT ?x WHERE { res:World_of_Warcraft dbont:developer ?x }"))
    add(_Q(15, "What is the highest place of Karakoram?", C.FACTOID,
           "SELECT ?x WHERE { res:Karakoram dbont:highestPlace ?x }"))

    # -- residence questions: gold is dbo:residence; corpus noise makes the
    #    pipeline prefer birthPlace ("lived in" under biography sentences),
    #    the PATTY-noise failure mode of sections 2.2.3/5.
    add(_Q(16, "Where does Bill Gates live?", C.FACTOID,
           "SELECT ?x WHERE { res:Bill_Gates dbont:residence ?x }"))
    add(_Q(17, "Where did Albert Einstein live?", C.FACTOID,
           "SELECT ?x WHERE { res:Albert_Einstein dbont:residence ?x }"))
    add(_Q(18, "Where did Agatha Christie live?", C.FACTOID,
           "SELECT ?x WHERE { res:Agatha_Christie dbont:residence ?x }"))

    # -- superlatives (need ORDER BY the pipeline never generates) -------
    add(_Q(19, "What is the highest mountain?", C.SUPERLATIVE,
           "SELECT ?x WHERE { ?x a dbont:Mountain . ?x dbont:elevation ?e } "
           "ORDER BY DESC(?e) LIMIT 1"))
    add(_Q(20, "Which bird has the largest wingspan?", C.SUPERLATIVE,
           "SELECT ?x WHERE { ?x a dbont:Bird . ?x dbont:wingspan ?w } "
           "ORDER BY DESC(?w) LIMIT 1"))
    add(_Q(21, "What is the tallest building?", C.SUPERLATIVE,
           "SELECT ?x WHERE { ?x a dbont:Building . ?x dbont:height ?h } "
           "ORDER BY DESC(?h) LIMIT 1"))
    add(_Q(22, "Which country has the largest population?", C.SUPERLATIVE,
           "SELECT ?x WHERE { ?x a dbont:Country . ?x dbont:populationTotal ?p } "
           "ORDER BY DESC(?p) LIMIT 1"))
    add(_Q(23, "What is the longest river?", C.SUPERLATIVE,
           "SELECT ?x WHERE { ?x a dbont:River . ?x dbont:length ?l } "
           "ORDER BY DESC(?l) LIMIT 1"))
    add(_Q(24, "Which city has the most inhabitants?", C.SUPERLATIVE,
           "SELECT ?x WHERE { ?x a dbont:City . ?x dbont:populationTotal ?p } "
           "ORDER BY DESC(?p) LIMIT 1"))
    add(_Q(25, "What is the deepest lake?", C.SUPERLATIVE,
           "SELECT ?x WHERE { ?x a dbont:Lake . ?x dbont:depth ?d } "
           "ORDER BY DESC(?d) LIMIT 1"))
    add(_Q(26, "Which skyscraper has the most floors?", C.SUPERLATIVE,
           "SELECT ?x WHERE { ?x a dbont:Skyscraper . ?x dbont:floorCount ?f } "
           "ORDER BY DESC(?f) LIMIT 1"))
    add(_Q(27, "Who is the tallest basketball player?", C.SUPERLATIVE,
           "SELECT ?x WHERE { ?x a dbont:BasketballPlayer . ?x dbont:height ?h } "
           "ORDER BY DESC(?h) LIMIT 1"))

    # -- comparatives (need FILTER) --------------------------------------
    add(_Q(28, "Which cities have more than ten million inhabitants?", C.COMPARATIVE,
           "SELECT ?x WHERE { ?x a dbont:City . ?x dbont:populationTotal ?p "
           "FILTER (?p > 10000000) }"))
    add(_Q(29, "Which buildings are taller than 400 meters?", C.COMPARATIVE,
           "SELECT ?x WHERE { ?x a dbont:Building . ?x dbont:height ?h "
           "FILTER (?h > 400) }"))
    add(_Q(30, "Which books have more than one thousand pages?", C.COMPARATIVE,
           "SELECT ?x WHERE { ?x a dbont:Book . ?x dbont:numberOfPages ?p "
           "FILTER (?p > 1000) }"))
    add(_Q(31, "Which presidents were born after 1950?", C.COMPARATIVE,
           'SELECT ?x WHERE { ?x a dbont:President . ?x dbont:birthDate ?d '
           'FILTER (?d > "1950-12-31"^^xsd:date) }'))
    add(_Q(32, "Which organizations were founded before 1900?", C.COMPARATIVE,
           'SELECT ?x WHERE { ?x a dbont:Organisation . ?x dbont:foundingDate ?d '
           'FILTER (?d < "1900-01-01"^^xsd:date) }'))

    # -- aggregates (need COUNT) ------------------------------------------
    add(_Q(33, "How many children does Bill Clinton have?", C.AGGREGATE,
           "SELECT COUNT(?x) WHERE { res:Bill_Clinton dbont:child ?x }"))
    add(_Q(34, "How many official languages does Switzerland have?", C.AGGREGATE,
           "SELECT COUNT(?x) WHERE { res:Switzerland dbont:officialLanguage ?x }"))
    add(_Q(35, "How many members does the Beatles have?", C.AGGREGATE,
           "SELECT COUNT(?x) WHERE { res:The_Beatles dbont:bandMember ?x }"))

    # -- booleans (need ASK) -----------------------------------------------
    add(_Q(36, "Is Frank Herbert still alive?", C.BOOLEAN,
           "ASK { res:Frank_Herbert a dbont:Person "
           "OPTIONAL { res:Frank_Herbert dbont:deathDate ?d } FILTER (!BOUND(?d)) }",
           ask=True))
    add(_Q(37, "Is Berlin the capital of Germany?", C.BOOLEAN,
           "ASK { res:Germany dbont:capital res:Berlin }", ask=True))
    add(_Q(38, "Was Abraham Lincoln born in Washington?", C.BOOLEAN,
           "ASK { res:Abraham_Lincoln dbont:birthPlace res:Washington_D_C }",
           ask=True))
    add(_Q(39, "Did Orhan Pamuk win the Nobel Prize in Literature?", C.BOOLEAN,
           "ASK { res:Orhan_Pamuk dbont:award res:Nobel_Prize_in_Literature }",
           ask=True))
    add(_Q(40, "Is the Amazon longer than the Nile?", C.BOOLEAN,
           "ASK { res:Amazon_River dbont:length ?a . res:Nile dbont:length ?n "
           "FILTER (?a > ?n) }", ask=True))

    # -- temporal (the object-property-only pattern gap, section 5) --------
    add(_Q(41, "When did Frank Herbert die?", C.TEMPORAL,
           "SELECT ?x WHERE { res:Frank_Herbert dbont:deathDate ?x }"))
    add(_Q(42, "When was Albert Einstein born?", C.TEMPORAL,
           "SELECT ?x WHERE { res:Albert_Einstein dbont:birthDate ?x }"))
    add(_Q(43, "When was Apollo 11 launched?", C.TEMPORAL,
           "SELECT ?x WHERE { res:Apollo_11 dbont:launchDate ?x }"))
    add(_Q(44, "When was The Godfather released?", C.TEMPORAL,
           "SELECT ?x WHERE { res:The_Godfather dbont:releaseDate ?x }"))

    # -- multi-hop chains ---------------------------------------------------
    add(_Q(45, "Who is the daughter of Bill Clinton married to?", C.MULTI_HOP,
           "SELECT ?x WHERE { res:Bill_Clinton dbont:child ?c . "
           "?c dbont:spouse ?x }"))
    add(_Q(46, "Which country does the creator of Miffy come from?", C.MULTI_HOP,
           "SELECT ?x WHERE { res:Miffy dbont:creator ?c . "
           "?c dbont:nationality ?x }"))
    add(_Q(47, "In which city was the wife of Bill Clinton born?", C.MULTI_HOP,
           "SELECT ?x WHERE { res:Bill_Clinton dbont:spouse ?w . "
           "?w dbont:birthPlace ?x }"))
    add(_Q(48, "Where was the author of Dune born?", C.MULTI_HOP,
           "SELECT ?x WHERE { res:Dune_novel dbont:author ?a . "
           "?a dbont:birthPlace ?x }"))

    # -- imperative list requests -------------------------------------------
    add(_Q(49, "Give me all films directed by Alfred Hitchcock.", C.IMPERATIVE,
           "SELECT ?x WHERE { ?x a dbont:Film . ?x dbont:director res:Alfred_Hitchcock }"))
    add(_Q(50, "Give me all soccer clubs in Spain.", C.IMPERATIVE,
           "SELECT ?x WHERE { ?x a dbont:SoccerClub . ?x dbont:country res:Spain }"))
    add(_Q(51, "Give me all cities in Germany.", C.IMPERATIVE,
           "SELECT ?x WHERE { ?x a dbont:City . ?x dbont:country res:Germany }"))
    add(_Q(52, "Give me all albums of Michael Jackson.", C.IMPERATIVE,
           "SELECT ?x WHERE { ?x a dbont:Album . ?x dbont:artist res:Michael_Jackson }"))

    # -- relative clauses and conjunctions ------------------------------------
    add(_Q(53, "Which books by Orhan Pamuk were published before 2000?", C.LIST,
           'SELECT ?x WHERE { ?x a dbont:Book . ?x dbont:author res:Orhan_Pamuk . '
           '?x dbont:publicationDate ?d FILTER (?d < "2000-01-01"^^xsd:date) }'))
    add(_Q(54, "Who wrote books that have more than 500 pages?", C.LIST,
           "SELECT DISTINCT ?x WHERE { ?b a dbont:Book . "
           "?b dbont:numberOfPages ?p FILTER (?p > 500) . ?b dbont:author ?x }"))
    add(_Q(55, "Which mountains are located in Nepal and have an elevation "
               "above 8000 meters?", C.LIST,
           "SELECT ?x WHERE { ?x a dbont:Mountain . ?x dbont:country res:Nepal . "
           "?x dbont:elevation ?e FILTER (?e > 8000) }"))

    # ==================================================================
    # Out-of-scope (45): excluded exactly like the paper's 45.
    # ==================================================================

    yago = "requires a YAGO class"
    dbp = "requires raw infobox (dbp:) properties"
    external = "requires knowledge outside DBpedia"
    foaf = "requires FOAF/external vocabulary"
    nary = "requires n-ary or qualified facts"

    out_of_scope = [
        ("Which caves have more than three entrances?", C.COMPARATIVE, yago),
        ("Give me all world heritage sites designated within the past five years.",
         C.IMPERATIVE, yago),
        ("Which states border Illinois?", C.LIST, dbp),
        ("What is the official website of Tom Cruise?", C.FACTOID, foaf),
        ("Give me all female Russian astronauts.", C.IMPERATIVE, yago),
        ("Which U.S. states are in the same time zone as Utah?", C.LIST, dbp),
        ("Is proinsulin a protein?", C.BOOLEAN, external),
        ("Which airports does Air China serve?", C.LIST, dbp),
        ("Who killed Caesar?", C.FACTOID, external),
        ("What did Bruce Carver die from?", C.FACTOID, dbp),
        ("Give me all school types.", C.IMPERATIVE, yago),
        ("Which telecommunications organizations are located in Belgium?",
         C.LIST, yago),
        ("What is the wavelength of indigo?", C.FACTOID, external),
        ("Who designed the Brooklyn Bridge?", C.FACTOID, dbp),
        ("Which monarchs of the United Kingdom were married to a German?",
         C.LIST, yago),
        ("Give me all Argentine films.", C.IMPERATIVE, yago),
        ("How did Michael Jackson die?", C.FACTOID, dbp),
        ("Which professional surfers were born in Australia?", C.LIST, yago),
        ("Give me a list of all trumpet players that were bandleaders.",
         C.IMPERATIVE, yago),
        ("What is the average temperature in Istanbul?", C.FACTOID, external),
        ("Which countries adopted the Euro before 2002?", C.COMPARATIVE, nary),
        ("Who was the 16th president of the United States?", C.FACTOID, nary),
        ("Give me all movies with Tom Cruise released between 1990 and 1995.",
         C.IMPERATIVE, nary),
        ("Which daughters of British earls died in the same place they were "
         "born in?", C.LIST, yago),
        ("What is the second highest mountain on Earth?", C.SUPERLATIVE, nary),
        ("Give me all people that were born in Vienna and died in Berlin.",
         C.IMPERATIVE, external),
        ("Which books by Kerouac were published by Viking Press?", C.LIST, dbp),
        ("What is the melting point of copper?", C.FACTOID, external),
        ("Which instruments did John Lennon play?", C.LIST, dbp),
        ("Give me all companies in the advertising industry.", C.IMPERATIVE, yago),
        ("Who invented the zipper?", C.FACTOID, external),
        ("Which European countries have a constitutional monarchy?", C.LIST, yago),
        ("What are the nicknames of San Francisco?", C.LIST, dbp),
        ("Give me all B-sides of the Ramones.", C.IMPERATIVE, dbp),
        ("Which awards did Douglas Hofstadter win?", C.LIST, external),
        ("Was the Cuban Missile Crisis earlier than the Bay of Pigs Invasion?",
         C.BOOLEAN, external),
        ("Which mountain is the highest after Annapurna?", C.SUPERLATIVE, nary),
        ("In which military conflicts did Lawrence of Arabia participate?",
         C.LIST, external),
        ("Which software has been developed by organizations founded in "
         "California?", C.MULTI_HOP, yago),
        ("Give me the capitals of all countries in Africa.", C.IMPERATIVE, yago),
        ("Who is the youngest player in the Premier League?", C.SUPERLATIVE, nary),
        ("How often was Michael Jordan divorced?", C.AGGREGATE, nary),
        ("What is the founding year of the brewery that produces Pilsner "
         "Urquell?", C.MULTI_HOP, dbp),
        ("Which organizations are endowed with more than 10 billion dollars?",
         C.COMPARATIVE, dbp),
        ("Who composed the music for Harold and Maude?", C.FACTOID, external),
    ]
    for offset, (text, category, reason) in enumerate(out_of_scope):
        add(_Q(56 + offset, text, category, out_of_scope_reason=reason))

    assert len(questions) == 100
    return questions


def in_scope_questions() -> list[QaldQuestion]:
    """The 55 questions the paper's protocol keeps."""
    return [q for q in load_questions() if q.in_scope]

"""QALD-2-style evaluation benchmark.

The paper evaluates on the QALD-2 open-challenge test set: 100 questions,
filtered to the 55 that rely on the DBpedia ontology alone (no YAGO
classes/entities, no raw infobox properties), then scored as

* precision = correctly answered / answered,
* recall    = answered / 55 (the paper's "can process" rate),
* F1        = their harmonic mean (Table 2: 83% / 32% / 46%).

This package rebuilds that protocol offline: a 100-question benchmark in
the QALD-2 style over the curated mini-DBpedia (:mod:`repro.qald.dataset`),
with machine-checkable gold SPARQL for every in-scope question, the
evaluator (:mod:`repro.qald.evaluate`) and a Table-2-style report
(:mod:`repro.qald.report`).  The difficulty mix — simple factoids through
superlatives, comparatives, booleans, aggregates, imperative list requests
and multi-hop chains — mirrors QALD-2's, which is what makes the coverage
limits of the pipeline bite the way Table 2 shows.
"""

from repro.qald.questions import QaldQuestion, QuestionCategory
from repro.qald.dataset import load_questions, in_scope_questions
from repro.qald.devset import load_dev_questions
from repro.qald.evaluate import EvaluationResult, QaldEvaluator, QuestionOutcome
from repro.qald.report import format_table2, format_outcomes

__all__ = [
    "QaldQuestion",
    "QuestionCategory",
    "load_questions",
    "in_scope_questions",
    "load_dev_questions",
    "QaldEvaluator",
    "EvaluationResult",
    "QuestionOutcome",
    "format_table2",
    "format_outcomes",
]

"""Development question set (QALD-style train split).

QALD-2 shipped a training set alongside the test set; the paper tuned on
nothing explicitly, but the reproduction needs a held-out set for
threshold studies (`benchmarks/bench_threshold_sweep.py`) that does not
touch the 100-question benchmark.  Twenty questions, disjoint from the
test set, same difficulty philosophy: an answerable factoid band plus the
hard shapes.
"""

from __future__ import annotations

from repro.qald.questions import QaldQuestion, QuestionCategory as C

_Q = QaldQuestion


def load_dev_questions() -> list[QaldQuestion]:
    """The 20-question development split (qids 101-120)."""
    return [
        _Q(101, "How tall is Tom Cruise?", C.FACTOID,
           "SELECT ?x WHERE { res:Tom_Cruise dbont:height ?x }"),
        _Q(102, "Where was Steven Spielberg born?", C.FACTOID,
           "SELECT ?x WHERE { res:Steven_Spielberg dbont:birthPlace ?x }"),
        _Q(103, "Who directed Jaws?", C.FACTOID,
           "SELECT ?x WHERE { res:Jaws_film dbont:director ?x }"),
        _Q(104, "Which films were directed by Tim Burton?", C.LIST,
           "SELECT ?x WHERE { ?x a dbont:Film . ?x dbont:director res:Tim_Burton }"),
        _Q(105, "Who is the leader of the United Kingdom?", C.FACTOID,
           "SELECT ?x WHERE { res:United_Kingdom dbont:leaderName ?x }"),
        _Q(106, "What is the population of Turkey?", C.FACTOID,
           "SELECT ?x WHERE { res:Turkey dbont:populationTotal ?x }"),
        _Q(107, "Where did Freddie Mercury die?", C.FACTOID,
           "SELECT ?x WHERE { res:Freddie_Mercury dbont:deathPlace ?x }"),
        _Q(108, "How many students does Purdue University have?", C.FACTOID,
           "SELECT ?x WHERE { res:Purdue_University dbont:numberOfStudents ?x }"),
        _Q(109, "Which books were written by Agatha Christie?", C.LIST,
           "SELECT ?x WHERE { ?x a dbont:Book . "
           "?x dbont:author res:Agatha_Christie }"),
        _Q(110, "What is the currency of Sweden?", C.FACTOID,
           "SELECT ?x WHERE { res:Sweden dbont:currency ?x }"),
        _Q(111, "Who founded Mojang?", C.FACTOID,
           "SELECT ?x WHERE { res:Mojang dbont:foundedBy ?x }"),
        _Q(112, "Where does the Mississippi start?", C.FACTOID,
           "SELECT ?x WHERE { res:Mississippi_River dbont:sourceCountry ?x }"),
        # Hard shapes (unanswerable by the faithful pipeline).
        _Q(113, "Which country has the most inhabitants?", C.SUPERLATIVE,
           "SELECT ?x WHERE { ?x a dbont:Country . ?x dbont:populationTotal ?p } "
           "ORDER BY DESC(?p) LIMIT 1"),
        _Q(114, "When was IBM founded?", C.TEMPORAL,
           "SELECT ?x WHERE { res:IBM dbont:foundingDate ?x }"),
        _Q(115, "Is Istanbul the capital of Turkey?", C.BOOLEAN,
           "ASK { res:Turkey dbont:capital res:Istanbul }", ask=True),
        _Q(116, "Give me all films starring Harrison Ford.", C.IMPERATIVE,
           "SELECT ?x WHERE { ?x a dbont:Film . ?x dbont:starring res:Harrison_Ford }"),
        _Q(117, "Which lakes are deeper than 500 meters?", C.COMPARATIVE,
           "SELECT ?x WHERE { ?x a dbont:Lake . ?x dbont:depth ?d "
           "FILTER (?d > 500) }"),
        _Q(118, "How many films did Steven Spielberg direct?", C.AGGREGATE,
           "SELECT COUNT(?x) WHERE { ?x dbont:director res:Steven_Spielberg }"),
        _Q(119, "Where was the director of Psycho born?", C.MULTI_HOP,
           "SELECT ?x WHERE { res:Psycho_film dbont:director ?d . "
           "?d dbont:birthPlace ?x }"),
        _Q(120, "Which mountains have an elevation above 8500 meters?", C.COMPARATIVE,
           "SELECT ?x WHERE { ?x a dbont:Mountain . ?x dbont:elevation ?e "
           "FILTER (?e > 8500) }"),
    ]

"""Human-readable reports: Table 2 and per-question outcome listings."""

from __future__ import annotations

from repro.qald.evaluate import EvaluationResult, QuestionOutcome

#: The numbers the paper reports in Table 2, for side-by-side display.
PAPER_TABLE2 = {"precision": 0.83, "recall": 0.32, "f1": 0.46}


def format_table2(result: EvaluationResult) -> str:
    """Render the reproduction of Table 2 next to the paper's numbers."""
    lines = [
        "Table 2 — Precision, Recall and F1 (paper protocol)",
        "",
        f"{'':24s}{'Precision':>12s}{'Recall':>10s}{'F1':>8s}",
        (
            f"{'Paper (QALD-2 subset)':24s}"
            f"{PAPER_TABLE2['precision']:>11.0%} {PAPER_TABLE2['recall']:>9.0%}"
            f"{PAPER_TABLE2['f1']:>8.0%}"
        ),
        (
            f"{'This reproduction':24s}"
            f"{result.paper_precision:>11.0%} {result.paper_recall:>9.0%}"
            f"{result.paper_f1:>8.0%}"
        ),
        "",
        (
            f"questions: {result.total}  answered: {result.answered}  "
            f"correct: {result.correct}"
        ),
        (
            f"macro (standard QALD): P={result.macro_precision:.2f} "
            f"R={result.macro_recall:.2f} F1={result.macro_f1:.2f}"
        ),
    ]
    return "\n".join(lines)


def format_outcomes(result: EvaluationResult, verbose: bool = False) -> str:
    """One line per question: status, id, text (and answers when verbose)."""
    lines = []
    for outcome in result.outcomes:
        if not outcome.answered:
            status = "UNANSWERED"
        elif outcome.correct:
            status = "CORRECT   "
        else:
            status = "WRONG     "
        line = f"{status} Q{outcome.question.qid:<3d} {outcome.question.text}"
        if verbose and outcome.answered:
            predicted = sorted(_short(t) for t in outcome.predicted)
            line += f"\n            system: {predicted}"
            if not isinstance(outcome.gold, bool):
                line += f"\n            gold:   {sorted(_short(t) for t in outcome.gold)}"
        lines.append(line)
    return "\n".join(lines)


def format_category_breakdown(result: EvaluationResult) -> str:
    """Per-category totals: where the coverage limits bite."""
    lines = [f"{'category':14s}{'total':>7s}{'answered':>10s}{'correct':>9s}"]
    for category, (total, answered, correct) in result.by_category().items():
        lines.append(f"{category:14s}{total:>7d}{answered:>10d}{correct:>9d}")
    return "\n".join(lines)


def _short(term) -> str:
    local = getattr(term, "local_name", None)
    return local if local is not None else str(term)


def to_json_dict(result: EvaluationResult) -> dict:
    """Machine-readable evaluation record (for EXPERIMENTS.md regeneration
    and external analysis)."""
    return {
        "protocol": "paper-table2",
        "paper": dict(PAPER_TABLE2),
        "measured": {
            "total": result.total,
            "answered": result.answered,
            "correct": result.correct,
            "precision": round(result.paper_precision, 4),
            "recall": round(result.paper_recall, 4),
            "f1": round(result.paper_f1, 4),
            "macro_precision": round(result.macro_precision, 4),
            "macro_recall": round(result.macro_recall, 4),
            "macro_f1": round(result.macro_f1, 4),
        },
        "by_category": {
            category: {"total": t, "answered": a, "correct": c}
            for category, (t, a, c) in result.by_category().items()
        },
        "questions": [
            {
                "qid": outcome.question.qid,
                "text": outcome.question.text,
                "category": outcome.question.category.value,
                "answered": outcome.answered,
                "correct": outcome.correct,
                "predicted": sorted(_short(t) for t in outcome.predicted),
                "gold": (
                    outcome.gold
                    if isinstance(outcome.gold, bool)
                    else sorted(_short(t) for t in outcome.gold)
                ),
            }
            for outcome in result.outcomes
        ],
    }

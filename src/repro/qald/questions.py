"""Benchmark question model."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class QuestionCategory(enum.Enum):
    """Question shape, following the QALD-2 taxonomy."""

    FACTOID = "factoid"            # single-relation lookup
    LIST = "list"                  # multiple answers expected
    SUPERLATIVE = "superlative"    # needs ORDER BY / argmax
    COMPARATIVE = "comparative"    # needs FILTER on values
    AGGREGATE = "aggregate"        # needs COUNT
    BOOLEAN = "boolean"            # yes/no (ASK)
    TEMPORAL = "temporal"          # date-valued answer
    MULTI_HOP = "multi-hop"        # chained relations
    IMPERATIVE = "imperative"      # "Give me all ..."


@dataclass(frozen=True)
class QaldQuestion:
    """One benchmark question.

    ``gold_query`` is SPARQL over the mini-DBpedia producing the gold
    answer set (or the gold boolean for ``ask`` questions).  Out-of-scope
    questions (YAGO classes, raw infobox properties, external data — the 45
    the paper excluded) carry ``gold_query=None`` plus the exclusion reason.
    """

    qid: int
    text: str
    category: QuestionCategory
    gold_query: str | None = None
    ask: bool = False
    out_of_scope_reason: str | None = None

    @property
    def in_scope(self) -> bool:
        return self.gold_query is not None

    def __post_init__(self) -> None:
        if self.gold_query is None and self.out_of_scope_reason is None:
            raise ValueError(
                f"question {self.qid} needs a gold query or an exclusion reason"
            )
        if self.gold_query is not None and self.out_of_scope_reason is not None:
            raise ValueError(f"question {self.qid} cannot be both in and out of scope")

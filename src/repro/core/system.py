"""The question-answering system facade (the paper's whole pipeline).

``answer()`` runs: annotate -> extract triple patterns (2.1) -> map slots
(2.2) -> generate candidate queries (2.3) -> execute against the KB ->
filter by expected answer type (2.3.2) -> return the answers of the
best-scoring productive query (2.3.1).

``answer_many()`` fans a batch of questions out over a thread pool against
the same (read-only) knowledge base; see :mod:`repro.perf.batch` for the
thread-safety contract and ``docs/performance.md`` for the cache layers
that make repeated runs cheap.  Every stage records wall time and counters
into :attr:`QuestionAnsweringSystem.stats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.config import PipelineConfig
from repro.core.extraction import TripleExtractor
from repro.core.mapping import CandidateTriple, MappingFailure, TripleMapper
from repro.core.querygen import CandidateQuery, QueryGenerator
from repro.core.triples import TriplePattern
from repro.core.typecheck import ExpectedType, answer_matches_type, expected_answer_type
from repro.kb.builder import KnowledgeBase
from repro.nlp.pipeline import Pipeline, Sentence
from repro.patty.store import PatternStore, build_pattern_store
from repro.perf.batch import BatchAnswerer
from repro.perf.stats import PerfStats
from repro.rdf.terms import Term, Variable
from repro.wordnet.adjectives import AdjectivePropertyMap, build_adjective_map
from repro.wordnet.database import build_wordnet
from repro.wordnet.pairs import SimilarPropertyIndex, build_similar_property_pairs


@dataclass
class Answer:
    """Everything the pipeline produced for one question."""

    question: str
    answers: list[Term] = field(default_factory=list)
    query: CandidateQuery | None = None
    expected_type: ExpectedType = ExpectedType.ANY
    triples: list[TriplePattern] = field(default_factory=list)
    candidate_queries: list[CandidateQuery] = field(default_factory=list)
    failure: str | None = None
    #: Yes/no verdict, only set by the boolean-questions extension.
    boolean: bool | None = None
    #: Imperative rewrite applied before answering, when the extension ran.
    rewritten_question: str | None = None

    @property
    def answered(self) -> bool:
        return bool(self.answers) or self.boolean is not None

    @property
    def top(self) -> Term | None:
        """The single top-ranked answer (what the paper reports to users)."""
        return self.answers[0] if self.answers else None

    def explain(self) -> str:
        """Human-readable trace of what the pipeline did for this question.

        One line per stage: rewrite, extracted patterns, candidate-query
        count, the winning query, the expected-type filter, and the final
        verdict.  Used by ``python -m repro ask --verbose``.
        """
        lines = [f"question: {self.question}"]
        if self.rewritten_question is not None:
            lines.append(f"rewritten (imperative extension): {self.rewritten_question}")
        if self.triples:
            lines.append("triple patterns (section 2.1):")
            for pattern in self.triples:
                lines.append(f"  {pattern}")
        else:
            lines.append("triple patterns (section 2.1): none extracted")
        if self.candidate_queries:
            lines.append(
                f"candidate queries (section 2.3): {len(self.candidate_queries)}"
            )
        if self.expected_type is not ExpectedType.ANY:
            lines.append(f"expected answer type (Table 1): {self.expected_type.value}")
        if self.query is not None:
            lines.append("winning query:")
            for line in self.query.to_sparql().splitlines():
                lines.append(f"  {line}")
        if self.boolean is not None:
            lines.append(f"verdict: {'yes' if self.boolean else 'no'} (ASK extension)")
        elif self.answered:
            lines.append(f"answers: {len(self.answers)}")
        else:
            lines.append(f"unanswered: {self.failure}")
        return "\n".join(lines)


class QuestionAnsweringSystem:
    """End-to-end natural-language question answering over the KB."""

    def __init__(
        self,
        kb: KnowledgeBase,
        pattern_store: PatternStore,
        similar_pairs: SimilarPropertyIndex,
        adjective_map: AdjectivePropertyMap,
        config: PipelineConfig | None = None,
        data_pattern_store: PatternStore | None = None,
    ) -> None:
        self._kb = kb
        self._config = config if config is not None else PipelineConfig()
        self._stats = PerfStats()
        self._pipeline = Pipeline(
            kb.surface_index,
            cache_size=1024 if self._config.enable_annotation_cache else 0,
        )
        self._extractor = TripleExtractor()
        self._mapper = TripleMapper(
            kb, pattern_store, similar_pairs, adjective_map, self._config,
            data_pattern_store=data_pattern_store,
            stats=self._stats,
        )
        self._generator = QueryGenerator(self._config, stats=self._stats)
        self._boolean_handler = None
        if self._config.enable_boolean_questions:
            from repro.extensions.booleans import BooleanQuestionHandler

            self._boolean_handler = BooleanQuestionHandler(self._mapper)

    @classmethod
    def over(
        cls, kb: KnowledgeBase, config: PipelineConfig | None = None
    ) -> "QuestionAnsweringSystem":
        """Build the system with all resources mined/derived from the KB:
        the PATTY pattern store, WordNet property pairs and adjective map
        (plus the data-property pattern store when that extension is on)."""
        config = config if config is not None else PipelineConfig()
        wordnet = build_wordnet()
        data_pattern_store = None
        if config.enable_data_property_patterns:
            from repro.extensions.datapatterns import build_data_pattern_store

            data_pattern_store = build_data_pattern_store(kb)
        return cls(
            kb,
            pattern_store=build_pattern_store(kb),
            similar_pairs=build_similar_property_pairs(kb.ontology, wordnet),
            adjective_map=build_adjective_map(kb.ontology, wordnet),
            config=config,
            data_pattern_store=data_pattern_store,
        )

    # ------------------------------------------------------------------

    def answer(self, question: str) -> Answer:
        """Answer one natural-language question."""
        text = question
        rewritten: str | None = None
        if self._config.enable_imperatives:
            from repro.extensions.imperatives import normalize_imperative

            rewritten = normalize_imperative(question)
            if rewritten is not None:
                text = rewritten

        with self._stats.timer("annotate"):
            sentence = self._pipeline.annotate(text)
        result = Answer(question=question,
                        expected_type=expected_answer_type(sentence),
                        rewritten_question=rewritten)

        if (
            self._boolean_handler is not None
            and self._boolean_handler.is_boolean_question(sentence)
        ):
            if self._answer_boolean(sentence, result):
                return result

        with self._stats.timer("extract"):
            result.triples = self._extractor.extract(sentence)
        if not result.triples:
            result.failure = "no triple patterns extracted (section 2.1 coverage)"
            return result

        try:
            with self._stats.timer("map"):
                mapped = self._mapper.map(sentence, result.triples)
        except MappingFailure as failure:
            result.failure = f"mapping failed: {failure}"
            return result

        with self._stats.timer("generate"):
            result.candidate_queries = self._generator.generate(mapped)
        if not result.candidate_queries:
            result.failure = "no candidate queries generated"
            return result

        with self._stats.timer("execute"):
            self._execute(result)
        if not result.answered and result.failure is None:
            result.failure = "no candidate query produced type-conforming answers"
        return result

    def answer_many(
        self,
        questions: Sequence[str] | Iterable[str],
        max_workers: int | None = None,
    ) -> list[Answer]:
        """Answer a batch of questions concurrently.

        Results come back in input order and are exactly what sequential
        :meth:`answer` calls would produce — the pipeline is deterministic
        and its shared caches change only how fast answers are computed,
        never what they are.  The knowledge base must not be mutated while
        the batch is in flight.
        """
        return BatchAnswerer(self, max_workers=max_workers).answer_many(questions)

    # ------------------------------------------------------------------

    def _answer_boolean(self, sentence: Sentence, result: Answer) -> bool:
        """Extension path: try to settle a yes/no question via ASK.

        Returns True when a verdict was reached; False falls through to the
        ordinary pipeline (which will fail the question, preserving the
        faithful behaviour for unmappable predicates like "alive").
        """
        assert self._boolean_handler is not None
        bucket = self._boolean_handler.extract(sentence)
        if not bucket:
            return False
        result.triples = bucket
        candidates = self._boolean_handler.candidates(sentence, bucket)
        if not candidates:
            return False
        # Verdict comes from the best-ranked predicate only (both of its
        # orientations): checking lower-ranked predicates too would let
        # "Was X born in Y?" answer yes because X *died* in Y.
        best_predicate = candidates[0].triples[0].predicate
        result.boolean = any(
            self._kb.engine.query(candidate.to_ast()).value
            for candidate in candidates
            if candidate.triples[0].predicate == best_predicate
        )
        return True

    def _execute(self, result: Answer) -> None:
        """Run candidates best-first; keep the first productive one.

        Early termination (section 2.3.1): candidate scores are sorted
        non-increasing, so the moment a candidate yields type-conforming
        answers no later candidate can displace it — the loop stops without
        touching the rest of the (already capped) list.
        """
        check_types = self._config.use_type_checking
        for executed, candidate in enumerate(result.candidate_queries, start=1):
            select = self._kb.engine.query(candidate.to_ast())
            answers = [term for term in select.column(Variable("x")) if term is not None]
            if check_types:
                answers = [
                    term for term in answers
                    if answer_matches_type(self._kb, term, result.expected_type)
                ]
            if answers:
                result.answers = answers
                result.query = candidate
                self._stats.increment("execute.candidates_run", executed)
                self._stats.increment(
                    "execute.candidates_short_circuited",
                    len(result.candidate_queries) - executed,
                )
                return
        self._stats.increment(
            "execute.candidates_run", len(result.candidate_queries)
        )

    @property
    def kb(self) -> KnowledgeBase:
        return self._kb

    @property
    def config(self) -> PipelineConfig:
        return self._config

    @property
    def stats(self) -> PerfStats:
        """Per-stage timers and counters for this system instance."""
        return self._stats

    def perf_report(self) -> dict:
        """Stage timings, pipeline counters and engine cache statistics."""
        report = self._stats.snapshot()
        report["sparql"] = self._kb.engine.cache_stats()
        report["sparql"]["engine_counters"] = self._kb.engine.stats.snapshot()["counters"]
        return report

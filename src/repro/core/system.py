"""The question-answering system facade (the paper's whole pipeline).

``answer()`` runs: annotate -> extract triple patterns (2.1) -> map slots
(2.2) -> generate candidate queries (2.3) -> execute against the KB ->
filter by expected answer type (2.3.2) -> return the answers of the
best-scoring productive query (2.3.1).

``answer_many()`` fans a batch of questions out over a thread pool against
the same (read-only) knowledge base; see :mod:`repro.perf.batch` for the
thread-safety contract and ``docs/performance.md`` for the cache layers
that make repeated runs cheap.  Every stage records wall time and counters
into :attr:`QuestionAnsweringSystem.stats`.

**Reliability contract** (``docs/reliability.md``): ``answer()`` never
raises.  Every stage boundary converts failures into a typed
:class:`repro.reliability.StageError` recorded on :attr:`Answer.failure`
(and :attr:`Answer.failure_stage`); annotation/extraction exceptions fall
back to the shallow keyword extractor before giving up; a candidate query
that errors or exceeds the stage budget is skipped and ranking continues
over the survivors.  Budgets (``PipelineConfig.max_candidates`` /
``stage_budget_ms``) are never silent: hitting one sets
:attr:`Answer.truncated` and a counter.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.config import PipelineConfig
from repro.core.explain import Explanation
from repro.core.extraction import TripleExtractor
from repro.core.mapping import CandidateTriple, MappingFailure, TripleMapper
from repro.core.querygen import CandidateQuery, QueryGenerator
from repro.core.triples import TriplePattern
from repro.core.typecheck import ExpectedType, answer_matches_type, expected_answer_type
from repro.kb.builder import KnowledgeBase
from repro.nlp.dependencies import DependencyGraph
from repro.nlp.pipeline import Pipeline, Sentence
from repro.patty.store import PatternStore, build_pattern_store
from repro.reliability.budgets import Deadline
from repro.reliability.errors import (
    AnnotationError,
    ExecutionError,
    ExtractionError,
    InternalError,
    MappingError,
    QueryGenerationError,
    StageError,
    TypeCheckError,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Span, Tracer
from repro.perf.batch import BatchAnswerer
from repro.perf.stats import PerfStats
from repro.rdf.terms import Term, Variable
from repro.wordnet.adjectives import AdjectivePropertyMap, build_adjective_map
from repro.wordnet.database import build_wordnet
from repro.wordnet.pairs import SimilarPropertyIndex, build_similar_property_pairs


@dataclass
class Answer:
    """Everything the pipeline produced for one question."""

    question: str
    answers: list[Term] = field(default_factory=list)
    query: CandidateQuery | None = None
    expected_type: ExpectedType = ExpectedType.ANY
    triples: list[TriplePattern] = field(default_factory=list)
    candidate_queries: list[CandidateQuery] = field(default_factory=list)
    failure: str | None = None
    #: Yes/no verdict, only set by the boolean-questions extension.
    boolean: bool | None = None
    #: Imperative rewrite applied before answering, when the extension ran.
    rewritten_question: str | None = None
    #: Pipeline stage the failure is attributed to (a
    #: :class:`repro.reliability.Stage` value, or "internal" for the
    #: never-raise last resort), when :attr:`failure` came from a typed
    #: :class:`repro.reliability.StageError`.
    failure_stage: str | None = None
    #: Fallbacks applied while answering, in order (e.g.
    #: "annotate:shallow-annotation", "extract:keyword-patterns").  A
    #: non-empty list means the answer was produced in degraded mode.
    degraded: list[str] = field(default_factory=list)
    #: True when a budget (candidate cap or stage wall-clock budget) cut
    #: work short — the explicit "truncated" marker; never silent.
    truncated: bool = False
    #: Executor outcome per candidate-query rank: ``(index, status,
    #: detail)`` tuples with statuses from
    #: :data:`repro.core.explain.CANDIDATE_STATUSES`.  Feeds the
    #: :class:`Explanation` candidate table; candidates without a record
    #: were never executed (short-circuited).
    candidate_outcomes: list[tuple[int, str, str]] = field(
        default_factory=list, repr=False
    )
    #: The root span of this question's trace, when the system was
    #: configured with ``enable_tracing`` and the question was sampled.
    trace: Span | None = field(default=None, repr=False)

    @property
    def answered(self) -> bool:
        return bool(self.answers) or self.boolean is not None

    @property
    def top(self) -> Term | None:
        """The single top-ranked answer (what the paper reports to users)."""
        return self.answers[0] if self.answers else None

    def explanation(self) -> Explanation:
        """Structured account of what the pipeline did for this question:
        stage spans (under tracing), the ranked candidate table with
        per-candidate scores and evidence sources, and rejection reasons.

        ``str(answer.explanation())`` reproduces the legacy ``explain()``
        text; ``explanation().render_tree()`` adds the candidate table and
        the span tree (what ``python -m repro explain`` prints).
        """
        return Explanation.from_answer(self)

    def explain(self) -> str:
        """Deprecated: use :meth:`explanation` (``str()`` of it is this text).

        Kept for one release as a shim over the structured
        :class:`Explanation` API; the returned text is unchanged.
        """
        warnings.warn(
            "Answer.explain() is deprecated; use Answer.explanation() "
            "(str() of it yields this exact text, .render_tree() the full "
            "diagnostic view)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.explanation().render()


class QuestionAnsweringSystem:
    """End-to-end natural-language question answering over the KB."""

    def __init__(
        self,
        kb: KnowledgeBase,
        pattern_store: PatternStore,
        similar_pairs: SimilarPropertyIndex,
        adjective_map: AdjectivePropertyMap,
        config: PipelineConfig | None = None,
        data_pattern_store: PatternStore | None = None,
    ) -> None:
        self._kb = kb
        self._config = config if config is not None else PipelineConfig()
        self._stats = PerfStats()
        self._tracer = (
            Tracer(sample_every=self._config.trace_sample_every)
            if self._config.enable_tracing else NULL_TRACER
        )
        #: Aggregated trace histograms (``trace.<span>.ms``) folded out of
        #: every sampled question; merged into :meth:`metrics`.
        self._trace_metrics = MetricsRegistry()
        if self._tracer.enabled:
            # The engine keeps a *list* of installed tracers (it is shared
            # by every system over this KB); events land on whichever one
            # has a trace open on the current thread.
            kb.engine.add_tracer(self._tracer)
        self._pipeline = Pipeline(
            kb.surface_index,
            cache_size=1024 if self._config.enable_annotation_cache else 0,
        )
        self._extractor = TripleExtractor()
        self._mapper = TripleMapper(
            kb, pattern_store, similar_pairs, adjective_map, self._config,
            data_pattern_store=data_pattern_store,
            stats=self._stats,
            tracer=self._tracer,
        )
        self._generator = QueryGenerator(
            self._config, stats=self._stats, tracer=self._tracer
        )
        # Imported lazily: repro.reliability.fallback itself imports
        # repro.core.triples, so a module-level import would cycle when
        # repro.reliability is imported before repro.core.
        from repro.reliability.fallback import KeywordPatternExtractor

        self._fallback_extractor = KeywordPatternExtractor()
        self._boolean_handler = None
        if self._config.enable_boolean_questions:
            from repro.extensions.booleans import BooleanQuestionHandler

            self._boolean_handler = BooleanQuestionHandler(self._mapper)

    @classmethod
    def over(
        cls, kb: KnowledgeBase, config: PipelineConfig | None = None
    ) -> "QuestionAnsweringSystem":
        """Build the system with all resources mined/derived from the KB:
        the PATTY pattern store, WordNet property pairs and adjective map
        (plus the data-property pattern store when that extension is on)."""
        config = config if config is not None else PipelineConfig()
        wordnet = build_wordnet()
        data_pattern_store = None
        if config.enable_data_property_patterns:
            from repro.extensions.datapatterns import build_data_pattern_store

            data_pattern_store = build_data_pattern_store(kb)
        return cls(
            kb,
            pattern_store=build_pattern_store(kb),
            similar_pairs=build_similar_property_pairs(kb.ontology, wordnet),
            adjective_map=build_adjective_map(kb.ontology, wordnet),
            config=config,
            data_pattern_store=data_pattern_store,
        )

    @classmethod
    def from_backend(
        cls,
        backend,
        config: PipelineConfig | None = None,
        ontology=None,
    ) -> "QuestionAnsweringSystem":
        """Build the system over a storage backend
        (:class:`repro.kb.KBBackend`) instead of a pre-built KB.

        Wraps the backend in a :class:`~repro.kb.builder.KnowledgeBase`
        via :meth:`KnowledgeBase.from_backend` (rebuilding the derived
        lookup indexes from the stored triples) and then mines the
        pattern resources exactly as :meth:`over` does.  ``ontology``
        defaults to the DBpedia-shaped schema every stored KB in this
        repo uses.
        """
        from repro.kb.schema import build_dbpedia_ontology

        if ontology is None:
            ontology = build_dbpedia_ontology()
        kb = KnowledgeBase.from_backend(ontology, backend)
        return cls.over(kb, config)

    # ------------------------------------------------------------------

    def answer(self, question: str, deadline: Deadline | None = None) -> Answer:
        """Answer one natural-language question.

        Never raises: any failure inside a stage is converted at the stage
        boundary into a typed diagnostic on :attr:`Answer.failure` (see the
        module docstring for the full reliability contract).

        ``deadline`` — an explicit per-request
        :class:`repro.reliability.Deadline` (the serving layer propagates
        each request's admission deadline here) — overrides the
        config-derived budget (``stage_budget_ms`` / ``question_timeout_s``)
        for this question only.

        Under ``PipelineConfig.enable_tracing`` the (sampled) question is
        answered inside a span tree — one child span per stage, with
        candidate/cache events — attached to :attr:`Answer.trace` and
        folded into the ``trace.*`` histograms of :meth:`metrics`.
        """
        root = self._tracer.begin_trace("answer", question=question)
        try:
            result = self._answer_guarded(
                question, traced=root is not None, deadline=deadline
            )
        except Exception as error:  # last resort: the contract is absolute
            self._stats.increment("reliability.unexpected_errors")
            typed = InternalError.from_exception(error)
            result = Answer(
                question=question,
                failure=typed.describe(),
                failure_stage=typed.stage_value,
            )
        if root is not None:
            self._finish_trace(root, result)
        return result

    def _finish_trace(self, root: Span, result: Answer) -> None:
        """Stamp reliability events + outcome attributes, close, attach."""
        for fallback in result.degraded:
            root.add_event("degraded", fallback=fallback)
        if result.truncated:
            root.add_event("truncated")
        if result.failure is not None:
            root.add_event(
                "failure",
                stage=result.failure_stage or "",
                error=result.failure,
            )
        root.attributes.update(
            answered=result.answered,
            answers=len(result.answers),
            truncated=result.truncated,
            degraded=len(result.degraded),
        )
        self._tracer.end_trace(root)
        result.trace = root
        self._trace_metrics.absorb_span(root)

    def _answer_guarded(
        self,
        question: str,
        traced: bool = False,
        deadline: Deadline | None = None,
    ) -> Answer:
        # Stage spans use the explicit open/close twin of Tracer.span()
        # behind `traced` guards: an untraced question pays one boolean
        # check per stage, nothing else (the <2% overhead contract of
        # docs/observability.md).  The stage methods never raise (that is
        # the reliability contract), so open/close pairs cannot leak; the
        # last-resort handler's end_trace would close them even if one did.
        tracer = self._tracer
        text = question
        rewritten: str | None = None
        if self._config.enable_imperatives:
            from repro.extensions.imperatives import normalize_imperative

            try:
                rewritten = normalize_imperative(question)
            except Exception:
                self._stats.increment("reliability.failures.imperative_rewrite")
                rewritten = None
            if rewritten is not None:
                text = rewritten

        faults = self._config.fault_injector
        if deadline is None:
            deadline = self._config.new_deadline()
        result = Answer(question=question, rewritten_question=rewritten)

        # -- annotate --------------------------------------------------
        span = tracer.open_span("annotate") if traced else None
        sentence = self._annotate_stage(text, result, faults)
        if span is not None:
            span.attributes.update(
                ok=sentence is not None,
                tokens=0 if sentence is None else len(sentence.tokens),
            )
            tracer.close_span(span)
        if sentence is None:
            return result
        shallow = sentence.graph.template == "shallow-fallback"

        try:
            result.expected_type = expected_answer_type(sentence)
        except Exception:
            self._stats.increment("reliability.failures.expected_type")

        if (
            self._boolean_handler is not None
            and not shallow
            and self._try_boolean(sentence, result)
        ):
            return result

        # -- extract ---------------------------------------------------
        span = tracer.open_span("extract") if traced else None
        extracted = self._extract_stage(text, sentence, result, faults, shallow)
        if span is not None:
            span.attributes.update(ok=extracted, patterns=len(result.triples))
            tracer.close_span(span)
        if not extracted:
            return result

        # -- map -------------------------------------------------------
        span = tracer.open_span("map") if traced else None
        caches_before = self._mapper.cache_snapshot() if span is not None else None
        mapped = self._map_stage(text, sentence, result, faults)
        if span is not None:
            span.attributes.update(
                ok=mapped is not None,
                mapped_patterns=0 if mapped is None else len(mapped),
                predicate_candidates=0 if mapped is None else sum(
                    len(candidate.predicates) for candidate in mapped
                ),
            )
            self._attach_cache_deltas(span, caches_before)
            tracer.close_span(span)
        if mapped is None:
            return result

        # -- generate --------------------------------------------------
        span = tracer.open_span("generate") if traced else None
        generated = self._generate_stage(text, mapped, result, faults, deadline)
        if span is not None:
            span.attributes.update(
                ok=generated, candidates=len(result.candidate_queries)
            )
            tracer.close_span(span)
        if not generated:
            return result

        # -- execute ---------------------------------------------------
        span = tracer.open_span("execute") if traced else None
        guard = self._config.stage_guard
        guarded = False
        rejection: StageError | None = None
        if guard is not None:
            try:
                guard.enter("execute")
                guarded = True
            except StageError as error:
                # Breaker open / bulkhead saturated: candidates are never
                # run; the request fails fast with the typed rejection.
                rejection = error
                self._trace_stage_failure(error)
                result.failure = error.describe()
                result.failure_stage = error.stage_value
        if rejection is None:
            with self._stats.timer("execute"):
                execute_error = self._execute(
                    result, deadline=deadline, faults=faults, text=text
                )
            if guarded:
                guard.exit("execute", failed=execute_error is not None)
        if span is not None:
            span.attributes.update(
                productive=result.query is not None,
                answers=len(result.answers),
            )
            tracer.close_span(span)
        if deadline.tripped:
            result.truncated = True
            self._stats.increment("reliability.budget_exhausted")
        if not result.answered and result.failure is None:
            if result.truncated:
                result.failure = (
                    "candidate budget exhausted before a productive query"
                )
            else:
                result.failure = (
                    "no candidate query produced type-conforming answers"
                )
        return result

    # -- stage boundaries (each converts failures to typed diagnostics) --

    def _annotate_stage(self, text, result, faults) -> Sentence | None:
        """Full annotation, degrading to shallow annotation on failure.

        The serving layer's stage guard (when installed) gates entry: an
        open annotate breaker or saturated bulkhead raises its typed
        rejection here, which lands on the same fallback ladder as a real
        annotation failure — i.e. an overloaded annotate stage degrades to
        shallow annotation instead of queueing more work behind it.
        """
        error: StageError | None = None
        guard = self._config.stage_guard
        guarded = False
        sentence: Sentence | None = None
        try:
            if guard is not None:
                guard.enter("annotate")
                guarded = True
            if faults is not None and faults.check("annotate", text):
                # Injected empty result: an empty sentence, which the
                # extractor treats as the paper's "cannot process" case.
                sentence = Sentence(
                    text=text, tokens=[], graph=DependencyGraph([], root=None)
                )
            else:
                with self._stats.timer("annotate"):
                    sentence = self._pipeline.annotate(text)
        except StageError as stage_error:
            error = stage_error
        except Exception as unexpected:
            error = AnnotationError(f"{type(unexpected).__name__}: {unexpected}")
        if guarded:
            guard.exit("annotate", failed=error is not None)
        if error is None:
            return sentence

        self._stats.increment("reliability.failures.annotate")
        self._trace_stage_failure(error)
        result.failure = error.describe()
        result.failure_stage = error.stage_value
        if not self._config.enable_fallback_extraction:
            return None
        try:
            sentence = self._pipeline.annotate_shallow(text)
        except Exception:
            self._stats.increment("reliability.fallbacks.shallow_annotate_failed")
            return None
        result.degraded.append("annotate:shallow-annotation")
        self._stats.increment("reliability.fallbacks.shallow_annotate")
        return sentence

    def _try_boolean(self, sentence: Sentence, result: Answer) -> bool:
        """Guarded boolean-extension path; falls through on any failure."""
        try:
            if not self._boolean_handler.is_boolean_question(sentence):
                return False
            return self._answer_boolean(sentence, result)
        except Exception:
            self._stats.increment("reliability.failures.boolean_extension")
            result.boolean = None
            return False

    def _extract_stage(self, text, sentence, result, faults, shallow) -> bool:
        """Triple extraction with the keyword-pattern fallback ladder.

        Returns True when ``result.triples`` is usable.  The fallback runs
        only for *exceptional* failures (extractor raised, or annotation
        already degraded to a parse-less sentence) — an ordinary empty
        bucket stays the paper's "cannot process" refusal.
        """
        error: StageError | None = None
        try:
            if faults is not None and faults.check("extract", text):
                result.triples = []
            else:
                with self._stats.timer("extract"):
                    result.triples = self._extractor.extract(sentence)
        except StageError as stage_error:
            error = stage_error
        except Exception as unexpected:
            error = ExtractionError(f"{type(unexpected).__name__}: {unexpected}")

        if error is not None:
            self._stats.increment("reliability.failures.extract")
            self._trace_stage_failure(error)
            result.failure = error.describe()
            result.failure_stage = error.stage_value
            result.triples = []

        if result.triples:
            return True

        if self._config.enable_fallback_extraction and (error is not None or shallow):
            try:
                patterns = self._fallback_extractor.extract(sentence)
            except Exception:
                patterns = []
            if patterns:
                result.triples = patterns
                result.degraded.append("extract:keyword-patterns")
                self._stats.increment("reliability.fallbacks.keyword_extraction")
                result.failure = None
                result.failure_stage = None
                return True

        if result.failure is None:
            result.failure = "no triple patterns extracted (section 2.1 coverage)"
        return False

    def _map_stage(self, text, sentence, result, faults) -> list[CandidateTriple] | None:
        guard = self._config.stage_guard
        guarded = False
        try:
            if guard is not None:
                guard.enter("map")
                guarded = True
            if faults is not None and faults.check("map", text):
                mapped: list[CandidateTriple] = []
            else:
                with self._stats.timer("map"):
                    mapped = self._mapper.map(sentence, result.triples)
            if guarded:
                guard.exit("map", failed=False)
            return mapped
        except MappingFailure as failure:
            # The paper's expected refusal (Table 2 "cannot process"), not
            # a reliability fault: keep its established diagnostic (and do
            # not count it against the breaker — refusing is healthy).
            if guarded:
                guard.exit("map", failed=False)
            result.failure = f"mapping failed: {failure}"
            result.failure_stage = "map"
            return None
        except StageError as error:
            if guarded:
                guard.exit("map", failed=True)
            self._stats.increment("reliability.failures.map")
            self._trace_stage_failure(error)
            result.failure = error.describe()
            result.failure_stage = error.stage_value
            return None
        except Exception as unexpected:
            if guarded:
                guard.exit("map", failed=True)
            self._stats.increment("reliability.failures.map")
            error = MappingError(f"{type(unexpected).__name__}: {unexpected}")
            self._trace_stage_failure(error)
            result.failure = error.describe()
            result.failure_stage = error.stage_value
            return None

    def _generate_stage(self, text, mapped, result, faults, deadline) -> bool:
        try:
            if faults is not None and faults.check("generate", text):
                result.candidate_queries = []
            else:
                with self._stats.timer("generate"):
                    result.candidate_queries = self._generator.generate(
                        mapped, deadline=deadline
                    )
        except StageError as error:
            self._stats.increment("reliability.failures.generate")
            self._trace_stage_failure(error)
            result.failure = error.describe()
            result.failure_stage = error.stage_value
            return False
        except Exception as unexpected:
            self._stats.increment("reliability.failures.generate")
            error = QueryGenerationError(
                f"{type(unexpected).__name__}: {unexpected}"
            )
            self._trace_stage_failure(error)
            result.failure = error.describe()
            result.failure_stage = error.stage_value
            return False
        if not result.candidate_queries:
            result.failure = "no candidate queries generated"
            return False
        return True

    def _trace_stage_failure(self, error: StageError) -> None:
        """Stamp a taxonomy-typed failure event on the open stage span."""
        if self._tracer.active:
            name, attributes = error.trace_event()
            self._tracer.event(name, **attributes)

    def _attach_cache_deltas(self, span: Span, before: dict | None) -> None:
        """Instant sub-spans with per-stage cache hit/miss deltas.

        The mapping stage's caches (similarity memo, property-scan memo,
        property-score memo) are shared across questions and threads; the
        deltas are exact for a sequentially traced question and
        best-effort approximations while a concurrent batch is in flight.
        """
        if before is None:
            return
        after = self._mapper.cache_snapshot()
        for name, counters in after.items():
            baseline = before.get(name, {})
            span.child(
                f"cache.{name}",
                hits=counters.get("hits", 0) - baseline.get("hits", 0),
                misses=counters.get("misses", 0) - baseline.get("misses", 0),
            )

    def answer_many(
        self,
        questions: Sequence[str] | Iterable[str],
        max_workers: int | None = None,
    ) -> list[Answer]:
        """Answer a batch of questions concurrently.

        Results come back in input order and are exactly what sequential
        :meth:`answer` calls would produce — the pipeline is deterministic
        and its shared caches change only how fast answers are computed,
        never what they are.  The knowledge base must not be mutated while
        the batch is in flight.
        """
        return BatchAnswerer(self, max_workers=max_workers).answer_many(questions)

    # ------------------------------------------------------------------

    def _answer_boolean(self, sentence: Sentence, result: Answer) -> bool:
        """Extension path: try to settle a yes/no question via ASK.

        Returns True when a verdict was reached; False falls through to the
        ordinary pipeline (which will fail the question, preserving the
        faithful behaviour for unmappable predicates like "alive").
        """
        assert self._boolean_handler is not None
        bucket = self._boolean_handler.extract(sentence)
        if not bucket:
            return False
        result.triples = bucket
        candidates = self._boolean_handler.candidates(sentence, bucket)
        if not candidates:
            return False
        # Verdict comes from the best-ranked predicate only (both of its
        # orientations): checking lower-ranked predicates too would let
        # "Was X born in Y?" answer yes because X *died* in Y.
        best_predicate = candidates[0].triples[0].predicate
        result.boolean = any(
            self._kb.engine.query(candidate.to_ast()).value
            for candidate in candidates
            if candidate.triples[0].predicate == best_predicate
        )
        return True

    def _execute(
        self,
        result: Answer,
        deadline: Deadline | None = None,
        faults=None,
        text: str = "",
    ) -> StageError | None:
        """Run candidates best-first; keep the first productive one.
        Returns the first typed candidate error (``None`` on a clean run)
        so the serving layer's execute breaker can count backend failures.

        Early termination (section 2.3.1): candidate scores are sorted
        non-increasing, so the moment a candidate yields type-conforming
        answers no later candidate can displace it — the loop stops without
        touching the rest of the (already capped) list.

        Reliability: a candidate that raises (or draws an injected fault)
        is *skipped* — ranking continues over the survivors — and the first
        typed error is kept for the diagnostic if nothing answers.  The
        ``max_candidates`` cap and the wall-clock deadline both cut the
        loop short with an explicit truncation marker, never silently.
        """
        check_types = self._config.use_type_checking
        tracer = self._tracer
        outcomes = result.candidate_outcomes
        candidates = result.candidate_queries
        cap = self._config.max_candidates
        if cap is not None and len(candidates) > cap:
            self._stats.increment(
                "execute.candidates_truncated", len(candidates) - cap
            )
            result.truncated = True
            for index in range(cap, len(candidates)):
                outcomes.append((index, "budget-truncated", "max_candidates cap"))
            candidates = candidates[:cap]

        first_error: StageError | None = None
        executed = 0
        for index, candidate in enumerate(candidates):
            if deadline is not None and deadline.expired():
                self._stats.increment("execute.budget_exhausted")
                for remaining in range(index, len(candidates)):
                    outcomes.append(
                        (remaining, "budget-truncated", "stage budget expired")
                    )
                break
            executed += 1
            try:
                if faults is not None and faults.check("execute", text):
                    outcomes.append((index, "fault-injected", ""))
                    continue  # injected empty result set
                select = self._kb.engine.query(candidate.to_ast())
            except StageError as error:
                first_error = first_error or error
                self._stats.increment("execute.candidates_failed")
                outcomes.append((index, "error", error.describe()))
                continue
            except Exception as unexpected:
                first_error = first_error or ExecutionError(
                    f"{type(unexpected).__name__}: {unexpected}"
                )
                self._stats.increment("execute.candidates_failed")
                outcomes.append(
                    (index, "error", f"{type(unexpected).__name__}: {unexpected}")
                )
                continue
            answers = [term for term in select.column(Variable("x")) if term is not None]
            raw_count = len(answers)
            if check_types and answers:
                tspan = (
                    tracer.open_span(
                        "typecheck", candidate=index, raw_answers=raw_count
                    )
                    if tracer.active else None
                )
                try:
                    if faults is not None and faults.check("typecheck", text):
                        answers = []
                    else:
                        answers = [
                            term for term in answers
                            if answer_matches_type(
                                self._kb, term, result.expected_type
                            )
                        ]
                    if tspan is not None:
                        tspan.attributes["kept"] = len(answers)
                except StageError as error:
                    first_error = first_error or error
                    self._stats.increment("execute.candidates_failed")
                    outcomes.append((index, "error", error.describe()))
                    continue
                except Exception as unexpected:
                    first_error = first_error or TypeCheckError(
                        f"{type(unexpected).__name__}: {unexpected}"
                    )
                    self._stats.increment("execute.candidates_failed")
                    outcomes.append(
                        (index, "error", f"{type(unexpected).__name__}: {unexpected}")
                    )
                    continue
                finally:
                    if tspan is not None:
                        tracer.close_span(tspan)
            if answers:
                result.answers = answers
                result.query = candidate
                outcomes.append((index, "winner", ""))
                if tracer.active:
                    tracer.event(
                        "candidate",
                        index=index,
                        score=candidate.score,
                        outcome="winner",
                        answers=len(answers),
                    )
                self._stats.increment("execute.candidates_run", executed)
                self._stats.increment(
                    "execute.candidates_short_circuited",
                    len(candidates) - executed,
                )
                return first_error
            status = "type-filtered" if raw_count and not answers else "no-bindings"
            outcomes.append((index, status, ""))
            if tracer.active:
                tracer.event(
                    "candidate", index=index, score=candidate.score, outcome=status
                )
        self._stats.increment("execute.candidates_run", executed)
        if first_error is not None and result.failure is None:
            result.failure = first_error.describe()
            result.failure_stage = first_error.stage_value
        return first_error

    # -- serving-layer integration (repro.serve) -----------------------

    def install_stage_guard(self, guard) -> None:
        """Install a serving-layer stage guard (breakers + bulkheads).

        The guard's ``enter(stage)`` / ``exit(stage, failed)`` hooks wrap
        the annotate/map/execute stage boundaries (see
        :class:`repro.serve.guard.StageGuard`).  Pass ``None`` to remove.
        """
        self._config = self._config.with_stage_guard(guard)

    def export_warm_state(self) -> dict:
        """Picklable warm caches for :mod:`repro.serve.snapshot`.

        Bundles the SPARQL engine's warm state (result cache entries +
        plan-cache AST keys) with the mapper's similarity memos.  Compiled
        plans are never exported — they close over graph indexes — only
        their AST keys, which :meth:`restore_warm_state` recompiles.
        """
        return {
            "engine": self._kb.engine.export_warm_state(),
            "mapper": self._mapper.export_warm_memos(),
        }

    def restore_warm_state(self, state: dict) -> dict[str, int]:
        """Load :meth:`export_warm_state` output; returns restore counts.

        Raises ``ValueError`` when the engine state belongs to a different
        graph generation (the snapshot layer converts that into a typed
        :class:`repro.serve.SnapshotError`).
        """
        counts = self._kb.engine.import_warm_state(state["engine"])
        counts["mapper_memos"] = self._mapper.import_warm_memos(
            state.get("mapper", {})
        )
        return counts

    @property
    def kb(self) -> KnowledgeBase:
        return self._kb

    @property
    def config(self) -> PipelineConfig:
        return self._config

    @property
    def stats(self) -> PerfStats:
        """Per-stage timers and counters for this system instance."""
        return self._stats

    @property
    def tracer(self) -> "Tracer | object":
        """This system's tracer (:data:`NULL_TRACER` unless tracing is on)."""
        return self._tracer

    def metrics(self) -> dict:
        """The unified ``repro.metrics/v1`` document for this system.

        Merges (see ``docs/observability.md``): the pipeline stage timers
        (as ``stage.<name>.seconds`` histograms), every pipeline counter —
        including the whole ``reliability.*`` family — the SPARQL engine's
        counters and cache gauges, and the ``trace.*`` aggregates of every
        traced question.  Supersedes the deprecated :meth:`perf_report`.
        """
        registry = MetricsRegistry()
        registry.absorb_perf_stats(self._stats)
        registry.absorb_perf_stats(self._kb.engine.stats)
        registry.absorb_cache_stats(self._kb.engine.cache_stats())
        # Storage-backend counters (kb.segments.* for segment sets);
        # the in-memory backend keeps no PerfStats, so this is a no-op
        # on the default path.
        backend_perf = getattr(
            getattr(self._kb, "backend", None), "perf", None
        )
        if backend_perf is not None:
            registry.absorb_perf_stats(backend_perf)
        registry.merge(self._trace_metrics)
        return registry.snapshot()

    def perf_report(self) -> dict:
        """Deprecated: use :meth:`metrics` (one schema for perf +
        reliability + trace).  Returns the legacy ad-hoc shape unchanged."""
        warnings.warn(
            "QuestionAnsweringSystem.perf_report() is deprecated; use "
            "QuestionAnsweringSystem.metrics() for the unified "
            "repro.metrics/v1 document",
            DeprecationWarning,
            stacklevel=2,
        )
        report = self._stats.snapshot()
        report["sparql"] = self._kb.engine.cache_stats()
        report["sparql"]["engine_counters"] = self._kb.engine.stats.snapshot()["counters"]
        return report

"""The question-answering system facade (the paper's whole pipeline).

``answer()`` runs: annotate -> extract triple patterns (2.1) -> map slots
(2.2) -> generate candidate queries (2.3) -> execute against the KB ->
filter by expected answer type (2.3.2) -> return the answers of the
best-scoring productive query (2.3.1).

``answer_many()`` fans a batch of questions out over a thread pool against
the same (read-only) knowledge base; see :mod:`repro.perf.batch` for the
thread-safety contract and ``docs/performance.md`` for the cache layers
that make repeated runs cheap.  Every stage records wall time and counters
into :attr:`QuestionAnsweringSystem.stats`.

**Reliability contract** (``docs/reliability.md``): ``answer()`` never
raises.  Every stage boundary converts failures into a typed
:class:`repro.reliability.StageError` recorded on :attr:`Answer.failure`
(and :attr:`Answer.failure_stage`); annotation/extraction exceptions fall
back to the shallow keyword extractor before giving up; a candidate query
that errors or exceeds the stage budget is skipped and ranking continues
over the survivors.  Budgets (``PipelineConfig.max_candidates`` /
``stage_budget_ms``) are never silent: hitting one sets
:attr:`Answer.truncated` and a counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.config import PipelineConfig
from repro.core.extraction import TripleExtractor
from repro.core.mapping import CandidateTriple, MappingFailure, TripleMapper
from repro.core.querygen import CandidateQuery, QueryGenerator
from repro.core.triples import TriplePattern
from repro.core.typecheck import ExpectedType, answer_matches_type, expected_answer_type
from repro.kb.builder import KnowledgeBase
from repro.nlp.dependencies import DependencyGraph
from repro.nlp.pipeline import Pipeline, Sentence
from repro.patty.store import PatternStore, build_pattern_store
from repro.reliability.budgets import Deadline
from repro.reliability.errors import (
    AnnotationError,
    ExecutionError,
    ExtractionError,
    MappingError,
    QueryGenerationError,
    StageError,
    TypeCheckError,
)
from repro.perf.batch import BatchAnswerer
from repro.perf.stats import PerfStats
from repro.rdf.terms import Term, Variable
from repro.wordnet.adjectives import AdjectivePropertyMap, build_adjective_map
from repro.wordnet.database import build_wordnet
from repro.wordnet.pairs import SimilarPropertyIndex, build_similar_property_pairs


@dataclass
class Answer:
    """Everything the pipeline produced for one question."""

    question: str
    answers: list[Term] = field(default_factory=list)
    query: CandidateQuery | None = None
    expected_type: ExpectedType = ExpectedType.ANY
    triples: list[TriplePattern] = field(default_factory=list)
    candidate_queries: list[CandidateQuery] = field(default_factory=list)
    failure: str | None = None
    #: Yes/no verdict, only set by the boolean-questions extension.
    boolean: bool | None = None
    #: Imperative rewrite applied before answering, when the extension ran.
    rewritten_question: str | None = None
    #: Pipeline stage the failure is attributed to (a
    #: :class:`repro.reliability.Stage` value, or "internal" for the
    #: never-raise last resort), when :attr:`failure` came from a typed
    #: :class:`repro.reliability.StageError`.
    failure_stage: str | None = None
    #: Fallbacks applied while answering, in order (e.g.
    #: "annotate:shallow-annotation", "extract:keyword-patterns").  A
    #: non-empty list means the answer was produced in degraded mode.
    degraded: list[str] = field(default_factory=list)
    #: True when a budget (candidate cap or stage wall-clock budget) cut
    #: work short — the explicit "truncated" marker; never silent.
    truncated: bool = False

    @property
    def answered(self) -> bool:
        return bool(self.answers) or self.boolean is not None

    @property
    def top(self) -> Term | None:
        """The single top-ranked answer (what the paper reports to users)."""
        return self.answers[0] if self.answers else None

    def explain(self) -> str:
        """Human-readable trace of what the pipeline did for this question.

        One line per stage: rewrite, extracted patterns, candidate-query
        count, the winning query, the expected-type filter, and the final
        verdict.  Used by ``python -m repro ask --verbose``.
        """
        lines = [f"question: {self.question}"]
        if self.rewritten_question is not None:
            lines.append(f"rewritten (imperative extension): {self.rewritten_question}")
        for fallback in self.degraded:
            lines.append(f"degraded (reliability fallback): {fallback}")
        if self.truncated:
            lines.append("truncated: candidate budget exhausted before completion")
        if self.triples:
            lines.append("triple patterns (section 2.1):")
            for pattern in self.triples:
                lines.append(f"  {pattern}")
        else:
            lines.append("triple patterns (section 2.1): none extracted")
        if self.candidate_queries:
            lines.append(
                f"candidate queries (section 2.3): {len(self.candidate_queries)}"
            )
        if self.expected_type is not ExpectedType.ANY:
            lines.append(f"expected answer type (Table 1): {self.expected_type.value}")
        if self.query is not None:
            lines.append("winning query:")
            for line in self.query.to_sparql().splitlines():
                lines.append(f"  {line}")
        if self.boolean is not None:
            lines.append(f"verdict: {'yes' if self.boolean else 'no'} (ASK extension)")
        elif self.answered:
            lines.append(f"answers: {len(self.answers)}")
        else:
            lines.append(f"unanswered: {self.failure}")
        return "\n".join(lines)


class QuestionAnsweringSystem:
    """End-to-end natural-language question answering over the KB."""

    def __init__(
        self,
        kb: KnowledgeBase,
        pattern_store: PatternStore,
        similar_pairs: SimilarPropertyIndex,
        adjective_map: AdjectivePropertyMap,
        config: PipelineConfig | None = None,
        data_pattern_store: PatternStore | None = None,
    ) -> None:
        self._kb = kb
        self._config = config if config is not None else PipelineConfig()
        self._stats = PerfStats()
        self._pipeline = Pipeline(
            kb.surface_index,
            cache_size=1024 if self._config.enable_annotation_cache else 0,
        )
        self._extractor = TripleExtractor()
        self._mapper = TripleMapper(
            kb, pattern_store, similar_pairs, adjective_map, self._config,
            data_pattern_store=data_pattern_store,
            stats=self._stats,
        )
        self._generator = QueryGenerator(self._config, stats=self._stats)
        # Imported lazily: repro.reliability.fallback itself imports
        # repro.core.triples, so a module-level import would cycle when
        # repro.reliability is imported before repro.core.
        from repro.reliability.fallback import KeywordPatternExtractor

        self._fallback_extractor = KeywordPatternExtractor()
        self._boolean_handler = None
        if self._config.enable_boolean_questions:
            from repro.extensions.booleans import BooleanQuestionHandler

            self._boolean_handler = BooleanQuestionHandler(self._mapper)

    @classmethod
    def over(
        cls, kb: KnowledgeBase, config: PipelineConfig | None = None
    ) -> "QuestionAnsweringSystem":
        """Build the system with all resources mined/derived from the KB:
        the PATTY pattern store, WordNet property pairs and adjective map
        (plus the data-property pattern store when that extension is on)."""
        config = config if config is not None else PipelineConfig()
        wordnet = build_wordnet()
        data_pattern_store = None
        if config.enable_data_property_patterns:
            from repro.extensions.datapatterns import build_data_pattern_store

            data_pattern_store = build_data_pattern_store(kb)
        return cls(
            kb,
            pattern_store=build_pattern_store(kb),
            similar_pairs=build_similar_property_pairs(kb.ontology, wordnet),
            adjective_map=build_adjective_map(kb.ontology, wordnet),
            config=config,
            data_pattern_store=data_pattern_store,
        )

    # ------------------------------------------------------------------

    def answer(self, question: str) -> Answer:
        """Answer one natural-language question.

        Never raises: any failure inside a stage is converted at the stage
        boundary into a typed diagnostic on :attr:`Answer.failure` (see the
        module docstring for the full reliability contract).
        """
        try:
            return self._answer_guarded(question)
        except Exception as error:  # last resort: the contract is absolute
            self._stats.increment("reliability.unexpected_errors")
            return Answer(
                question=question,
                failure=f"InternalError: unhandled {type(error).__name__}: {error}",
                failure_stage="internal",
            )

    def _answer_guarded(self, question: str) -> Answer:
        text = question
        rewritten: str | None = None
        if self._config.enable_imperatives:
            from repro.extensions.imperatives import normalize_imperative

            try:
                rewritten = normalize_imperative(question)
            except Exception:
                self._stats.increment("reliability.failures.imperative_rewrite")
                rewritten = None
            if rewritten is not None:
                text = rewritten

        faults = self._config.fault_injector
        deadline = Deadline.from_millis(self._config.stage_budget_ms)
        result = Answer(question=question, rewritten_question=rewritten)

        # -- annotate --------------------------------------------------
        sentence = self._annotate_stage(text, result, faults)
        if sentence is None:
            return result
        shallow = sentence.graph.template == "shallow-fallback"

        try:
            result.expected_type = expected_answer_type(sentence)
        except Exception:
            self._stats.increment("reliability.failures.expected_type")

        if (
            self._boolean_handler is not None
            and not shallow
            and self._try_boolean(sentence, result)
        ):
            return result

        # -- extract ---------------------------------------------------
        if not self._extract_stage(text, sentence, result, faults, shallow):
            return result

        # -- map -------------------------------------------------------
        mapped = self._map_stage(text, sentence, result, faults)
        if mapped is None:
            return result

        # -- generate --------------------------------------------------
        if not self._generate_stage(text, mapped, result, faults, deadline):
            return result

        # -- execute ---------------------------------------------------
        with self._stats.timer("execute"):
            self._execute(result, deadline=deadline, faults=faults, text=text)
        if deadline.tripped:
            result.truncated = True
            self._stats.increment("reliability.budget_exhausted")
        if not result.answered and result.failure is None:
            if result.truncated:
                result.failure = (
                    "candidate budget exhausted before a productive query"
                )
            else:
                result.failure = (
                    "no candidate query produced type-conforming answers"
                )
        return result

    # -- stage boundaries (each converts failures to typed diagnostics) --

    def _annotate_stage(self, text, result, faults) -> Sentence | None:
        """Full annotation, degrading to shallow annotation on failure."""
        error: StageError | None = None
        try:
            if faults is not None and faults.check("annotate", text):
                # Injected empty result: an empty sentence, which the
                # extractor treats as the paper's "cannot process" case.
                return Sentence(
                    text=text, tokens=[], graph=DependencyGraph([], root=None)
                )
            with self._stats.timer("annotate"):
                return self._pipeline.annotate(text)
        except StageError as stage_error:
            error = stage_error
        except Exception as unexpected:
            error = AnnotationError(f"{type(unexpected).__name__}: {unexpected}")

        self._stats.increment("reliability.failures.annotate")
        result.failure = error.describe()
        result.failure_stage = error.stage.value
        if not self._config.enable_fallback_extraction:
            return None
        try:
            sentence = self._pipeline.annotate_shallow(text)
        except Exception:
            self._stats.increment("reliability.fallbacks.shallow_annotate_failed")
            return None
        result.degraded.append("annotate:shallow-annotation")
        self._stats.increment("reliability.fallbacks.shallow_annotate")
        return sentence

    def _try_boolean(self, sentence: Sentence, result: Answer) -> bool:
        """Guarded boolean-extension path; falls through on any failure."""
        try:
            if not self._boolean_handler.is_boolean_question(sentence):
                return False
            return self._answer_boolean(sentence, result)
        except Exception:
            self._stats.increment("reliability.failures.boolean_extension")
            result.boolean = None
            return False

    def _extract_stage(self, text, sentence, result, faults, shallow) -> bool:
        """Triple extraction with the keyword-pattern fallback ladder.

        Returns True when ``result.triples`` is usable.  The fallback runs
        only for *exceptional* failures (extractor raised, or annotation
        already degraded to a parse-less sentence) — an ordinary empty
        bucket stays the paper's "cannot process" refusal.
        """
        error: StageError | None = None
        try:
            if faults is not None and faults.check("extract", text):
                result.triples = []
            else:
                with self._stats.timer("extract"):
                    result.triples = self._extractor.extract(sentence)
        except StageError as stage_error:
            error = stage_error
        except Exception as unexpected:
            error = ExtractionError(f"{type(unexpected).__name__}: {unexpected}")

        if error is not None:
            self._stats.increment("reliability.failures.extract")
            result.failure = error.describe()
            result.failure_stage = error.stage.value
            result.triples = []

        if result.triples:
            return True

        if self._config.enable_fallback_extraction and (error is not None or shallow):
            try:
                patterns = self._fallback_extractor.extract(sentence)
            except Exception:
                patterns = []
            if patterns:
                result.triples = patterns
                result.degraded.append("extract:keyword-patterns")
                self._stats.increment("reliability.fallbacks.keyword_extraction")
                result.failure = None
                result.failure_stage = None
                return True

        if result.failure is None:
            result.failure = "no triple patterns extracted (section 2.1 coverage)"
        return False

    def _map_stage(self, text, sentence, result, faults) -> list[CandidateTriple] | None:
        try:
            if faults is not None and faults.check("map", text):
                return []
            with self._stats.timer("map"):
                return self._mapper.map(sentence, result.triples)
        except MappingFailure as failure:
            # The paper's expected refusal (Table 2 "cannot process"), not
            # a reliability fault: keep its established diagnostic.
            result.failure = f"mapping failed: {failure}"
            result.failure_stage = "map"
            return None
        except StageError as error:
            self._stats.increment("reliability.failures.map")
            result.failure = error.describe()
            result.failure_stage = error.stage.value
            return None
        except Exception as unexpected:
            self._stats.increment("reliability.failures.map")
            error = MappingError(f"{type(unexpected).__name__}: {unexpected}")
            result.failure = error.describe()
            result.failure_stage = error.stage.value
            return None

    def _generate_stage(self, text, mapped, result, faults, deadline) -> bool:
        try:
            if faults is not None and faults.check("generate", text):
                result.candidate_queries = []
            else:
                with self._stats.timer("generate"):
                    result.candidate_queries = self._generator.generate(
                        mapped, deadline=deadline
                    )
        except StageError as error:
            self._stats.increment("reliability.failures.generate")
            result.failure = error.describe()
            result.failure_stage = error.stage.value
            return False
        except Exception as unexpected:
            self._stats.increment("reliability.failures.generate")
            error = QueryGenerationError(
                f"{type(unexpected).__name__}: {unexpected}"
            )
            result.failure = error.describe()
            result.failure_stage = error.stage.value
            return False
        if not result.candidate_queries:
            result.failure = "no candidate queries generated"
            return False
        return True

    def answer_many(
        self,
        questions: Sequence[str] | Iterable[str],
        max_workers: int | None = None,
    ) -> list[Answer]:
        """Answer a batch of questions concurrently.

        Results come back in input order and are exactly what sequential
        :meth:`answer` calls would produce — the pipeline is deterministic
        and its shared caches change only how fast answers are computed,
        never what they are.  The knowledge base must not be mutated while
        the batch is in flight.
        """
        return BatchAnswerer(self, max_workers=max_workers).answer_many(questions)

    # ------------------------------------------------------------------

    def _answer_boolean(self, sentence: Sentence, result: Answer) -> bool:
        """Extension path: try to settle a yes/no question via ASK.

        Returns True when a verdict was reached; False falls through to the
        ordinary pipeline (which will fail the question, preserving the
        faithful behaviour for unmappable predicates like "alive").
        """
        assert self._boolean_handler is not None
        bucket = self._boolean_handler.extract(sentence)
        if not bucket:
            return False
        result.triples = bucket
        candidates = self._boolean_handler.candidates(sentence, bucket)
        if not candidates:
            return False
        # Verdict comes from the best-ranked predicate only (both of its
        # orientations): checking lower-ranked predicates too would let
        # "Was X born in Y?" answer yes because X *died* in Y.
        best_predicate = candidates[0].triples[0].predicate
        result.boolean = any(
            self._kb.engine.query(candidate.to_ast()).value
            for candidate in candidates
            if candidate.triples[0].predicate == best_predicate
        )
        return True

    def _execute(
        self,
        result: Answer,
        deadline: Deadline | None = None,
        faults=None,
        text: str = "",
    ) -> None:
        """Run candidates best-first; keep the first productive one.

        Early termination (section 2.3.1): candidate scores are sorted
        non-increasing, so the moment a candidate yields type-conforming
        answers no later candidate can displace it — the loop stops without
        touching the rest of the (already capped) list.

        Reliability: a candidate that raises (or draws an injected fault)
        is *skipped* — ranking continues over the survivors — and the first
        typed error is kept for the diagnostic if nothing answers.  The
        ``max_candidates`` cap and the wall-clock deadline both cut the
        loop short with an explicit truncation marker, never silently.
        """
        check_types = self._config.use_type_checking
        candidates = result.candidate_queries
        cap = self._config.max_candidates
        if cap is not None and len(candidates) > cap:
            self._stats.increment(
                "execute.candidates_truncated", len(candidates) - cap
            )
            result.truncated = True
            candidates = candidates[:cap]

        first_error: StageError | None = None
        executed = 0
        for candidate in candidates:
            if deadline is not None and deadline.expired():
                self._stats.increment("execute.budget_exhausted")
                break
            executed += 1
            try:
                if faults is not None and faults.check("execute", text):
                    continue  # injected empty result set
                select = self._kb.engine.query(candidate.to_ast())
            except StageError as error:
                first_error = first_error or error
                self._stats.increment("execute.candidates_failed")
                continue
            except Exception as unexpected:
                first_error = first_error or ExecutionError(
                    f"{type(unexpected).__name__}: {unexpected}"
                )
                self._stats.increment("execute.candidates_failed")
                continue
            answers = [term for term in select.column(Variable("x")) if term is not None]
            if check_types and answers:
                try:
                    if faults is not None and faults.check("typecheck", text):
                        answers = []
                    else:
                        answers = [
                            term for term in answers
                            if answer_matches_type(self._kb, term, result.expected_type)
                        ]
                except StageError as error:
                    first_error = first_error or error
                    self._stats.increment("execute.candidates_failed")
                    continue
                except Exception as unexpected:
                    first_error = first_error or TypeCheckError(
                        f"{type(unexpected).__name__}: {unexpected}"
                    )
                    self._stats.increment("execute.candidates_failed")
                    continue
            if answers:
                result.answers = answers
                result.query = candidate
                self._stats.increment("execute.candidates_run", executed)
                self._stats.increment(
                    "execute.candidates_short_circuited",
                    len(candidates) - executed,
                )
                return
        self._stats.increment("execute.candidates_run", executed)
        if first_error is not None and result.failure is None:
            result.failure = first_error.describe()
            result.failure_stage = first_error.stage.value

    @property
    def kb(self) -> KnowledgeBase:
        return self._kb

    @property
    def config(self) -> PipelineConfig:
        return self._config

    @property
    def stats(self) -> PerfStats:
        """Per-stage timers and counters for this system instance."""
        return self._stats

    def perf_report(self) -> dict:
        """Stage timings, pipeline counters and engine cache statistics."""
        report = self._stats.snapshot()
        report["sparql"] = self._kb.engine.cache_stats()
        report["sparql"]["engine_counters"] = self._kb.engine.stats.snapshot()["counters"]
        return report

"""Entity and property extraction (section 2.2).

For every triple pattern from section 2.1, each slot is mapped to DBpedia
vocabulary:

* **named entities** (2.2.5) through the page-link disambiguator;
* **classes** (2.2.4) through ontology labels, for ``rdf:type`` objects;
* **verb predicates** (2.2.1) through string similarity over object
  properties, expanded with WordNet-similar property pairs;
* **noun/adjective predicates** (2.2.2) through string similarity over
  property labels and the WordNet adjective map;
* **any predicate** (2.2.3) through the PATTY pattern store, ranked by
  pattern frequency.

Candidate weights feed the ranking of section 2.3.1: pattern candidates
carry their corpus frequency, similarity candidates their score in [0, 1]
(the paper leaves the weight of non-pattern candidates unspecified; scores
are only ever compared within one question, so the mixed scale is safe and
pattern evidence deliberately dominates).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import PipelineConfig
from repro.core.triples import Slot, SlotKind, TriplePattern
from repro.kb.builder import KnowledgeBase
from repro.kb.ontology import PropertyDef, PropertyKind
from repro.ned.disambiguator import Disambiguator
from repro.nlp.pipeline import Sentence
from repro.obs.trace import NULL_TRACER
from repro.patty.store import PatternStore
from repro.perf.lru import LRUCache
from repro.perf.stats import PerfStats
from repro.similarity.cache import MemoizedSimilarity
from repro.similarity.lcs import char_profile, subsequence_upper_bound
from repro.rdf.namespaces import RDF
from repro.rdf.terms import IRI, Term, Variable
from repro.similarity import get_similarity, memoize_similarity
from repro.wordnet.adjectives import AdjectivePropertyMap
from repro.wordnet.pairs import SimilarPropertyIndex


@dataclass(frozen=True)
class PredicateCandidate:
    """One possible predicate IRI with its evidence."""

    iri: IRI
    kind: PropertyKind | None  # None for rdf:type
    weight: float
    source: str  # "pattern" | "similarity" | "wordnet" | "adjective" | "rdf:type"


@dataclass
class CandidateTriple:
    """A triple pattern with per-slot candidate lists."""

    pattern: TriplePattern
    subjects: list[Term] = field(default_factory=list)
    predicates: list[PredicateCandidate] = field(default_factory=list)
    objects: list[Term] = field(default_factory=list)

    @property
    def mapped(self) -> bool:
        return bool(self.subjects and self.predicates and self.objects)


class MappingFailure(Exception):
    """A slot could not be mapped; the question is unanswerable (the
    'cannot process' bucket of Table 2)."""

    def __init__(self, pattern: TriplePattern, slot_name: str) -> None:
        super().__init__(f"cannot map {slot_name} of {pattern}")
        self.pattern = pattern
        self.slot_name = slot_name


class _ScanIndex:
    """Length/first-character-bucketed catalogue labels for pruned scans.

    The vocabulary scan of 2.2.1/2.2.2 scores a question word against every
    property's name and label words.  Under the default LCS metric most of
    those pairs cannot reach the acceptance threshold on length grounds
    alone: ``subsequence_similarity`` divides by the longer string, so a
    label of length ``L`` can only match a word of length ``n`` at
    threshold ``t`` when ``t*n <= L <= n/t``.  This index buckets every
    catalogue label word by ``(length, first character)`` at construction;
    a scan then

    1. visits only the length buckets inside the feasible window,
    2. rejects a whole first-character group when the character is absent
       from the question word *and* losing that one character already puts
       the bound below the threshold (boundary lengths of the window),
    3. applies the O(alphabet) :func:`~repro.similarity.lcs.subsequence_upper_bound`
       per surviving label before the scorer's O(n*L) DP runs.

    All three steps are sound over-approximations — a property is skipped
    only when *no* label word of it can reach the threshold — so the pruned
    scan returns exactly the candidate set of the full scan.
    """

    def __init__(self, properties: list[PropertyDef]) -> None:
        # length -> first char -> list of (profile, property name)
        self._buckets: dict[int, dict[str, list[tuple[dict[str, int], str]]]] = {}
        for prop in properties:
            for word in {prop.name, *prop.display_label().split()}:
                normalized = word.strip().lower()
                if not normalized:
                    continue
                by_first = self._buckets.setdefault(len(normalized), {})
                by_first.setdefault(normalized[0], []).append(
                    (char_profile(normalized), prop.name)
                )

    def feasible_names(self, word: str, threshold: float) -> set[str] | None:
        """Property names that might reach ``threshold`` against ``word``.

        Returns None (meaning "scan everything") when the threshold does
        not permit pruning.
        """
        normalized = word.strip().lower()
        length = len(normalized)
        if length == 0 or threshold <= 0.0:
            return None
        profile = char_profile(normalized)
        feasible: set[str] = set()
        for label_length, by_first in self._buckets.items():
            longer = max(length, label_length)
            if min(length, label_length) / longer < threshold:
                continue
            for first, entries in by_first.items():
                if first not in profile and min(length, label_length - 1) / longer < threshold:
                    continue
                for label_profile, name in entries:
                    if name in feasible:
                        continue
                    bound = subsequence_upper_bound(
                        profile, length, label_profile, label_length
                    )
                    if bound >= threshold:
                        feasible.add(name)
        return feasible


class TripleMapper:
    """Maps triple-pattern slots onto the knowledge-base vocabulary."""

    def __init__(
        self,
        kb: KnowledgeBase,
        pattern_store: PatternStore,
        similar_pairs: SimilarPropertyIndex,
        adjective_map: AdjectivePropertyMap,
        config: PipelineConfig | None = None,
        data_pattern_store: PatternStore | None = None,
        stats: PerfStats | None = None,
        tracer=None,
    ) -> None:
        self._kb = kb
        self._patterns = pattern_store
        self._pairs = similar_pairs
        self._adjectives = adjective_map
        self._config = config if config is not None else PipelineConfig()
        self._stats = stats
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._similarity = get_similarity(self._config.similarity)
        if self._config.enable_similarity_cache:
            # Shared across questions (and across the NED below): scores are
            # pure string functions, so entries never go stale.
            self._similarity = memoize_similarity(
                self._similarity, stats=stats, name="similarity"
            )
        self._ned = Disambiguator(kb, similarity=self._similarity)
        #: Memo for the per-(word, property) best-of-label-words score of
        #: :meth:`_property_similarity` — the hot inner loop of 2.2.1/2.2.2.
        self._property_scores = LRUCache(65536)
        #: Memo for the full similarity scan over the property catalogue:
        #: (word, is_verb) -> tuple of above-threshold candidates.  The
        #: catalogue and threshold are fixed per mapper, so the scan is a
        #: pure function of its key.
        self._scan_cache = LRUCache(8192)
        #: Memo for WordNet similar-pair expansions (2.2.1), keyed on the
        #: property local name; the index is immutable after construction.
        self._similar_names: dict[str, tuple[str, ...]] = {}
        #: Length/first-char-bucketed label indexes for the pruned scan,
        #: built lazily per catalogue flavour (verb -> object properties
        #: only).  Sound only for the default LCS metric — the bound in
        #: :class:`_ScanIndex` is specific to subsequence similarity — so
        #: ablation configs with other metrics keep the full scan.
        self._scan_indexes: dict[bool, _ScanIndex] = {}
        self._prune_scans = (
            self._config.enable_scan_pruning
            and self._config.similarity == "lcs"
        )
        #: Optional extension resource (section 5 research gap): patterns
        #: for data properties, consulted only when the config enables it.
        self._data_patterns = data_pattern_store

    # ------------------------------------------------------------------

    def map(self, sentence: Sentence, bucket: list[TriplePattern]) -> list[CandidateTriple]:
        """Map every pattern; raises :class:`MappingFailure` when a slot
        has no candidates."""
        entity_bindings = self._disambiguate_entities(sentence, bucket)
        mapped: list[CandidateTriple] = []
        for pattern in bucket:
            candidate = CandidateTriple(pattern)
            candidate.subjects = self._map_argument(
                pattern, pattern.subject, "subject", entity_bindings
            )
            candidate.objects = self._map_argument(
                pattern, pattern.object, "object", entity_bindings
            )
            candidate.predicates = self._map_predicate(pattern)
            mapped.append(candidate)
        return mapped

    def cache_snapshot(self) -> dict[str, dict]:
        """Hit/miss counters of the mapping-stage caches.

        The tracer diffs two snapshots around the map stage to attach
        per-question cache sub-spans (docs/observability.md); each entry
        carries at least ``hits`` and ``misses``.
        """
        snapshot: dict[str, dict] = {
            "mapping.scan_cache": self._scan_cache.stats(),
            "mapping.property_scores": self._property_scores.stats(),
        }
        if isinstance(self._similarity, MemoizedSimilarity):
            snapshot["similarity.memo"] = self._similarity.snapshot()
        return snapshot

    def export_warm_memos(self) -> dict:
        """Picklable similarity memo contents for crash-safe restarts.

        Only the pure-string memos travel: ``(a, b) -> score`` from the
        similarity memo and ``(word, property) -> score`` from the
        per-property memo.  The scan cache holds catalogue-derived objects
        and is cheap to re-earn, so it stays behind.
        """
        memos: dict[str, list] = {"property_scores": self._property_scores.items()}
        if isinstance(self._similarity, MemoizedSimilarity):
            memos["similarity"] = self._similarity.cache.items()
        return memos

    def import_warm_memos(self, memos: dict) -> int:
        """Restore :meth:`export_warm_memos` output; returns entries loaded."""
        restored = 0
        for key, score in memos.get("property_scores", ()):
            self._property_scores.put(key, score)
            restored += 1
        if isinstance(self._similarity, MemoizedSimilarity):
            for key, score in memos.get("similarity", ()):
                self._similarity.cache.put(key, score)
                restored += 1
        return restored

    # ------------------------------------------------------------------
    # Arguments (2.2.4 / 2.2.5)
    # ------------------------------------------------------------------

    def _disambiguate_entities(
        self, sentence: Sentence, bucket: list[TriplePattern]
    ) -> dict[str, IRI]:
        """Jointly disambiguate all entity mentions of the question."""
        mentions: list[tuple[str, list[IRI]]] = []
        seen: set[str] = set()
        for pattern in bucket:
            for slot in (pattern.subject, pattern.object):
                if slot.kind is not SlotKind.ENTITY or slot.text in seen:
                    continue
                seen.add(slot.text)
                mention = (
                    sentence.mention_at(slot.token.index)
                    if slot.token is not None else None
                )
                candidates = (
                    mention.candidates if mention is not None
                    else self._kb.surface_index.candidates(slot.text)
                )
                if candidates:
                    mentions.append((slot.text, candidates))
        results = self._ned.disambiguate(mentions)
        return {result.surface: result.entity for result in results}

    def _map_argument(
        self,
        pattern: TriplePattern,
        slot: Slot,
        slot_name: str,
        entity_bindings: dict[str, IRI],
    ) -> list[Term]:
        if slot.is_variable:
            return [Variable("x")]
        if slot.kind is SlotKind.ENTITY:
            entity = entity_bindings.get(slot.text)
            if entity is None:
                raise MappingFailure(pattern, slot_name)
            return [entity]
        if pattern.predicate.kind is SlotKind.RDF_TYPE and slot_name == "object":
            classes = self._kb.classes_for_label(slot.text)
            if not classes:
                raise MappingFailure(pattern, slot_name)
            return list(classes)
        # A plain text argument: last chance through the surface index
        # (lower-case mentions the chunker did not merge).
        candidates = self._kb.surface_index.candidates(slot.text)
        if candidates:
            return candidates[:1]
        raise MappingFailure(pattern, slot_name)

    # ------------------------------------------------------------------
    # Predicates (2.2.1 / 2.2.2 / 2.2.3)
    # ------------------------------------------------------------------

    def _map_predicate(self, pattern: TriplePattern) -> list[PredicateCandidate]:
        slot = pattern.predicate
        if slot.kind is SlotKind.RDF_TYPE:
            return [PredicateCandidate(RDF.type, None, 1.0, "rdf:type")]

        token = slot.token
        word = slot.text.lower()
        is_verb = token is not None and token.is_verb()
        is_adjective = token is not None and token.is_adjective()

        candidates: dict[IRI, PredicateCandidate] = {}

        def offer(candidate: PredicateCandidate) -> None:
            existing = candidates.get(candidate.iri)
            if existing is None or candidate.weight > existing.weight:
                candidates[candidate.iri] = candidate

        # 2.2.3 — relational patterns, any predicate kind.
        if self._config.use_patterns:
            for name, frequency in self._patterns.properties_for(word):
                prop = self._kb.ontology.get_property(name)
                offer(PredicateCandidate(prop.iri, prop.kind, float(frequency), "pattern"))

        # Extension (section 5 research gap): data-property patterns.
        if (
            self._config.enable_data_property_patterns
            and self._data_patterns is not None
        ):
            for name, frequency in self._data_patterns.properties_for(word):
                prop = self._kb.ontology.get_property(name)
                offer(PredicateCandidate(
                    prop.iri, prop.kind, float(frequency), "data-pattern"
                ))

        # 2.2.1 / 2.2.2 — string similarity against the property catalogue.
        # Verbs target object properties, nouns and adjectives any property
        # (the paper sends nouns to data properties; role nouns like
        # "mayor" additionally match object properties by name).
        for candidate in self._similarity_candidates(word, is_verb):
            offer(candidate)

        # 2.2.2 — the WordNet adjective map.
        if self._config.use_adjective_map and (is_adjective or not is_verb):
            for name in self._adjectives.properties_for(word):
                prop = self._kb.ontology.get_property(name)
                offer(PredicateCandidate(prop.iri, prop.kind, 1.0, "adjective"))

        # 2.2.1 — WordNet-similar property expansion.
        if self._config.use_wordnet_pairs:
            for existing in list(candidates.values()):
                if existing.kind is not PropertyKind.OBJECT:
                    continue
                for similar_name in self._similar_to(existing.iri.local_name):
                    prop = self._kb.ontology.get_property(similar_name)
                    offer(PredicateCandidate(
                        prop.iri,
                        prop.kind,
                        existing.weight * self._config.wordnet_expansion_discount,
                        "wordnet",
                    ))

        if not candidates:
            raise MappingFailure(pattern, "predicate")
        ranked = sorted(candidates.values(), key=lambda c: (-c.weight, c.iri.value))
        kept = ranked[: self._config.max_predicate_candidates]
        if self._tracer.active:
            # Chosen-vs-rejected rationale for the explain tree: which IRIs
            # survived the per-slot cap, with their scores and evidence.
            self._tracer.event(
                "predicate-candidates",
                predicate=slot.text,
                chosen=[
                    (c.iri.local_name, round(c.weight, 6), c.source) for c in kept
                ],
                rejected=[
                    (c.iri.local_name, round(c.weight, 6), c.source)
                    for c in ranked[len(kept):len(kept) + 10]
                ],
                rejected_total=max(0, len(ranked) - len(kept)),
            )
        return kept

    def _similarity_candidates(
        self, word: str, is_verb: bool
    ) -> tuple[PredicateCandidate, ...]:
        """Above-threshold similarity candidates for one predicate word.

        Scanning the whole property catalogue per question is the mapping
        stage's hot loop; question words repeat heavily across a batch, so
        the scan result is memoized (candidates are frozen dataclasses and
        safe to share).  With the cache disabled this is exactly the seed's
        per-question scan.
        """
        use_cache = self._config.enable_similarity_cache
        key = (word, is_verb)
        if use_cache:
            cached = self._scan_cache.get(key)
            if cached is not None:
                if self._stats is not None:
                    self._stats.increment("mapping.scan_cache.hits")
                return cached
        searchable = list(
            self._kb.ontology.object_properties()
            if is_verb else self._kb.ontology.properties()
        )
        threshold = self._config.similarity_threshold
        if self._prune_scans:
            index = self._scan_indexes.get(is_verb)
            if index is None:
                index = self._scan_indexes[is_verb] = _ScanIndex(searchable)
            feasible = index.feasible_names(word, threshold)
            if feasible is not None:
                # Filtering (not replacing) ``searchable`` preserves the
                # full scan's catalogue order exactly.
                pool = [prop for prop in searchable if prop.name in feasible]
                if self._stats is not None:
                    self._stats.increment(
                        "mapping.scan_pruned", len(searchable) - len(pool)
                    )
                searchable = pool
        found = tuple(
            PredicateCandidate(prop.iri, prop.kind, score, "similarity")
            for prop in searchable
            if (score := self._property_similarity(word, prop)) >= threshold
        )
        if use_cache:
            self._scan_cache.put(key, found)
            if self._stats is not None:
                self._stats.increment("mapping.scan_cache.misses")
        return found

    def _similar_to(self, name: str) -> tuple[str, ...]:
        """WordNet-similar property names, memoized across questions.

        ``SimilarPropertyIndex.similar_to`` builds a fresh set per call;
        the underlying index never changes after construction, so the
        sorted tuple is cached forever.  Sorting pins the candidate-offer
        order (and therefore tie-breaking) regardless of set iteration
        order.
        """
        cached = self._similar_names.get(name)
        if cached is None:
            cached = self._similar_names[name] = tuple(
                sorted(self._pairs.similar_to(name))
            )
        return cached

    def _property_similarity(self, word: str, prop: PropertyDef) -> float:
        """Best similarity between the word and the property's name or any
        word of its decamelised label."""
        if not self._config.enable_similarity_cache:
            return self._property_similarity_uncached(word, prop)
        key = (word, prop.name)
        score = self._property_scores.get(key)
        if score is None:
            score = self._property_similarity_uncached(word, prop)
            self._property_scores.put(key, score)
            if self._stats is not None:
                self._stats.increment("mapping.property_scores.misses")
        elif self._stats is not None:
            self._stats.increment("mapping.property_scores.hits")
        return score

    def _property_similarity_uncached(self, word: str, prop: PropertyDef) -> float:
        best = self._similarity(word, prop.name)
        for label_word in prop.display_label().split():
            best = max(best, self._similarity(word, label_word))
        return best

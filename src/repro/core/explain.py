"""Structured explanations: what the pipeline did for one question.

Replaces the old string-returning ``Answer.explain()`` with a structured
:class:`Explanation` — stage spans (when tracing was on), the candidate
table with per-candidate ranking scores, and the rejection reason for every
candidate the executor looked at.  :meth:`Explanation.render` (also
``str()``) reproduces the legacy text byte for byte, so the deprecated
``Answer.explain()`` shim can keep old callers working for one release.

The dominant error class in the paper's Table 2 — a question mapping to
the wrong property — is exactly what the candidate table makes visible:
each candidate query carries its score, its evidence sources (``pattern`` /
``similarity`` / ``wordnet`` / ``adjective``) and why it lost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.querygen import CandidateQuery
from repro.core.triples import TriplePattern
from repro.core.typecheck import ExpectedType
from repro.obs.trace import Span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.system import Answer

#: Candidate statuses, in the order the executor can assign them.
#: ``not-executed`` marks candidates ranked below the winner (the
#: section-2.3.1 short circuit) or beyond a budget cut.
CANDIDATE_STATUSES = (
    "winner",
    "no-bindings",
    "type-filtered",
    "error",
    "fault-injected",
    "budget-truncated",
    "not-executed",
)


@dataclass(frozen=True)
class CandidateRecord:
    """One candidate query's place in the ranking, with its fate."""

    index: int  #: rank position (0 = best score)
    score: float
    sources: tuple[str, ...]
    sparql: str
    status: str  #: one of :data:`CANDIDATE_STATUSES`
    detail: str = ""  #: e.g. the error text for ``status == "error"``

    def describe(self) -> str:
        """One table row: rank, score, evidence, outcome."""
        sources = "+".join(self.sources) or "-"
        text = (
            f"#{self.index:<3} score={self.score:<12.6g} "
            f"sources={sources:<24} {self.status}"
        )
        return f"{text} ({self.detail})" if self.detail else text


@dataclass
class Explanation:
    """Everything the pipeline can say about how one answer came to be."""

    question: str
    rewritten_question: str | None = None
    degraded: tuple[str, ...] = ()
    truncated: bool = False
    triples: tuple[TriplePattern, ...] = ()
    expected_type: ExpectedType = ExpectedType.ANY
    candidate_queries: tuple[CandidateQuery, ...] = ()
    winning_query: CandidateQuery | None = None
    boolean: bool | None = None
    answers_count: int = 0
    answered: bool = False
    failure: str | None = None
    failure_stage: str | None = None
    #: Per-candidate ranking rationale (always available; statuses beyond
    #: the winner require the executor's outcome records).
    candidates: tuple[CandidateRecord, ...] = ()
    #: The span tree, when the answer was produced under tracing.
    trace: Span | None = field(default=None, repr=False)

    # ------------------------------------------------------------------

    @classmethod
    def from_answer(cls, answer: "Answer") -> "Explanation":
        """Build the structured explanation from a pipeline result."""
        return cls(
            question=answer.question,
            rewritten_question=answer.rewritten_question,
            degraded=tuple(answer.degraded),
            truncated=answer.truncated,
            triples=tuple(answer.triples),
            expected_type=answer.expected_type,
            candidate_queries=tuple(answer.candidate_queries),
            winning_query=answer.query,
            boolean=answer.boolean,
            answers_count=len(answer.answers),
            answered=answer.answered,
            failure=answer.failure,
            failure_stage=answer.failure_stage,
            candidates=_candidate_records(answer),
            trace=answer.trace,
        )

    # ------------------------------------------------------------------

    def render(self) -> str:
        """The legacy ``Answer.explain()`` text, reproduced exactly.

        One line per stage: rewrite, extracted patterns, candidate-query
        count, the winning query, the expected-type filter, and the final
        verdict.
        """
        lines = [f"question: {self.question}"]
        if self.rewritten_question is not None:
            lines.append(f"rewritten (imperative extension): {self.rewritten_question}")
        for fallback in self.degraded:
            lines.append(f"degraded (reliability fallback): {fallback}")
        if self.truncated:
            lines.append("truncated: candidate budget exhausted before completion")
        if self.triples:
            lines.append("triple patterns (section 2.1):")
            for pattern in self.triples:
                lines.append(f"  {pattern}")
        else:
            lines.append("triple patterns (section 2.1): none extracted")
        if self.candidate_queries:
            lines.append(
                f"candidate queries (section 2.3): {len(self.candidate_queries)}"
            )
        if self.expected_type is not ExpectedType.ANY:
            lines.append(f"expected answer type (Table 1): {self.expected_type.value}")
        if self.winning_query is not None:
            lines.append("winning query:")
            for line in self.winning_query.to_sparql().splitlines():
                lines.append(f"  {line}")
        if self.boolean is not None:
            lines.append(f"verdict: {'yes' if self.boolean else 'no'} (ASK extension)")
        elif self.answered:
            lines.append(f"answers: {self.answers_count}")
        else:
            lines.append(f"unanswered: {self.failure}")
        return "\n".join(lines)

    def render_candidates(self) -> str:
        """The candidate table: rank, score, evidence sources, outcome."""
        if not self.candidates:
            return "candidate ranking: none"
        lines = ["candidate ranking (section 2.3.1):"]
        for record in self.candidates:
            lines.append(f"  {record.describe()}")
        return "\n".join(lines)

    def render_tree(self) -> str:
        """The full diagnostic view: legacy text + candidate table + spans.

        This is what the redesigned ``repro explain`` command prints.
        """
        parts = [self.render(), "", self.render_candidates()]
        if self.trace is not None:
            parts += ["", "trace:", self.trace.render()]
        return "\n".join(parts)

    def to_dict(self) -> dict:
        """JSON-ready representation (used by trace/metrics export)."""
        return {
            "question": self.question,
            "rewritten_question": self.rewritten_question,
            "degraded": list(self.degraded),
            "truncated": self.truncated,
            "triples": [str(pattern) for pattern in self.triples],
            "expected_type": self.expected_type.value,
            "answered": self.answered,
            "answers_count": self.answers_count,
            "boolean": self.boolean,
            "failure": self.failure,
            "failure_stage": self.failure_stage,
            "winning_query": (
                self.winning_query.to_sparql()
                if self.winning_query is not None else None
            ),
            "candidates": [
                {
                    "index": record.index,
                    "score": record.score,
                    "sources": list(record.sources),
                    "sparql": record.sparql,
                    "status": record.status,
                    "detail": record.detail,
                }
                for record in self.candidates
            ],
            "trace": None if self.trace is None else self.trace.to_dict(),
        }

    def __str__(self) -> str:
        return self.render()


def _candidate_records(answer: "Answer") -> tuple[CandidateRecord, ...]:
    """Merge the ranked candidate list with the executor's outcomes."""
    outcomes = {index: (status, detail)
                for index, status, detail in answer.candidate_outcomes}
    records = []
    for index, candidate in enumerate(answer.candidate_queries):
        status, detail = outcomes.get(index, ("not-executed", ""))
        if status == "not-executed" and answer.query is not None \
                and candidate == answer.query:
            # Winner identified structurally when the executor recorded no
            # outcomes (e.g. an Answer built before execution ran).
            status = "winner"
        records.append(
            CandidateRecord(
                index=index,
                score=candidate.score,
                sources=candidate.sources,
                sparql=candidate.to_sparql(),
                status=status,
                detail=detail,
            )
        )
    return tuple(records)

"""Triple-pattern model for section 2.1 output.

A pattern has three slots; each is a variable (``?x``), a text fragment to
be mapped ("written", "book"), or an already-identified entity mention
("Orhan Pamuk").  This is exactly the intermediate form of the paper's
worked example::

    [Subject: ?x] [Predicate: rdf:type] [Object: book]
    [Subject: ?x] [Predicate: written]  [Object: Orhan Pamuk]
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.nlp.dependencies import Token


class SlotKind(enum.Enum):
    VARIABLE = "variable"   # the questioned element
    TEXT = "text"           # a word/phrase to map to the ontology
    ENTITY = "entity"       # a spotted named-entity mention
    RDF_TYPE = "rdf:type"   # the fixed rdf:type predicate


@dataclass(frozen=True, slots=True)
class Slot:
    """One slot of a triple pattern."""

    kind: SlotKind
    text: str = ""
    token: Token | None = None  # source token, when applicable

    @classmethod
    def variable(cls) -> "Slot":
        return cls(SlotKind.VARIABLE, "?x")

    @classmethod
    def rdf_type(cls) -> "Slot":
        return cls(SlotKind.RDF_TYPE, "rdf:type")

    @classmethod
    def entity(cls, token: Token) -> "Slot":
        return cls(SlotKind.ENTITY, token.text, token)

    @classmethod
    def text_of(cls, token: Token, text: str | None = None) -> "Slot":
        return cls(SlotKind.TEXT, text if text is not None else token.lemma, token)

    @property
    def is_variable(self) -> bool:
        return self.kind is SlotKind.VARIABLE

    def __str__(self) -> str:
        return self.text


@dataclass(frozen=True, slots=True)
class TriplePattern:
    """An (subject, predicate, object) pattern over slots.

    ``is_main`` marks the triple containing the dependency root (the paper
    treats it as the main triple; others hang off its variables).
    """

    subject: Slot
    predicate: Slot
    object: Slot
    is_main: bool = False

    def variables(self) -> int:
        return sum(
            1 for slot in (self.subject, self.predicate, self.object)
            if slot.is_variable
        )

    def __str__(self) -> str:
        return (
            f"[Subject: {self.subject}] [Predicate: {self.predicate}] "
            f"[Object: {self.object}]"
        )

"""Expected-answer-type checking (section 2.3.2, Table 1).

=============  ==============================
Question type  Expected answer type
=============  ==============================
Who            Person, Organization, Company
Where          Place
When           Date
How many       Numeric
=============  ==============================

'Which N' questions carry their own class constraint in the query and need
no check; 'How <adjective>' questions expect the numeric measurement.
"""

from __future__ import annotations

import enum

from repro.kb.builder import KnowledgeBase
from repro.nlp.pipeline import Sentence
from repro.rdf.datatypes import is_date_literal, is_numeric_literal
from repro.rdf.terms import IRI, Literal, Term


class ExpectedType(enum.Enum):
    PERSON_OR_ORGANISATION = "person-or-organisation"  # Who
    PLACE = "place"                                    # Where
    DATE = "date"                                      # When
    NUMERIC = "numeric"                                # How many / How tall
    ANY = "any"                                        # Which N / What


#: Table 1 of the paper, keyed by the (lower-cased) question word.
TABLE_1: dict[str, ExpectedType] = {
    "who": ExpectedType.PERSON_OR_ORGANISATION,
    "whom": ExpectedType.PERSON_OR_ORGANISATION,
    "where": ExpectedType.PLACE,
    "when": ExpectedType.DATE,
}

#: Ontology classes accepted for each entity-valued expectation.
_ACCEPTED_CLASSES: dict[ExpectedType, tuple[str, ...]] = {
    ExpectedType.PERSON_OR_ORGANISATION: ("Person", "Organisation", "Company"),
    ExpectedType.PLACE: ("Place",),
}


def expected_answer_type(sentence: Sentence) -> ExpectedType:
    """Classify the question by its interrogative (Table 1).

    ``How many``/``How much``/``How <adjective>`` expect numbers;
    ``Which``/``What`` questions are unconstrained (their noun constrains
    the query instead).
    """
    tokens = sentence.tokens
    if not tokens:
        return ExpectedType.ANY
    first = tokens[0].text.lower()
    if first == "how" and len(tokens) > 1:
        second = tokens[1].text.lower()
        if second in ("many", "much") or tokens[1].pos.startswith("JJ"):
            return ExpectedType.NUMERIC
        return ExpectedType.ANY
    return TABLE_1.get(first, ExpectedType.ANY)


def answer_matches_type(
    kb: KnowledgeBase, answer: Term, expected: ExpectedType
) -> bool:
    """Does one answer term satisfy the expected type?"""
    if expected is ExpectedType.ANY:
        return True
    if expected is ExpectedType.NUMERIC:
        return isinstance(answer, Literal) and is_numeric_literal(answer)
    if expected is ExpectedType.DATE:
        return isinstance(answer, Literal) and is_date_literal(answer)
    if not isinstance(answer, IRI):
        return False
    accepted = _ACCEPTED_CLASSES[expected]
    types = kb.entity_types(answer)
    return any(class_name in types for class_name in accepted)

"""Pipeline configuration.

The faithful configuration is the default constructor; the ablation
benchmarks (A1-A4 in DESIGN.md) flip individual components off or swap the
string-similarity metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.reliability.budgets import Deadline
    from repro.reliability.faults import FaultInjector
    from repro.serve.guard import StageGuard


@dataclass(frozen=True)
class PipelineConfig:
    """Feature switches and thresholds for the QA pipeline."""

    #: Use PATTY relational patterns for predicate mapping (section 2.2.3).
    use_patterns: bool = True
    #: Expand object-property candidates with WordNet-similar pairs (2.2.1).
    use_wordnet_pairs: bool = True
    #: Use the WordNet adjective map for data properties (2.2.2).
    use_adjective_map: bool = True
    #: Apply expected-answer-type checking (section 2.3.2 / Table 1).
    use_type_checking: bool = True
    #: String-similarity function name from repro.similarity registry.
    similarity: str = "lcs"
    #: Minimum similarity for a property candidate from string matching.
    similarity_threshold: float = 0.70
    #: Keep at most this many property candidates per predicate slot.
    max_predicate_candidates: int = 5
    #: Discount applied to WordNet-expanded candidates relative to the
    #: candidate they expand (the paper leaves their weight unspecified).
    wordnet_expansion_discount: float = 0.9
    #: Cap on candidate queries executed per question (guards the
    #: Cartesian product of section 2.2).
    max_queries: int = 64

    # -- performance layer (docs/performance.md); none of these change
    # -- answers, only how much work is done to produce them --------------

    #: Memoize string-similarity scores across questions (section 2.2
    #: recomputes the same word-property pairs heavily).
    enable_similarity_cache: bool = True
    #: Memoize sentence annotation (tokenise/tag/parse) on question text.
    enable_annotation_cache: bool = True
    #: Prune the candidate Cartesian product with a branch-and-bound upper
    #: bound once the ranked top-``max_queries`` can no longer change, and
    #: stop executing candidates once a productive query can no longer be
    #: displaced (scores are sorted non-increasing).
    enable_early_termination: bool = True
    #: Skip vocabulary-scan similarity comparisons whose LCS upper bound
    #: (length/character-profile buckets) cannot reach the acceptance
    #: threshold.  Sound for the LCS metric only; other metrics always
    #: take the full scan regardless of this switch.
    enable_scan_pruning: bool = True

    # -- reliability layer (docs/reliability.md): typed failures, budgets,
    # -- graceful degradation.  Budgets default to "unlimited" and the
    # -- injector to None, so the faithful configuration is unaffected ----

    #: Hard cap on candidate queries *executed* per question (on top of
    #: ``max_queries``, which caps how many are generated).  ``None``
    #: disables the cap.  Never silent: hitting it sets
    #: ``Answer.truncated`` and the ``execute.candidates_truncated``
    #: counter.
    max_candidates: int | None = None
    #: Wall-clock budget in milliseconds shared by one question's
    #: candidate-enumeration and execution stages.  ``None`` disables it.
    #: Hitting the budget stops the stage early (keeping the work already
    #: done), sets ``Answer.truncated`` and bumps the
    #: ``reliability.budget_exhausted`` counter.
    stage_budget_ms: float | None = None
    #: Per-question wall-clock timeout in *seconds* (CLI ``--timeout``).
    #: Semantically the same deadline mechanism as ``stage_budget_ms``
    #: (when both are set the tighter one wins); kept separate so callers
    #: can speak seconds at the request level and milliseconds at the
    #: stage level without unit confusion.
    question_timeout_s: float | None = None
    #: Degrade instead of refusing: when annotation or extraction fails
    #: with an exception, retry with the shallow keyword extractor
    #: (``repro.reliability.fallback``) before giving up.  On the happy
    #: path this never runs, so Table 2 is unaffected.
    enable_fallback_extraction: bool = True
    #: Deterministic fault injection for the reliability test harness
    #: (off — None — in any production configuration).  Excluded from
    #: equality/hash: it is a test controller, not pipeline semantics.
    fault_injector: "FaultInjector | None" = field(
        default=None, compare=False, repr=False
    )
    #: Serving-layer stage guard (circuit breakers + bulkheads, see
    #: ``repro.serve`` and docs/reliability.md "Serving & overload
    #: behavior").  ``None`` — the default everywhere outside
    #: :class:`repro.serve.ResilientServer` — costs one ``is None`` check
    #: per guarded stage.  Excluded from equality/hash like the injector:
    #: it shapes *when* work runs, never what answers are.
    stage_guard: "StageGuard | None" = field(
        default=None, compare=False, repr=False
    )

    # -- observability layer (docs/observability.md): span tracing is an
    # -- opt-in; the default NULL tracer keeps the hot path unchanged -----

    #: Build a span tree per (sampled) question, attached to
    #: ``Answer.trace``: one span per pipeline stage, candidate/cache
    #: events, and per-candidate mapping rationale.  Off by default —
    #: the no-op tracer's overhead is pinned <2% by the tier-1 guard.
    enable_tracing: bool = False
    #: Trace every n-th question (deterministic, by call count).  1 traces
    #: everything; larger values are the low-overhead production mode.
    trace_sample_every: int = 1

    # -- storage layer (docs/architecture.md "Storage backends &
    # -- sharding"): which KBBackend the CLI builds the KB over.  Never
    # -- changes answers — only where the triples live ---------------------

    #: KB storage backend: ``"memory"`` (single-heap dict indexes, the
    #: default) or ``"segments"`` (mmap-loaded on-disk shards, requires
    #: ``kb_segments_path``).
    kb_backend: str = "memory"
    #: Segment directory for ``kb_backend="segments"`` (written by
    #: ``repro kb build-segments``).
    kb_segments_path: str | None = None

    # -- future-work extensions (paper section 6), all off by default so
    # -- the faithful configuration reproduces Table 2 unchanged ----------

    #: Generate ASK queries for boolean questions ("Is Berlin the capital
    #: of Germany?") instead of failing on them.
    enable_boolean_questions: bool = False
    #: Mine relational patterns for *data* properties too (the research
    #: gap of section 5), so "When was X born?" can map to dbo:birthDate.
    enable_data_property_patterns: bool = False
    #: Normalise imperative list requests ("Give me all ...") into the
    #: wh-question grammar the extractor covers.
    enable_imperatives: bool = False

    def with_extensions(self) -> "PipelineConfig":
        """All section-6 future-work extensions switched on."""
        return self._replace(
            enable_boolean_questions=True,
            enable_data_property_patterns=True,
            enable_imperatives=True,
        )

    def without_patterns(self) -> "PipelineConfig":
        return self._replace(use_patterns=False)

    def without_wordnet(self) -> "PipelineConfig":
        return self._replace(use_wordnet_pairs=False, use_adjective_map=False)

    def without_type_checking(self) -> "PipelineConfig":
        return self._replace(use_type_checking=False)

    def with_similarity(self, name: str) -> "PipelineConfig":
        return self._replace(similarity=name)

    def with_budgets(
        self,
        max_candidates: int | None = None,
        stage_budget_ms: float | None = None,
    ) -> "PipelineConfig":
        """Opt into the reliability budgets (see docs/reliability.md)."""
        return self._replace(
            max_candidates=max_candidates, stage_budget_ms=stage_budget_ms
        )

    def with_fault_injector(self, injector: "FaultInjector") -> "PipelineConfig":
        """Attach a fault injector (test harness only)."""
        return self._replace(fault_injector=injector)

    def with_stage_guard(self, guard: "StageGuard") -> "PipelineConfig":
        """Attach a serving-layer stage guard (breakers + bulkheads)."""
        return self._replace(stage_guard=guard)

    def new_deadline(self) -> "Deadline":
        """A fresh per-question :class:`repro.reliability.Deadline` from
        the configured budgets — the tighter of ``question_timeout_s``
        and ``stage_budget_ms``, unlimited when neither is set."""
        from repro.reliability.budgets import Deadline

        candidates = [
            seconds
            for seconds in (
                self.question_timeout_s,
                None if self.stage_budget_ms is None else self.stage_budget_ms / 1000.0,
            )
            if seconds is not None
        ]
        return Deadline(min(candidates) if candidates else None)

    def with_tracing(self, sample_every: int = 1) -> "PipelineConfig":
        """Opt into span tracing (see docs/observability.md)."""
        return self._replace(enable_tracing=True, trace_sample_every=sample_every)

    def updated(self, **changes) -> "PipelineConfig":
        """A copy with individual fields replaced.

        The public single-field update API: the CLI's declarative
        flag→field table applies each present flag through this, so two
        flags never clobber each other the way the all-at-once
        ``with_budgets`` signature could.
        """
        return self._replace(**changes)

    def without_perf_caches(self) -> "PipelineConfig":
        """The seed's cold path: no memoization, no product pruning.

        Used by ``benchmarks/bench_batch_throughput.py`` as the baseline
        configuration (together with disabling the engine's query cache).
        """
        return self._replace(
            enable_similarity_cache=False,
            enable_annotation_cache=False,
            enable_early_termination=False,
            enable_scan_pruning=False,
        )

    def _replace(self, **changes) -> "PipelineConfig":
        from dataclasses import replace

        return replace(self, **changes)

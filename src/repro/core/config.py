"""Pipeline configuration.

The faithful configuration is the default constructor; the ablation
benchmarks (A1-A4 in DESIGN.md) flip individual components off or swap the
string-similarity metric.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PipelineConfig:
    """Feature switches and thresholds for the QA pipeline."""

    #: Use PATTY relational patterns for predicate mapping (section 2.2.3).
    use_patterns: bool = True
    #: Expand object-property candidates with WordNet-similar pairs (2.2.1).
    use_wordnet_pairs: bool = True
    #: Use the WordNet adjective map for data properties (2.2.2).
    use_adjective_map: bool = True
    #: Apply expected-answer-type checking (section 2.3.2 / Table 1).
    use_type_checking: bool = True
    #: String-similarity function name from repro.similarity registry.
    similarity: str = "lcs"
    #: Minimum similarity for a property candidate from string matching.
    similarity_threshold: float = 0.70
    #: Keep at most this many property candidates per predicate slot.
    max_predicate_candidates: int = 5
    #: Discount applied to WordNet-expanded candidates relative to the
    #: candidate they expand (the paper leaves their weight unspecified).
    wordnet_expansion_discount: float = 0.9
    #: Cap on candidate queries executed per question (guards the
    #: Cartesian product of section 2.2).
    max_queries: int = 64

    # -- performance layer (docs/performance.md); none of these change
    # -- answers, only how much work is done to produce them --------------

    #: Memoize string-similarity scores across questions (section 2.2
    #: recomputes the same word-property pairs heavily).
    enable_similarity_cache: bool = True
    #: Memoize sentence annotation (tokenise/tag/parse) on question text.
    enable_annotation_cache: bool = True
    #: Prune the candidate Cartesian product with a branch-and-bound upper
    #: bound once the ranked top-``max_queries`` can no longer change, and
    #: stop executing candidates once a productive query can no longer be
    #: displaced (scores are sorted non-increasing).
    enable_early_termination: bool = True

    # -- future-work extensions (paper section 6), all off by default so
    # -- the faithful configuration reproduces Table 2 unchanged ----------

    #: Generate ASK queries for boolean questions ("Is Berlin the capital
    #: of Germany?") instead of failing on them.
    enable_boolean_questions: bool = False
    #: Mine relational patterns for *data* properties too (the research
    #: gap of section 5), so "When was X born?" can map to dbo:birthDate.
    enable_data_property_patterns: bool = False
    #: Normalise imperative list requests ("Give me all ...") into the
    #: wh-question grammar the extractor covers.
    enable_imperatives: bool = False

    def with_extensions(self) -> "PipelineConfig":
        """All section-6 future-work extensions switched on."""
        return self._replace(
            enable_boolean_questions=True,
            enable_data_property_patterns=True,
            enable_imperatives=True,
        )

    def without_patterns(self) -> "PipelineConfig":
        return self._replace(use_patterns=False)

    def without_wordnet(self) -> "PipelineConfig":
        return self._replace(use_wordnet_pairs=False, use_adjective_map=False)

    def without_type_checking(self) -> "PipelineConfig":
        return self._replace(use_type_checking=False)

    def with_similarity(self, name: str) -> "PipelineConfig":
        return self._replace(similarity=name)

    def without_perf_caches(self) -> "PipelineConfig":
        """The seed's cold path: no memoization, no product pruning.

        Used by ``benchmarks/bench_batch_throughput.py`` as the baseline
        configuration (together with disabling the engine's query cache).
        """
        return self._replace(
            enable_similarity_cache=False,
            enable_annotation_cache=False,
            enable_early_termination=False,
        )

    def _replace(self, **changes) -> "PipelineConfig":
        from dataclasses import replace

        return replace(self, **changes)

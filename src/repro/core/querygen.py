"""Candidate query construction (section 2.3).

Builds the Cartesian product of per-slot candidates:

    "By using all possibilities we can build ∏ (cardinality of Ptn) ...
    For example if T has three members each has 2, 5 and 3 possible
    predicates consecutively.  Then there will be 30 possible triple query
    list."

For object-property predicates where one argument is the variable, both
orientations are generated (``?x p E`` and ``E p ?x``): dependency trees do
not reveal which side of the DBpedia property the question element is on,
and the wrong orientation simply returns no bindings.  Data-property
predicates are always oriented entity-subject/literal-object.

Two refinements over the naive product:

* **deduplication** — two predicate candidates can map to the same IRI
  (e.g. a PATTY pattern and a string-similarity hit for ``dbo:author``),
  which used to emit byte-identical queries that were then executed twice.
  Duplicates are collapsed keeping the best-ranked copy.
* **branch-and-bound pruning** (``enable_early_termination``) — only the
  top ``max_queries`` candidates are ever executed, and because every
  weight is positive the score of any completion of a partial combination
  is bounded by (partial product) x (product of per-slot maximum remaining
  weights).  Once ``max_queries`` distinct combinations are collected,
  subtrees whose bound falls strictly below the current k-th best score
  cannot contribute to the output (not even a boundary tie) and are
  skipped.  The enumeration therefore *stops early* instead of
  materialising the full Cartesian product; the surviving set — and the
  final ranking — is provably identical to the exhaustive one.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.config import PipelineConfig
from repro.core.mapping import CandidateTriple, PredicateCandidate
from repro.kb.ontology import PropertyKind
from repro.obs.trace import NULL_TRACER
from repro.perf.stats import PerfStats
from repro.rdf.namespaces import RDF, shrink_iri
from repro.rdf.terms import IRI, Term, Triple, Variable
from repro.sparql.ast import BGP, Group, SelectQuery

#: Relative slack on the branch-and-bound comparison: the bound multiplies
#: the same weights as a real score but in a different association order,
#: so it can differ from an achievable score by a few ulps.  Pruning only
#: when the inflated bound is still below threshold keeps boundary ties
#: exactly reproducible against exhaustive enumeration.
_PRUNE_EPSILON = 1e-9


class _EnumerationBudgetStop(Exception):
    """Internal control flow: the enumeration deadline expired; ``partial``
    carries every combination recorded before the cut."""

    def __init__(self, partial: dict) -> None:
        super().__init__("candidate enumeration budget exhausted")
        self.partial = partial


@dataclass(frozen=True)
class CandidateQuery:
    """One fully instantiated SPARQL candidate with its ranking score."""

    triples: tuple[Triple, ...]
    score: float
    sources: tuple[str, ...]

    def to_ast(self) -> SelectQuery:
        # Memoized: the execute stage submits this AST per candidate, and
        # the engine's plan/result caches key on the AST's structural hash
        # — rebuilding the (immutable) tree each call would re-hash a
        # fresh object every time.  Frozen dataclasses without
        # ``slots=True`` still carry a ``__dict__``, so the cached tree
        # rides on the instance.
        cached = self.__dict__.get("_ast")
        if cached is None:
            cached = SelectQuery(
                projection=(Variable("x"),),
                where=Group((BGP(self.triples),)),
                distinct=True,
            )
            object.__setattr__(self, "_ast", cached)
        return cached

    def to_sparql(self) -> str:
        lines = [f"  {_term(t.subject)} {_term(t.predicate)} {_term(t.object)} ."
                 for t in self.triples]
        body = "\n".join(lines)
        return f"SELECT DISTINCT ?x WHERE {{\n{body}\n}}"


def _term(term: Term) -> str:
    if isinstance(term, Variable):
        return term.n3()
    if isinstance(term, IRI):
        return shrink_iri(term)
    return term.n3()


class QueryGenerator:
    """Expands mapped triples into ranked candidate queries."""

    def __init__(
        self,
        config: PipelineConfig | None = None,
        stats: PerfStats | None = None,
        tracer=None,
    ) -> None:
        self._config = config if config is not None else PipelineConfig()
        self._stats = stats
        self._tracer = tracer if tracer is not None else NULL_TRACER

    def generate(
        self, mapped: list[CandidateTriple], deadline=None
    ) -> list[CandidateQuery]:
        """Distinct candidate queries, best score first, capped at max_queries.

        ``deadline`` (a :class:`repro.reliability.Deadline`, optional) is
        the reliability layer's enumeration budget: when it expires
        mid-enumeration the combinations collected so far are ranked and
        returned — a truncated but well-formed candidate list — and the
        ``querygen.budget_exhausted`` counter records the cut (the caller
        surfaces it via ``Answer.truncated``; never silent).
        """
        if not mapped:
            return []
        per_pattern: list[list[tuple[Triple, float, str]]] = []
        for candidate in mapped:
            choices = list(self._expand(candidate))
            if not choices:
                return []
            per_pattern.append(choices)

        limit = self._config.max_queries
        try:
            if self._config.enable_early_termination:
                best = self._enumerate_pruned(per_pattern, limit, deadline)
            else:
                best = self._enumerate_full(per_pattern, deadline)
        except _EnumerationBudgetStop as stop:
            best = stop.partial
            if self._stats is not None:
                self._stats.increment("querygen.budget_exhausted")
            if self._tracer.active:
                self._tracer.event("enumeration-budget-exhausted")

        # Rank exactly like a stable sort over the full product: score
        # descending, ties broken by product-enumeration order.
        entries = sorted(
            best.items(), key=lambda item: (-item[1][0], item[1][1])
        )
        queries = [
            CandidateQuery(triples, score, sources)
            for triples, (score, __, sources) in entries[:limit]
        ]
        if self._tracer.active:
            self._tracer.annotate(
                axes=len(per_pattern),
                enumerated=len(best),
                kept=len(queries),
                top_score=queries[0].score if queries else 0.0,
            )
        return queries

    # ------------------------------------------------------------------
    # Product enumeration
    # ------------------------------------------------------------------

    def _enumerate_full(
        self, per_pattern: list[list[tuple[Triple, float, str]]], deadline=None
    ) -> dict:
        """Exhaustive Cartesian product with duplicate collapsing.

        Returns ``{triples: (score, order, sources)}`` where ``order`` is
        the combination's index tuple in product-enumeration order.
        """
        best: dict[tuple[Triple, ...], tuple] = {}
        index_ranges = [range(len(choices)) for choices in per_pattern]
        for order in itertools.product(*index_ranges):
            if deadline is not None and deadline.expired():
                raise _EnumerationBudgetStop(best)
            score = 1.0
            triples: list[Triple] = []
            sources: list[str] = []
            for axis, position in enumerate(order):
                triple, weight, source = per_pattern[axis][position]
                score *= weight
                triples.append(triple)
                sources.append(source)
            self._record(best, tuple(triples), score, order, tuple(sources))
        return best

    def _enumerate_pruned(
        self,
        per_pattern: list[list[tuple[Triple, float, str]]],
        limit: int,
        deadline=None,
    ) -> dict:
        """Branch-and-bound enumeration of the product's top ``limit`` set.

        Axes are visited with choices sorted by weight descending, so the
        upper bound of the unvisited remainder of an axis is monotonically
        non-increasing and a single ``break`` abandons it.  The result dict
        is a superset of the exhaustive top-``limit`` entries and contains
        every entry whose score reaches the final k-th best (ties
        included), which makes the subsequent ranking identical to
        :meth:`_enumerate_full`'s.
        """
        axes: list[list[tuple[Triple, float, str, int]]] = []
        for choices in per_pattern:
            indexed = [
                (triple, weight, source, position)
                for position, (triple, weight, source) in enumerate(choices)
            ]
            indexed.sort(key=lambda entry: -entry[1])
            axes.append(indexed)

        # suffix_max[i] = product of the maximum weights of axes i..end.
        suffix_max = [1.0] * (len(axes) + 1)
        for i in range(len(axes) - 1, 0, -1):
            suffix_max[i] = suffix_max[i + 1] * axes[i][0][1]

        best: dict[tuple[Triple, ...], tuple] = {}
        # The k-th best score among collected entries only ever grows, so a
        # cached value stays a valid (conservative) prune threshold until
        # the next insertion.
        threshold: list[float | None] = [None]
        dirty: list[bool] = [True]

        def prune_threshold() -> float | None:
            if dirty[0]:
                if len(best) >= limit:
                    scores = sorted(
                        (entry[0] for entry in best.values()), reverse=True
                    )
                    threshold[0] = scores[limit - 1]
                else:
                    threshold[0] = None
                dirty[0] = False
            return threshold[0]

        def descend(
            axis: int,
            score: float,
            order: tuple[int, ...],
            triples: tuple[Triple, ...],
            sources: tuple[str, ...],
        ) -> None:
            if axis == len(axes):
                if deadline is not None and deadline.expired():
                    raise _EnumerationBudgetStop(best)
                if self._record(best, triples, score, order, sources):
                    dirty[0] = True
                return
            bound_tail = suffix_max[axis + 1]
            for triple, weight, source, position in axes[axis]:
                # Checked inside the per-axis loop too (not only at the
                # leaves): a prune-heavy pass over a huge Cartesian product
                # can spend its whole budget skipping subtrees without ever
                # reaching a leaf, and must still stop on time.
                if deadline is not None and deadline.expired():
                    raise _EnumerationBudgetStop(best)
                cutoff = prune_threshold()
                if cutoff is not None:
                    bound = score * weight * bound_tail
                    if bound * (1.0 + _PRUNE_EPSILON) < cutoff:
                        # Sorted descending: every later choice on this
                        # axis bounds even lower.  The top ranking can no
                        # longer change inside this subtree.
                        if self._stats is not None:
                            self._stats.increment("querygen.subtrees_pruned")
                        break
                descend(
                    axis + 1,
                    score * weight,
                    order + (position,),
                    triples + (triple,),
                    sources + (source,),
                )

        descend(0, 1.0, (), (), ())
        return best

    def _record(
        self,
        best: dict,
        triples: tuple[Triple, ...],
        score: float,
        order: tuple[int, ...],
        sources: tuple[str, ...],
    ) -> bool:
        """Fold one combination into the dedup map.

        Keeps, per distinct triple set, the copy a stable descending sort
        of the full product would have executed first: highest score, then
        earliest product order.  Returns True when the map changed.
        """
        if self._stats is not None:
            self._stats.increment("querygen.combos_enumerated")
        existing = best.get(triples)
        if existing is not None:
            if self._stats is not None:
                self._stats.increment("querygen.duplicates_collapsed")
            if score < existing[0] or (score == existing[0] and order > existing[1]):
                return False
        best[triples] = (score, order, sources)
        return True

    def _expand(self, candidate: CandidateTriple):
        """All (triple, weight, source) instantiations of one pattern."""
        for subject, predicate, obj in itertools.product(
            candidate.subjects, candidate.predicates, candidate.objects
        ):
            yield from self._orient(subject, predicate, obj)

    @staticmethod
    def _orient(subject: Term, predicate: PredicateCandidate, obj: Term):
        weight = predicate.weight
        source = predicate.source
        if predicate.iri == RDF.type:
            yield (Triple(subject, RDF.type, obj), weight, source)
            return
        if predicate.kind is PropertyKind.DATA:
            # Literal-valued: the entity must be the subject.
            if isinstance(subject, Variable) and not isinstance(obj, Variable):
                yield (Triple(obj, predicate.iri, subject), weight, source)
            else:
                yield (Triple(subject, predicate.iri, obj), weight, source)
            return
        # Object property: both orientations are plausible readings.
        yield (Triple(subject, predicate.iri, obj), weight, source)
        if isinstance(subject, Variable) != isinstance(obj, Variable):
            yield (Triple(obj, predicate.iri, subject), weight, source)

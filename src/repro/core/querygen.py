"""Candidate query construction (section 2.3).

Builds the Cartesian product of per-slot candidates:

    "By using all possibilities we can build ∏ (cardinality of Ptn) ...
    For example if T has three members each has 2, 5 and 3 possible
    predicates consecutively.  Then there will be 30 possible triple query
    list."

For object-property predicates where one argument is the variable, both
orientations are generated (``?x p E`` and ``E p ?x``): dependency trees do
not reveal which side of the DBpedia property the question element is on,
and the wrong orientation simply returns no bindings.  Data-property
predicates are always oriented entity-subject/literal-object.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.config import PipelineConfig
from repro.core.mapping import CandidateTriple, PredicateCandidate
from repro.kb.ontology import PropertyKind
from repro.rdf.namespaces import RDF, shrink_iri
from repro.rdf.terms import IRI, Term, Triple, Variable
from repro.sparql.ast import BGP, Group, SelectQuery


@dataclass(frozen=True)
class CandidateQuery:
    """One fully instantiated SPARQL candidate with its ranking score."""

    triples: tuple[Triple, ...]
    score: float
    sources: tuple[str, ...]

    def to_ast(self) -> SelectQuery:
        return SelectQuery(
            projection=(Variable("x"),),
            where=Group((BGP(self.triples),)),
            distinct=True,
        )

    def to_sparql(self) -> str:
        lines = [f"  {_term(t.subject)} {_term(t.predicate)} {_term(t.object)} ."
                 for t in self.triples]
        body = "\n".join(lines)
        return f"SELECT DISTINCT ?x WHERE {{\n{body}\n}}"


def _term(term: Term) -> str:
    if isinstance(term, Variable):
        return term.n3()
    if isinstance(term, IRI):
        return shrink_iri(term)
    return term.n3()


class QueryGenerator:
    """Expands mapped triples into ranked candidate queries."""

    def __init__(self, config: PipelineConfig | None = None) -> None:
        self._config = config if config is not None else PipelineConfig()

    def generate(self, mapped: list[CandidateTriple]) -> list[CandidateQuery]:
        """All candidate queries, best score first, capped at max_queries."""
        if not mapped:
            return []
        per_pattern: list[list[tuple[Triple, float, str]]] = []
        for candidate in mapped:
            choices = list(self._expand(candidate))
            if not choices:
                return []
            per_pattern.append(choices)

        queries: list[CandidateQuery] = []
        for combination in itertools.product(*per_pattern):
            score = 1.0
            triples: list[Triple] = []
            sources: list[str] = []
            for triple, weight, source in combination:
                score *= weight
                triples.append(triple)
                sources.append(source)
            queries.append(CandidateQuery(tuple(triples), score, tuple(sources)))

        queries.sort(key=lambda q: -q.score)
        return queries[: self._config.max_queries]

    def _expand(self, candidate: CandidateTriple):
        """All (triple, weight, source) instantiations of one pattern."""
        for subject, predicate, obj in itertools.product(
            candidate.subjects, candidate.predicates, candidate.objects
        ):
            yield from self._orient(subject, predicate, obj)

    @staticmethod
    def _orient(subject: Term, predicate: PredicateCandidate, obj: Term):
        weight = predicate.weight
        source = predicate.source
        if predicate.iri == RDF.type:
            yield (Triple(subject, RDF.type, obj), weight, source)
            return
        if predicate.kind is PropertyKind.DATA:
            # Literal-valued: the entity must be the subject.
            if isinstance(subject, Variable) and not isinstance(obj, Variable):
                yield (Triple(obj, predicate.iri, subject), weight, source)
            else:
                yield (Triple(subject, predicate.iri, obj), weight, source)
            return
        # Object property: both orientations are plausible readings.
        yield (Triple(subject, predicate.iri, obj), weight, source)
        if isinstance(subject, Variable) != isinstance(obj, Variable):
            yield (Triple(obj, predicate.iri, subject), weight, source)

"""Triple-pattern extraction from the dependency tree (section 2.1).

    "Starting from the root of the tree we examine each node with its
    children.  We treat a node and its children as a subtree and by looking
    their POS tags, relation tags and children's own triples, we decide if
    they make up any triple. ... Verbs are the central elements in the
    decision process."

The extractor walks the graph from the root and applies subtree rules:

* **verb root** — the verb is the predicate; nsubj/nsubjpass fills one
  argument slot, dobj or prep+pobj the other; wh-elements become the
  variable.  A wh-determined common noun argument additionally emits the
  ``[?x, rdf:type, noun]`` pattern (the paper's second triple).
* **noun root with copula** — role/attribute questions: the root noun is
  the predicate, the prep+pobj (or nsubj) entity is the subject, the
  questioned element the object: "mayor of Berlin" ->
  ``[Berlin, mayor, ?x]``.
* **adjective root with copula** — measurement questions: the adjective is
  the predicate: "How tall is X" -> ``[X, tall, ?x]``; boolean copulas like
  "Is X still alive" produce ``[X, alive, ?x]``, which downstream mapping
  (correctly, per section 5) fails on.

Questions whose parse is the degenerate fallback produce an empty bucket —
these are the questions the tool "cannot process" in Table 2.
"""

from __future__ import annotations

from repro.nlp.dependencies import DependencyGraph, Token
from repro.nlp.pipeline import Sentence
from repro.core.triples import Slot, SlotKind, TriplePattern

_COUNT_NOUNS = {"number", "amount", "count", "total"}


class TripleExtractor:
    """Builds the triple bucket for an annotated question."""

    def extract(self, sentence: Sentence) -> list[TriplePattern]:
        graph = sentence.graph
        root = graph.root
        if root is None:
            return []
        bucket: list[TriplePattern] = []
        if root.is_verb():
            self._from_verb_root(graph, root, bucket)
        elif root.is_noun() and graph.child(root, "cop") is not None:
            self._from_noun_root(graph, root, bucket)
        elif root.is_adjective() and graph.child(root, "cop") is not None:
            self._from_adjective_root(graph, root, bucket)
        return bucket

    # ------------------------------------------------------------------

    def _argument_slot(
        self, graph: DependencyGraph, token: Token, bucket: list[TriplePattern]
    ) -> Slot:
        """Convert an argument token to a slot; wh-determined nouns emit
        the extra rdf:type pattern and become the variable."""
        if token.is_wh_word():
            return Slot.variable()
        determiner = graph.child(token, "det")
        if determiner is not None and determiner.is_wh_word():
            bucket.append(TriplePattern(
                Slot.variable(), Slot.rdf_type(),
                Slot.text_of(token, graph.phrase(token).lower()
                             if graph.children(token, "nn") else token.lemma),
            ))
            return Slot.variable()
        if token.entity:
            return Slot.entity(token)
        return Slot.text_of(token, token.text)

    def _from_verb_root(
        self, graph: DependencyGraph, root: Token, bucket: list[TriplePattern]
    ) -> None:
        subject_token = graph.child(root, "nsubj") or graph.child(root, "nsubjpass")
        if subject_token is None:
            return

        # Object position: dobj, or the pobj behind a prep.
        object_token = graph.child(root, "dobj")
        if object_token is None:
            prep = graph.child(root, "prep")
            if prep is not None:
                object_token = graph.child(prep, "pobj")

        wh_adverb = self._wh_adverb(graph, root)

        subject_slot = self._argument_slot(graph, subject_token, bucket)
        if object_token is not None:
            object_slot = self._argument_slot(graph, object_token, bucket)
        elif wh_adverb is not None:
            # "Where did X die?" — the adverb is the questioned element.
            object_slot = Slot.variable()
        else:
            return

        # Counting questions ("How many pages does X have?") reduce to the
        # counted noun as a data-property predicate: [X, pages, ?x].
        counted = self._counted_noun(graph, root)
        if counted is not None:
            bucket.append(TriplePattern(
                subject_slot if not subject_slot.is_variable else object_slot,
                Slot.text_of(counted),
                Slot.variable(),
                is_main=True,
            ))
            return

        predicate = Slot.text_of(root)
        if not subject_slot.is_variable and not object_slot.is_variable:
            # No questioned element reachable: nothing extractable.
            return
        bucket.append(TriplePattern(subject_slot, predicate, object_slot, is_main=True))

    def _from_noun_root(
        self, graph: DependencyGraph, root: Token, bucket: list[TriplePattern]
    ) -> None:
        subject_token = graph.child(root, "nsubj")
        prep = graph.child(root, "prep")
        pobj = graph.child(prep, "pobj") if prep is not None else None

        determiner = graph.child(root, "det")
        root_is_questioned = determiner is not None and determiner.is_wh_word()

        # Pick the entity argument: "of <entity>" wins, else the nsubj.
        argument: Token | None = None
        if pobj is not None and not pobj.is_wh_word():
            argument = pobj
        elif subject_token is not None and not subject_token.is_wh_word():
            argument = subject_token

        if argument is None:
            return

        # Count nouns defer to their complement: "the number of employees
        # of X" — handled only in its simple form here.
        if argument.entity:
            subject_slot = Slot.entity(argument)
        else:
            subject_slot = Slot.text_of(argument, argument.text)

        questioned = root_is_questioned or (
            subject_token is not None and subject_token.is_wh_word()
        ) or self._wh_adverb(graph, root) is not None
        if not questioned:
            return

        bucket.append(TriplePattern(
            subject_slot,
            Slot.text_of(root),
            Slot.variable(),
            is_main=True,
        ))

    def _from_adjective_root(
        self, graph: DependencyGraph, root: Token, bucket: list[TriplePattern]
    ) -> None:
        subject_token = graph.child(root, "nsubj")
        if subject_token is None:
            return
        if subject_token.entity:
            subject_slot = Slot.entity(subject_token)
        elif subject_token.is_wh_word():
            subject_slot = Slot.variable()
        else:
            subject_slot = Slot.text_of(subject_token, subject_token.text)
        bucket.append(TriplePattern(
            subject_slot,
            Slot.text_of(root),
            Slot.variable(),
            is_main=True,
        ))

    # ------------------------------------------------------------------

    @staticmethod
    def _wh_adverb(graph: DependencyGraph, root: Token) -> Token | None:
        for adverb in graph.children(root, "advmod"):
            if adverb.pos == "WRB":
                return adverb
        return None

    @staticmethod
    def _counted_noun(graph: DependencyGraph, root: Token) -> Token | None:
        """The noun of a 'how many N' object, if present."""
        obj = graph.child(root, "dobj")
        if obj is None or not obj.is_noun():
            return None
        for amod in graph.children(obj, "amod"):
            if amod.lemma in ("many", "much"):
                return obj
        return None

"""The paper's question-answering pipeline (sections 2.1-2.3).

Public entry point: :class:`repro.core.system.QuestionAnsweringSystem` —
construct it over a knowledge base and call :meth:`answer`:

    >>> from repro.kb import load_curated_kb
    >>> from repro.core import QuestionAnsweringSystem
    >>> qa = QuestionAnsweringSystem.over(load_curated_kb())
    >>> result = qa.answer("Which book is written by Orhan Pamuk?")
    >>> result.answered
    True

Pipeline stages, one module per paper subsection:

* :mod:`repro.core.triples` — triple-pattern data model
* :mod:`repro.core.extraction` — section 2.1, dependency tree -> patterns
* :mod:`repro.core.mapping` — section 2.2, slots -> DBpedia vocabulary
* :mod:`repro.core.querygen` — section 2.3, candidate SPARQL generation
* :mod:`repro.core.ranking` — section 2.3.1, frequency-product ranking
* :mod:`repro.core.typecheck` — section 2.3.2, expected-answer-type filter
* :mod:`repro.core.config` — pipeline configuration (drives the ablations)
"""

from repro.core.config import PipelineConfig
from repro.core.explain import CandidateRecord, Explanation
from repro.core.triples import Slot, SlotKind, TriplePattern
from repro.core.extraction import TripleExtractor
from repro.core.mapping import CandidateTriple, PredicateCandidate, TripleMapper
from repro.core.querygen import CandidateQuery, QueryGenerator
from repro.core.typecheck import ExpectedType, expected_answer_type
from repro.core.system import Answer, QuestionAnsweringSystem

__all__ = [
    "PipelineConfig",
    "CandidateRecord",
    "Explanation",
    "Slot",
    "SlotKind",
    "TriplePattern",
    "TripleExtractor",
    "TripleMapper",
    "CandidateTriple",
    "PredicateCandidate",
    "QueryGenerator",
    "CandidateQuery",
    "ExpectedType",
    "expected_answer_type",
    "Answer",
    "QuestionAnsweringSystem",
]

"""Typed dependency graph structures (Stanford dependency style).

A :class:`DependencyGraph` holds the tokens of one sentence plus labelled
head->dependent arcs, with one designated root token, exactly the shape the
paper's Figure 1 shows for "Which book is written by Orhan Pamuk".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True, slots=True)
class Token:
    """One token with its annotations.

    ``index`` is the 0-based sentence position.  For gazetteer-merged
    multi-word entities, ``text`` holds the full surface ("Orhan Pamuk") and
    ``entity`` flags the merge.
    """

    index: int
    text: str
    lemma: str
    pos: str
    entity: bool = False

    def is_verb(self) -> bool:
        return self.pos.startswith("VB")

    def is_noun(self) -> bool:
        return self.pos.startswith("NN")

    def is_proper_noun(self) -> bool:
        return self.pos.startswith("NNP")

    def is_wh_word(self) -> bool:
        return self.pos in ("WDT", "WP", "WRB")

    def is_adjective(self) -> bool:
        return self.pos.startswith("JJ")


@dataclass(frozen=True, slots=True)
class Dependency:
    """One labelled arc: ``relation(head, dependent)``."""

    relation: str
    head: int  # token index
    dependent: int  # token index


class DependencyGraph:
    """Tokens + typed arcs + root.

    >>> tokens = [Token(0, "it", "it", "PRP"), Token(1, "works", "work", "VBZ")]
    >>> g = DependencyGraph(tokens, root=1)
    >>> g.add("nsubj", head=1, dependent=0)
    >>> [t.text for t in g.children(g.token(1), "nsubj")]
    ['it']
    """

    def __init__(self, tokens: list[Token], root: int | None = None) -> None:
        self._tokens = list(tokens)
        self._arcs: list[Dependency] = []
        self._root = root
        #: Name of the grammar template that produced this parse
        #: ("fallback" when none matched) — set by the parser; used by the
        #: coverage diagnostics.
        self.template: str | None = None

    # -- construction ------------------------------------------------------

    def add(self, relation: str, head: int, dependent: int) -> None:
        for position in (head, dependent):
            if not 0 <= position < len(self._tokens):
                raise IndexError(f"token index {position} out of range")
        if head == dependent:
            raise ValueError("a token cannot govern itself")
        self._arcs.append(Dependency(relation, head, dependent))

    def set_root(self, index: int) -> None:
        if not 0 <= index < len(self._tokens):
            raise IndexError(f"token index {index} out of range")
        self._root = index

    def mark(self) -> tuple[int, int | None]:
        """Checkpoint for speculative construction (template matching)."""
        return (len(self._arcs), self._root)

    def rollback(self, mark: tuple[int, int | None]) -> None:
        """Undo all arcs and root changes made since ``mark``."""
        arc_count, root = mark
        del self._arcs[arc_count:]
        self._root = root

    # -- access ------------------------------------------------------

    @property
    def tokens(self) -> list[Token]:
        return list(self._tokens)

    @property
    def arcs(self) -> list[Dependency]:
        return list(self._arcs)

    def token(self, index: int) -> Token:
        return self._tokens[index]

    @property
    def root(self) -> Token | None:
        if self._root is None:
            return None
        return self._tokens[self._root]

    def children(self, head: Token, relation: str | None = None) -> list[Token]:
        """Dependents of ``head``, optionally restricted to one relation."""
        return [
            self._tokens[arc.dependent]
            for arc in self._arcs
            if arc.head == head.index
            and (relation is None or arc.relation == relation)
        ]

    def child(self, head: Token, relation: str) -> Token | None:
        """The first dependent under ``relation``, or None."""
        matches = self.children(head, relation)
        return matches[0] if matches else None

    def parent(self, dependent: Token) -> tuple[str, Token] | None:
        """The (relation, head) governing a token, or None for the root."""
        for arc in self._arcs:
            if arc.dependent == dependent.index:
                return (arc.relation, self._tokens[arc.head])
        return None

    def relation_between(self, head: Token, dependent: Token) -> str | None:
        for arc in self._arcs:
            if arc.head == head.index and arc.dependent == dependent.index:
                return arc.relation
        return None

    def find(self, **criteria) -> list[Token]:
        """Tokens matching attribute equalities, e.g. ``find(pos="WDT")``."""
        out = []
        for token in self._tokens:
            if all(getattr(token, key) == value for key, value in criteria.items()):
                out.append(token)
        return out

    def phrase(self, head: Token) -> str:
        """The yield of ``head`` with its noun-compound/det/amod children,
        in sentence order — used to reconstruct multi-word names."""
        parts = {head.index: head.text}
        for arc in self._arcs:
            if arc.head == head.index and arc.relation in ("nn", "amod"):
                parts[arc.dependent] = self._tokens[arc.dependent].text
        return " ".join(text for __, text in sorted(parts.items()))

    def to_figure(self) -> str:
        """Render the arcs in the paper's Figure 1 style."""
        lines = []
        if self.root is not None:
            lines.append(f"root(ROOT-0, {self.root.text}-{self.root.index + 1})")
        for arc in sorted(self._arcs, key=lambda a: (a.head, a.dependent)):
            head = self._tokens[arc.head]
            dependent = self._tokens[arc.dependent]
            lines.append(
                f"{arc.relation}({head.text}-{head.index + 1}, "
                f"{dependent.text}-{dependent.index + 1})"
            )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._tokens)

    def __iter__(self) -> Iterator[Token]:
        return iter(self._tokens)

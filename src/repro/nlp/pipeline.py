"""The annotation pipeline: tokenise, chunk entities, tag, lemmatise, parse.

This is the CoreNLP-equivalent annotator chain.  Entity chunking plays the
role of CoreNLP's NER + multi-word-expression handling: maximal gazetteer
mentions ("Orhan Pamuk", "The Pillars of the Earth") are merged into single
NNP tokens *before* parsing, so the dependency templates see them as one
nominal unit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kb.labels import SurfaceFormIndex
from repro.nlp.dependencies import DependencyGraph, Token
from repro.nlp.depparser import DependencyParser
from repro.nlp.morphology import lemmatize
from repro.nlp.postagger import PosTagger
from repro.nlp.tokenizer import tokenize
from repro.perf.lru import LRUCache
from repro.rdf.terms import IRI


@dataclass
class Mention:
    """A gazetteer match merged into one token."""

    token_index: int
    surface: str
    candidates: list[IRI] = field(default_factory=list)


@dataclass
class Sentence:
    """A fully annotated question."""

    text: str
    tokens: list[Token]
    graph: DependencyGraph
    mentions: list[Mention] = field(default_factory=list)

    def mention_at(self, token_index: int) -> Mention | None:
        for mention in self.mentions:
            if mention.token_index == token_index:
                return mention
        return None


class Pipeline:
    """Tokeniser + entity chunker + tagger + lemmatiser + parser.

    ``gazetteer`` is optional; without it the pipeline still works but
    multi-word names parse word-by-word (as raw CoreNLP would without NER),
    which degrades template coverage exactly like the paper's tool degrades
    on unrecognised names.
    """

    def __init__(
        self, gazetteer: SurfaceFormIndex | None = None, cache_size: int = 1024
    ) -> None:
        self._gazetteer = gazetteer
        self._tagger = PosTagger()
        self._parser = DependencyParser()
        #: text -> Sentence memo.  The annotation chain is deterministic
        #: and every consumer treats Sentence as read-only (Token and
        #: Dependency are frozen; DependencyGraph is mutated only during
        #: parsing), so repeated questions share one annotation.  Size 0
        #: disables the cache.
        self._cache = LRUCache(cache_size)

    def annotate(self, text: str) -> Sentence:
        """Run the full chain on one question (memoized on the text)."""
        sentence = self._cache.get(text)
        if sentence is not None:
            return sentence
        sentence = self.annotate_uncached(text)
        self._cache.put(text, sentence)
        return sentence

    def annotate_uncached(self, text: str) -> Sentence:
        """Run the full chain, bypassing (and not filling) the memo."""
        tokens, mentions = self._tokenize_and_tag(text)
        graph = self._parser.parse(tokens)
        return Sentence(text=text, tokens=tokens, graph=graph, mentions=mentions)

    def annotate_shallow(self, text: str) -> Sentence:
        """Degraded-mode annotation: tokenise, chunk and tag — no parse.

        Used by the reliability layer's fallback ladder when full
        annotation fails: the returned sentence carries a flat dependency
        graph (no arcs, no root, template ``"shallow-fallback"``) that the
        keyword pattern extractor can still work with.  Never cached — the
        memo must only ever hold full annotations, so a fault during
        annotation can't poison later clean runs.
        """
        tokens, mentions = self._tokenize_and_tag(text)
        graph = DependencyGraph(tokens, root=None)
        graph.template = "shallow-fallback"
        return Sentence(text=text, tokens=tokens, graph=graph, mentions=mentions)

    def _tokenize_and_tag(self, text: str) -> tuple[list[Token], list[Mention]]:
        """The pre-parse half of the chain, shared by both annotate modes."""
        raw_tokens = tokenize(text)
        merged, __ = self._merge_entities(raw_tokens)
        tags = self._tagger.tag([surface for surface, __ in merged])

        tokens: list[Token] = []
        mentions: list[Mention] = []
        for index, ((surface, candidates), pos) in enumerate(zip(merged, tags)):
            if candidates is not None:
                pos = "NNP"
                tokens.append(Token(index, surface, surface, pos, entity=True))
                mentions.append(Mention(index, surface, candidates))
            else:
                tokens.append(Token(index, surface, lemmatize(surface, pos), pos))
        return tokens, mentions

    # ------------------------------------------------------------------

    def _merge_entities(
        self, raw_tokens: list[str]
    ) -> tuple[list[tuple[str, list[IRI] | None]], list[tuple[int, int]]]:
        """Merge maximal gazetteer mentions into single pseudo-tokens.

        Only spans containing a capitalised word are merged, so generic
        lower-case words that happen to be entity labels ("bad", "snow")
        never hijack the parse.
        """
        if self._gazetteer is None:
            return [(token, None) for token in raw_tokens], []
        merged: list[tuple[str, list[IRI] | None]] = []
        spans: list[tuple[int, int]] = []
        index = 0
        while index < len(raw_tokens):
            match = self._longest_mention(raw_tokens, index)
            if match is not None:
                end, candidates = match
                surface = " ".join(raw_tokens[index:end])
                merged.append((surface, candidates))
                spans.append((index, end))
                index = end
            else:
                merged.append((raw_tokens[index], None))
                index += 1
        return merged, spans

    def _longest_mention(
        self, tokens: list[str], start: int
    ) -> tuple[int, list[IRI]] | None:
        assert self._gazetteer is not None
        longest = min(self._gazetteer.max_words, len(tokens) - start)
        for width in range(longest, 0, -1):
            span = tokens[start:start + width]
            if any(not token or not (token[0].isalnum()) for token in span):
                continue  # punctuation can never be part of a mention
            if not any(token[0].isupper() for token in span):
                continue
            # Skip spans that are pure question machinery even if an entity
            # label collides with them (e.g. a band called "Who").
            if width == 1 and span[0].lower() in _STOP_MENTIONS:
                continue
            candidates = self._gazetteer.candidates(" ".join(span))
            if candidates:
                return (start + width, candidates)
        return None


_STOP_MENTIONS = {
    "who", "what", "which", "where", "when", "how", "is", "are", "was",
    "were", "the", "a", "an", "of", "in", "by", "give", "me",
}

"""POS lexicon for the question register.

Closed-class words are enumerated exhaustively; open-class entries cover the
vocabulary that question answering over DBpedia actually meets (verbs of
creation/location/biography, measurement nouns and adjectives).  Words not
listed here fall to the suffix guesser in :mod:`repro.nlp.postagger`.

Tags are Penn Treebank: DT, IN, WDT, WP, WRB, VB, VBD, VBZ, VBP, VBN, VBG,
NN, NNS, NNP, JJ, RB, CD, PRP, TO, CC, MD, EX.
"""

from __future__ import annotations

#: word (lower-case) -> preferred tag sequence (first = default).
LEXICON: dict[str, tuple[str, ...]] = {}


def _add(tag: str, *words: str) -> None:
    for word in words:
        existing = LEXICON.get(word, ())
        if tag not in existing:
            LEXICON[word] = existing + (tag,)


# -- closed classes ----------------------------------------------------------

_add("WDT", "which", "what")
_add("WP", "who", "whom", "whose")
_add("WRB", "where", "when", "why", "how")
_add("DT", "the", "a", "an", "all", "every", "some", "any", "this", "that",
     "these", "those", "each", "no", "both")
_add("IN", "of", "in", "on", "at", "by", "from", "with", "about", "for",
     "into", "through", "during", "before", "after", "between", "against",
     "near", "since", "as", "than")
_add("TO", "to")
_add("CC", "and", "or", "but", "nor")
_add("PRP", "i", "you", "he", "she", "it", "we", "they", "me", "him", "her",
     "us", "them")
_add("PRP$", "my", "your", "his", "its", "our", "their")
_add("EX", "there")
_add("MD", "can", "could", "will", "would", "shall", "should", "may",
     "might", "must")
_add("RB", "not", "still", "also", "currently", "often", "never", "most",
     "more", "first", "last", "now", "here", "alive")  # 'alive' see below

# 'alive' is predicative-only: Penn tags it JJ; list JJ first.
LEXICON["alive"] = ("JJ",)

# Auxiliaries and copulas, tagged by form.
_add("VBZ", "is", "does", "has")
_add("VBP", "are", "do", "have", "am")
_add("VBD", "was", "were", "did", "had")
_add("VB", "be")
_add("VBN", "been")
_add("VBG", "being")

# -- interrogative quantifier ----------------------------------------------

_add("JJ", "many", "much")

# -- open classes: verbs -----------------------------------------------------
# (base, past, past-participle, 3rd-sg, gerund); regular forms included so
# the tagger does not depend on the guesser for common question verbs.

_VERBS: tuple[tuple[str, str, str, str, str], ...] = (
    ("write", "wrote", "written", "writes", "writing"),
    ("bear", "bore", "born", "bears", "bearing"),
    ("die", "died", "died", "dies", "dying"),
    ("live", "lived", "lived", "lives", "living"),
    ("create", "created", "created", "creates", "creating"),
    ("make", "made", "made", "makes", "making"),
    ("found", "founded", "founded", "founds", "founding"),
    ("establish", "established", "established", "establishes", "establishing"),
    ("develop", "developed", "developed", "develops", "developing"),
    ("design", "designed", "designed", "designs", "designing"),
    ("direct", "directed", "directed", "directs", "directing"),
    ("produce", "produced", "produced", "produces", "producing"),
    ("publish", "published", "published", "publishes", "publishing"),
    ("release", "released", "released", "releases", "releasing"),
    ("star", "starred", "starred", "stars", "starring"),
    ("play", "played", "played", "plays", "playing"),
    ("act", "acted", "acted", "acts", "acting"),
    ("compose", "composed", "composed", "composes", "composing"),
    ("paint", "painted", "painted", "paints", "painting"),
    ("invent", "invented", "invented", "invents", "inventing"),
    ("discover", "discovered", "discovered", "discovers", "discovering"),
    ("build", "built", "built", "builds", "building"),
    ("construct", "constructed", "constructed", "constructs", "constructing"),
    ("launch", "launched", "launched", "launches", "launching"),
    ("cross", "crossed", "crossed", "crosses", "crossing"),
    ("flow", "flowed", "flowed", "flows", "flowing"),
    ("start", "started", "started", "starts", "starting"),
    ("begin", "began", "begun", "begins", "beginning"),
    ("end", "ended", "ended", "ends", "ending"),
    ("lead", "led", "led", "leads", "leading"),
    ("govern", "governed", "governed", "governs", "governing"),
    ("rule", "ruled", "ruled", "rules", "ruling"),
    ("own", "owned", "owned", "owns", "owning"),
    ("marry", "married", "married", "marries", "marrying"),
    ("kill", "killed", "killed", "kills", "killing"),
    ("win", "won", "won", "wins", "winning"),
    ("locate", "located", "located", "locates", "locating"),
    ("situate", "situated", "situated", "situates", "situating"),
    ("border", "bordered", "bordered", "borders", "bordering"),
    ("contain", "contained", "contained", "contains", "containing"),
    ("include", "included", "included", "includes", "including"),
    ("give", "gave", "given", "gives", "giving"),
    ("show", "showed", "shown", "shows", "showing"),
    ("list", "listed", "listed", "lists", "listing"),
    ("name", "named", "named", "names", "naming"),
    ("call", "called", "called", "calls", "calling"),
    ("know", "knew", "known", "knows", "knowing"),
    ("come", "came", "come", "comes", "coming"),
    ("go", "went", "gone", "goes", "going"),
    ("take", "took", "taken", "takes", "taking"),
    ("serve", "served", "served", "serves", "serving"),
    ("belong", "belonged", "belonged", "belongs", "belonging"),
    ("speak", "spoke", "spoken", "speaks", "speaking"),
    ("sing", "sang", "sung", "sings", "singing"),
    ("record", "recorded", "recorded", "records", "recording"),
)

for base, past, participle, third, gerund in _VERBS:
    _add("VB", base)
    _add("VBP", base)
    _add("VBD", past)
    _add("VBN", participle)
    _add("VBZ", third)
    _add("VBG", gerund)

# -- open classes: nouns ------------------------------------------------------

_NOUNS = (
    "book", "novel", "author", "writer", "poet", "film", "movie", "actor",
    "actress", "director", "producer", "song", "album", "band", "member",
    "game", "show", "series", "episode", "character", "creator", "painting",
    "city", "town", "capital", "country", "state", "place", "region",
    "river", "lake", "mountain", "bridge", "building", "tower", "island",
    "sea", "desert", "airport", "university", "college", "school", "company",
    "organization", "organisation", "studio", "club", "team", "party",
    "person", "people", "man", "woman", "president", "mayor", "governor",
    "chancellor", "minister", "leader", "king", "queen", "monarch", "wife",
    "husband", "spouse", "child", "children", "daughter", "son", "parent",
    "father", "mother", "brother", "sister", "founder", "owner", "designer",
    "architect", "scientist", "astronaut", "player", "athlete", "model",
    "singer", "musician", "artist", "politician", "journalist",
    "height", "weight", "population", "area", "elevation", "length",
    "depth", "size", "number", "amount", "total", "age", "date", "year",
    "time", "birthday", "birthplace", "name", "label", "currency",
    "language", "inhabitant", "employee", "student", "page", "floor",
    "runtime", "budget", "revenue", "award", "prize", "mission", "bird",
    "animal", "wingspan", "car", "automobile", "website", "abbreviation",
)
for noun in _NOUNS:
    _add("NN", noun)

_PLURAL_NOUNS = (
    "books", "novels", "authors", "writers", "films", "movies", "actors",
    "directors", "songs", "albums", "bands", "members", "games", "shows",
    "cities", "towns", "capitals", "countries", "states", "places",
    "rivers", "lakes", "mountains", "bridges", "companies", "clubs",
    "teams", "presidents", "mayors", "leaders", "kings", "queens",
    "children", "daughters", "sons", "founders", "owners", "players",
    "models", "singers", "artists", "awards", "prizes", "missions",
    "birds", "animals", "cars", "universities", "organizations",
    "languages", "inhabitants", "employees", "students", "pages", "floors",
)
for noun in _PLURAL_NOUNS:
    _add("NNS", noun)

# -- open classes: adjectives -------------------------------------------------

_ADJECTIVES = (
    "tall", "high", "big", "large", "small", "long", "short", "deep",
    "heavy", "old", "young", "new", "rich", "famous", "populous", "wide",
    "official", "national", "american", "german", "turkish", "english",
    "french", "italian", "spanish", "dead", "alive", "married", "single",
    "highest", "largest", "longest", "deepest", "oldest", "biggest",
    "tallest", "smallest", "richest", "most",
)
for adjective in _ADJECTIVES:
    _add("JJ", adjective)

# Superlatives are JJS.
for superlative in ("highest", "largest", "longest", "deepest", "oldest",
                    "biggest", "tallest", "smallest", "richest"):
    LEXICON[superlative] = ("JJS",)

"""Rule-based typed-dependency parser for English questions.

The parser chunks the tagged sentence into items (noun phrases, verbs,
auxiliaries, prepositions, wh-words) and matches the item sequence against
an ordered cascade of question templates, each of which emits the full
Stanford-style dependency analysis.  The cascade covers the "basic and
intermediate grammar structures" of section 2.1:

* passive wh-questions         "Which book is written by Orhan Pamuk?"
* active wh-questions          "Who wrote The Pillars of the Earth?"
* copular definition/role      "Who is the mayor of Berlin?"
* measurement questions        "How tall is Michael Jordan?"
* counting questions           "How many pages does War and Peace have?"
* where/when with do-support   "Where did Abraham Lincoln die?"
* where/when passives          "Where was Michael Jackson born?"
* fronted-object questions     "Which river does the Brooklyn Bridge cross?"
* boolean copulars             "Is Frank Herbert still alive?"
* fronted-preposition copulars "In which country is the Limerick Lake?"

Anything else — superlatives, relative clauses, conjunctions, imperative
"Give me all ..." requests — receives a flat fallback parse from which no
triple pattern can be extracted.  That deliberate incompleteness mirrors
the coverage limits the paper reports (recall in Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.nlp.dependencies import DependencyGraph, Token

_NP_TAGS = {"DT", "JJ", "JJS", "CD", "NN", "NNS", "NNP", "NNPS", "PRP$"}
_NOUN_TAGS = {"NN", "NNS", "NNP", "NNPS"}


@dataclass
class _Item:
    """One chunk of the item sequence."""

    kind: str  # NP, V, BE, DO, HAVE_AUX, P, WP, WRB, ADV, ADJ, HOWADJ, OTHER
    tokens: list[Token] = field(default_factory=list)
    head: Token | None = None
    wh: Token | None = None        # wh-determiner inside an NP ("which book")
    how: Token | None = None       # 'how' of a how-many NP
    many: Token | None = None      # 'many' of a how-many NP
    adjective: Token | None = None  # the JJ of a HOWADJ item

    @property
    def first(self) -> Token:
        return self.tokens[0]


class DependencyParser:
    """Parses tagged/lemmatised token lists into dependency graphs."""

    def parse(self, tokens: list[Token]) -> DependencyGraph:
        graph = DependencyGraph(tokens)
        content = [t for t in tokens if t.pos not in (".", ",", ":")]
        items = self._chunk(content)
        matched = self._match_templates(graph, items)
        if not matched:
            self._fallback(graph, content)
        return graph

    # ------------------------------------------------------------------
    # Chunking
    # ------------------------------------------------------------------

    def _chunk(self, tokens: list[Token]) -> list[_Item]:
        items: list[_Item] = []
        i = 0
        while i < len(tokens):
            token = tokens[i]
            lower = token.text.lower()

            # "how many pages" / "how much" -> one counting-NP item.
            if (
                token.pos == "WRB"
                and lower == "how"
                and i + 1 < len(tokens)
                and tokens[i + 1].text.lower() in ("many", "much")
            ):
                j = i + 2
                nouns: list[Token] = []
                while j < len(tokens) and tokens[j].pos in _NOUN_TAGS:
                    nouns.append(tokens[j])
                    j += 1
                if nouns:
                    item = _Item(
                        "NP",
                        tokens=[token, tokens[i + 1], *nouns],
                        head=nouns[-1],
                        how=token,
                        many=tokens[i + 1],
                    )
                    items.append(item)
                    i = j
                    continue

            # "how tall" -> HOWADJ.
            if (
                token.pos == "WRB"
                and lower == "how"
                and i + 1 < len(tokens)
                and tokens[i + 1].pos.startswith("JJ")
            ):
                items.append(_Item(
                    "HOWADJ", tokens=[token, tokens[i + 1]],
                    how=token, adjective=tokens[i + 1],
                ))
                i += 2
                continue

            # "which book" / "what city" -> NP with wh-determiner.
            if token.pos == "WDT" and i + 1 < len(tokens) and (
                tokens[i + 1].pos in _NP_TAGS
            ):
                j = i + 1
                np_tokens = [token]
                while j < len(tokens) and tokens[j].pos in _NP_TAGS:
                    np_tokens.append(tokens[j])
                    j += 1
                head = self._np_head(np_tokens)
                if head is not None:
                    items.append(_Item("NP", tokens=np_tokens, head=head, wh=token))
                    i = j
                    continue
                # 'which' with no nominal material: treat as WP below.

            # Plain NP chunk.  A determiner after nominal material starts a
            # fresh NP ("Berlin | the capital"), as does any token following
            # a merged entity — entity mentions are complete nominals.
            if token.pos in _NP_TAGS:
                j = i
                np_tokens = []
                while j < len(tokens) and tokens[j].pos in _NP_TAGS:
                    if np_tokens and tokens[j].pos == "DT":
                        break
                    if np_tokens and np_tokens[-1].entity:
                        break
                    if np_tokens and tokens[j].entity and np_tokens[-1].pos in _NOUN_TAGS:
                        break
                    np_tokens.append(tokens[j])
                    j += 1
                head = self._np_head(np_tokens)
                if head is not None:
                    items.append(_Item("NP", tokens=np_tokens, head=head))
                    i = j
                    continue
                # Adjective-only run (e.g. predicative "alive").
                items.append(_Item("ADJ", tokens=np_tokens, head=np_tokens[-1]))
                i = j
                continue

            if token.pos.startswith("VB"):
                if token.lemma == "be":
                    items.append(_Item("BE", tokens=[token], head=token))
                elif token.lemma == "do":
                    items.append(_Item("DO", tokens=[token], head=token))
                else:
                    items.append(_Item("V", tokens=[token], head=token))
            elif token.pos in ("IN", "TO"):
                items.append(_Item("P", tokens=[token], head=token))
            elif token.pos in ("WP", "WDT"):
                items.append(_Item("WP", tokens=[token], head=token))
            elif token.pos == "WRB":
                items.append(_Item("WRB", tokens=[token], head=token))
            elif token.pos == "RB":
                items.append(_Item("ADV", tokens=[token], head=token))
            else:
                items.append(_Item("OTHER", tokens=[token], head=token))
            i += 1
        return items

    @staticmethod
    def _np_head(np_tokens: list[Token]) -> Token | None:
        nouns = [t for t in np_tokens if t.pos in _NOUN_TAGS]
        return nouns[-1] if nouns else None

    # ------------------------------------------------------------------
    # NP-internal dependencies
    # ------------------------------------------------------------------

    def _emit_np(self, graph: DependencyGraph, np: _Item) -> Token:
        head = np.head
        assert head is not None
        for token in np.tokens:
            if token is head:
                continue
            if token is np.wh or token.pos == "DT" or token.pos == "PRP$":
                graph.add("det", head.index, token.index)
            elif token is np.many:
                graph.add("amod", head.index, token.index)
            elif token is np.how:
                assert np.many is not None
                graph.add("advmod", np.many.index, token.index)
            elif token.pos.startswith("JJ"):
                graph.add("amod", head.index, token.index)
            elif token.pos == "CD":
                graph.add("num", head.index, token.index)
            elif token.pos in _NOUN_TAGS:
                graph.add("nn", head.index, token.index)
        return head

    # ------------------------------------------------------------------
    # Template cascade
    # ------------------------------------------------------------------

    def _match_templates(self, graph: DependencyGraph, items: list[_Item]) -> bool:
        kinds = [item.kind for item in items]
        templates = (
            self._t_passive_wh,
            self._t_who_passive,
            self._t_wh_copula_np,
            self._t_howadj,
            self._t_howmany_do_have,
            self._t_wrb_do_verb,
            self._t_wrb_be_passive,
            self._t_fronted_object,
            self._t_wh_active,
            self._t_who_active,
            self._t_boolean_copula,
            self._t_boolean_passive,
            self._t_fronted_prep_copula,
            self._t_wrb_be_np,
            self._t_np_verb_prep,
        )
        for template in templates:
            mark = graph.mark()
            if template(graph, items, kinds):
                graph.template = template.__name__.lstrip("_")
                return True
            graph.rollback(mark)  # discard partial emissions of failed matches
        return False

    # T1: [NP-wh] [BE] [VBN] ([P] [NP])?   "Which book is written by X?"
    def _t_passive_wh(self, graph, items, kinds) -> bool:
        if kinds[:3] != ["NP", "BE", "V"]:
            return False
        if items[0].wh is None or items[2].head.pos != "VBN":
            return False
        verb = items[2].head
        graph.set_root(verb.index)
        subject = self._emit_np(graph, items[0])
        graph.add("nsubjpass", verb.index, subject.index)
        graph.add("auxpass", verb.index, items[1].head.index)
        rest = items[3:]
        if len(rest) >= 2 and rest[0].kind == "P" and rest[1].kind == "NP":
            prep = rest[0].head
            graph.add("prep", verb.index, prep.index)
            pobj = self._emit_np(graph, rest[1])
            graph.add("pobj", prep.index, pobj.index)
            rest = rest[2:]
        return not rest

    # T2: [WP] [BE] [NP] [VBN] ([P])?   "Who was Dune written by?"
    def _t_who_passive(self, graph, items, kinds) -> bool:
        if kinds[:4] != ["WP", "BE", "NP", "V"]:
            return False
        if items[3].head.pos != "VBN":
            return False
        verb = items[3].head
        graph.set_root(verb.index)
        subject = self._emit_np(graph, items[2])
        graph.add("nsubjpass", verb.index, subject.index)
        graph.add("auxpass", verb.index, items[1].head.index)
        rest = items[4:]
        if rest and rest[0].kind == "P":
            prep = rest[0].head
            graph.add("prep", verb.index, prep.index)
            graph.add("pobj", prep.index, items[0].head.index)
            rest = rest[1:]
        else:
            graph.add("dobj", verb.index, items[0].head.index)
        return not rest

    # T4/T5: [WH] [BE] [NP] ([P] [NP])*   "Who is the mayor of Berlin?"
    def _t_wh_copula_np(self, graph, items, kinds) -> bool:
        if len(kinds) < 3 or kinds[0] != "WP" or kinds[1] != "BE" or kinds[2] != "NP":
            return False
        if items[2].wh is not None:
            return False
        head = self._emit_np(graph, items[2])
        graph.set_root(head.index)
        graph.add("nsubj", head.index, items[0].head.index)
        graph.add("cop", head.index, items[1].head.index)
        return self._attach_prep_chain(graph, head, items[3:])

    # T6: [HOWADJ] [BE] [NP]   "How tall is Michael Jordan?"
    def _t_howadj(self, graph, items, kinds) -> bool:
        if kinds[:3] != ["HOWADJ", "BE", "NP"] or len(items) != 3:
            return False
        adjective = items[0].adjective
        graph.set_root(adjective.index)
        graph.add("advmod", adjective.index, items[0].how.index)
        graph.add("cop", adjective.index, items[1].head.index)
        subject = self._emit_np(graph, items[2])
        graph.add("nsubj", adjective.index, subject.index)
        return True

    # T7: [NP-howmany] [DO] [NP] [V]   "How many pages does X have?"
    def _t_howmany_do_have(self, graph, items, kinds) -> bool:
        if kinds[:4] != ["NP", "DO", "NP", "V"] or len(items) != 4:
            return False
        if items[0].many is None:
            return False
        verb = items[3].head
        graph.set_root(verb.index)
        counted = self._emit_np(graph, items[0])
        graph.add("dobj", verb.index, counted.index)
        graph.add("aux", verb.index, items[1].head.index)
        subject = self._emit_np(graph, items[2])
        graph.add("nsubj", verb.index, subject.index)
        return True

    # T9: [WRB] [DO] [NP] [V] ([P])?   "Where did Abraham Lincoln die?"
    def _t_wrb_do_verb(self, graph, items, kinds) -> bool:
        if kinds[:4] != ["WRB", "DO", "NP", "V"]:
            return False
        verb = items[3].head
        graph.set_root(verb.index)
        graph.add("advmod", verb.index, items[0].head.index)
        graph.add("aux", verb.index, items[1].head.index)
        subject = self._emit_np(graph, items[2])
        graph.add("nsubj", verb.index, subject.index)
        rest = items[4:]
        if rest and rest[0].kind == "P":
            graph.add("prep", verb.index, rest[0].head.index)
            rest = rest[1:]
        return not rest

    # T10: [WRB] [BE] [NP] [VBN] ([P])?   "Where was Michael Jackson born?"
    def _t_wrb_be_passive(self, graph, items, kinds) -> bool:
        if kinds[:4] != ["WRB", "BE", "NP", "V"]:
            return False
        if items[3].head.pos != "VBN":
            return False
        verb = items[3].head
        graph.set_root(verb.index)
        graph.add("advmod", verb.index, items[0].head.index)
        graph.add("auxpass", verb.index, items[1].head.index)
        subject = self._emit_np(graph, items[2])
        graph.add("nsubjpass", verb.index, subject.index)
        rest = items[4:]
        if rest and rest[0].kind == "P":
            graph.add("prep", verb.index, rest[0].head.index)
            rest = rest[1:]
        return not rest

    # T15: [NP-wh] [DO] [NP] [V] ([P] [NP])?  "Which river does the Brooklyn Bridge cross?"
    def _t_fronted_object(self, graph, items, kinds) -> bool:
        if kinds[:4] != ["NP", "DO", "NP", "V"]:
            return False
        if items[0].wh is None:
            return False
        verb = items[3].head
        graph.set_root(verb.index)
        fronted = self._emit_np(graph, items[0])
        graph.add("dobj", verb.index, fronted.index)
        graph.add("aux", verb.index, items[1].head.index)
        subject = self._emit_np(graph, items[2])
        graph.add("nsubj", verb.index, subject.index)
        return self._attach_prep_chain(graph, verb, items[4:])

    # T16/T17: [NP-wh] [V] ...   "Which company makes the iPhone?"
    def _t_wh_active(self, graph, items, kinds) -> bool:
        if len(kinds) < 2 or kinds[0] != "NP" or kinds[1] != "V":
            return False
        if items[0].wh is None or items[1].head.pos == "VBN":
            return False
        verb = items[1].head
        graph.set_root(verb.index)
        subject = self._emit_np(graph, items[0])
        graph.add("nsubj", verb.index, subject.index)
        rest = items[2:]
        if rest and rest[0].kind == "NP":
            obj = self._emit_np(graph, rest[0])
            graph.add("dobj", verb.index, obj.index)
            rest = rest[1:]
        return self._attach_prep_chain(graph, verb, rest)

    # T3: [WP] [V] [NP] ([P] [NP])?   "Who wrote The Pillars of the Earth?"
    def _t_who_active(self, graph, items, kinds) -> bool:
        if len(kinds) < 3 or kinds[0] != "WP" or kinds[1] != "V" or kinds[2] != "NP":
            return False
        if items[1].head.pos == "VBN":
            return False
        verb = items[1].head
        graph.set_root(verb.index)
        graph.add("nsubj", verb.index, items[0].head.index)
        obj = self._emit_np(graph, items[2])
        graph.add("dobj", verb.index, obj.index)
        return self._attach_prep_chain(graph, verb, items[3:])

    # T12: [BE] [NP] [ADV]? [ADJ|NP]   "Is Frank Herbert still alive?"
    def _t_boolean_copula(self, graph, items, kinds) -> bool:
        if len(kinds) < 3 or kinds[0] != "BE" or kinds[1] != "NP":
            return False
        rest = items[2:]
        adverb = None
        if rest and rest[0].kind == "ADV":
            adverb = rest[0].head
            rest = rest[1:]
        if not rest or rest[0].kind not in ("ADJ", "NP"):
            return False
        predicate_item = rest[0]
        if predicate_item.kind == "NP":
            predicate = self._emit_np(graph, predicate_item)
        else:
            predicate = predicate_item.head
        graph.set_root(predicate.index)
        graph.add("cop", predicate.index, items[0].head.index)
        subject = self._emit_np(graph, items[1])
        graph.add("nsubj", predicate.index, subject.index)
        if adverb is not None:
            graph.add("advmod", predicate.index, adverb.index)
        return self._attach_prep_chain(graph, predicate, rest[1:])

    # T12b: [BE] [NP] [VBN] ([P] [NP])?   "Was Abraham Lincoln born in Washington?"
    def _t_boolean_passive(self, graph, items, kinds) -> bool:
        if kinds[:3] != ["BE", "NP", "V"]:
            return False
        if items[2].head.pos != "VBN":
            return False
        verb = items[2].head
        graph.set_root(verb.index)
        graph.add("auxpass", verb.index, items[0].head.index)
        subject = self._emit_np(graph, items[1])
        graph.add("nsubjpass", verb.index, subject.index)
        return self._attach_prep_chain(graph, verb, items[3:])

    # T14: [P] [NP-wh] [BE] [NP]   "In which country is the Limerick Lake?"
    def _t_fronted_prep_copula(self, graph, items, kinds) -> bool:
        if kinds[:4] != ["P", "NP", "BE", "NP"] or len(items) != 4:
            return False
        if items[1].wh is None:
            return False
        head = self._emit_np(graph, items[1])
        graph.set_root(head.index)
        graph.add("prep", head.index, items[0].head.index)
        graph.add("cop", head.index, items[2].head.index)
        subject = self._emit_np(graph, items[3])
        graph.add("nsubj", head.index, subject.index)
        return True

    # T11: [WRB] [BE] [NP] ([P] [NP])*   "Where is the Eiffel Tower?"
    def _t_wrb_be_np(self, graph, items, kinds) -> bool:
        if len(kinds) < 3 or kinds[0] != "WRB" or kinds[1] != "BE" or kinds[2] != "NP":
            return False
        head = self._emit_np(graph, items[2])
        graph.set_root(head.index)
        graph.add("advmod", head.index, items[0].head.index)
        graph.add("cop", head.index, items[1].head.index)
        return self._attach_prep_chain(graph, head, items[3:])

    # T8: [NP] [V] [P] [NP]   "How many people live in Istanbul?" (non-wh NP V)
    def _t_np_verb_prep(self, graph, items, kinds) -> bool:
        if kinds[:2] != ["NP", "V"]:
            return False
        verb = items[1].head
        graph.set_root(verb.index)
        subject = self._emit_np(graph, items[0])
        graph.add("nsubj", verb.index, subject.index)
        rest = items[2:]
        if rest and rest[0].kind == "NP":
            obj = self._emit_np(graph, rest[0])
            graph.add("dobj", verb.index, obj.index)
            rest = rest[1:]
        return self._attach_prep_chain(graph, verb, rest)

    # -- shared helpers ----------------------------------------------------

    def _attach_prep_chain(self, graph, head: Token, rest: list[_Item]) -> bool:
        """Attach trailing ([P] [NP])* pairs; fail on anything else."""
        index = 0
        attach_to = head
        while index < len(rest):
            if rest[index].kind != "P":
                return False
            prep = rest[index].head
            graph.add("prep", attach_to.index, prep.index)
            index += 1
            if index < len(rest) and rest[index].kind == "NP":
                pobj = self._emit_np(graph, rest[index])
                graph.add("pobj", prep.index, pobj.index)
                attach_to = pobj
                index += 1
            elif index < len(rest):
                return False
        return True

    def _fallback(self, graph: DependencyGraph, content: list[Token]) -> None:
        """Flat parse: root = first verb (else first noun, else first token),
        everything else attached as the untyped 'dep' relation."""
        graph.template = "fallback"
        if not content:
            return
        root = next(
            (t for t in content if t.is_verb()),
            next((t for t in content if t.is_noun()), content[0]),
        )
        graph.set_root(root.index)
        for token in content:
            if token is not root:
                graph.add("dep", root.index, token.index)

"""Tokenisation for English questions.

Splits on whitespace and punctuation, keeps contractions together in the
Penn style (``'s``, ``n't`` split off), and preserves original casing —
capitalisation is a feature the tagger and the entity spotter both use.
"""

from __future__ import annotations

import re
from functools import lru_cache

_TOKEN_RE = re.compile(
    r"""
      n't                     # negation clitic
    | '(?:s|re|ve|ll|d|m)\b   # other clitics
    | \d+(?:[.,]\d+)*         # numbers, incl. 1.98 and 1,000,000
    | \w+(?:[-.]\w+)*\.?      # words, hyphenated words, abbreviations (U.S.)
    | [^\w\s]                 # any punctuation mark
    """,
    re.VERBOSE,
)


def tokenize(text: str) -> list[str]:
    """Tokenise a question.

    >>> tokenize("Which book is written by Orhan Pamuk?")
    ['Which', 'book', 'is', 'written', 'by', 'Orhan', 'Pamuk', '?']
    >>> tokenize("How tall is Michael Jordan?")
    ['How', 'tall', 'is', 'Michael', 'Jordan', '?']
    >>> tokenize("Is Frank Herbert still alive?")
    ['Is', 'Frank', 'Herbert', 'still', 'alive', '?']
    """
    # Callers may mutate the returned list (the pipeline merges entity
    # spans in place), so the memoized tuple is copied out.
    return list(_tokenize_cached(text))


@lru_cache(maxsize=4096)
def _tokenize_cached(text: str) -> tuple[str, ...]:
    """Memoized scan; ``_tokenize_cached.__wrapped__`` is the raw rule set
    (the cache-agreement test compares both)."""
    # Detach the negation clitic before scanning — "Isn't" -> "Is n't" —
    # because the leftmost-match scan cannot split it otherwise.
    text = re.sub(r"(\w)n't\b", r"\1 n't", text)
    tokens = _TOKEN_RE.findall(text)
    # A trailing '.' glued to a normal word is sentence punctuation, not an
    # abbreviation ("die." -> "die", "."); keep genuine abbreviations (U.S.).
    out: list[str] = []
    for token in tokens:
        if (
            token.endswith(".")
            and len(token) > 2
            and "." not in token[:-1]
            and token[:-1].isalpha()
        ):
            out.append(token[:-1])
            out.append(".")
        else:
            out.append(token)
    return tuple(out)

"""Question-oriented NLP pipeline (Stanford CoreNLP substitute).

The paper's triple-pattern extraction consumes POS tags and typed
dependencies produced by Stanford CoreNLP for *questions* — a narrow
grammatical register.  This package reimplements exactly that surface:

* :mod:`repro.nlp.tokenizer` — tokenisation
* :mod:`repro.nlp.postagger` — lexicon + suffix + contextual POS tagging
  (Penn Treebank tags)
* :mod:`repro.nlp.morphology` — rule-based English lemmatiser
* :mod:`repro.nlp.depparser` — rule-based typed-dependency parser emitting
  Stanford dependency labels (nsubj, nsubjpass, dobj, pobj, prep, det, cop,
  auxpass, amod, nn, advmod, attr, ...)
* :mod:`repro.nlp.pipeline` — the annotator chain, including gazetteer-based
  multi-word entity chunking (the CoreNLP NER/MWE counterpart)

The parser deliberately covers "basic and intermediate grammar structures"
(section 2.1 of the paper) and produces a degenerate flat parse otherwise;
the resulting coverage limits are part of what Table 2 measures.
"""

from repro.nlp.tokenizer import tokenize
from repro.nlp.morphology import lemmatize
from repro.nlp.postagger import PosTagger, tag
from repro.nlp.dependencies import Dependency, DependencyGraph, Token
from repro.nlp.depparser import DependencyParser
from repro.nlp.pipeline import Pipeline, Sentence

__all__ = [
    "tokenize",
    "lemmatize",
    "tag",
    "PosTagger",
    "Token",
    "Dependency",
    "DependencyGraph",
    "DependencyParser",
    "Pipeline",
    "Sentence",
]

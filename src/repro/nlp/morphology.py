"""Rule-based English lemmatiser.

Maps inflected forms to lemmas using an irregular-form table plus standard
suffix stripping, with the POS tag steering noun vs verb rules.  The triple
extraction and property mapping steps match lemmas ("written" -> "write"
feeds PATTY lookup and string similarity on DBpedia property names).
"""

from __future__ import annotations

from functools import lru_cache

#: Irregular verb forms -> lemma.
IRREGULAR_VERBS: dict[str, str] = {
    "was": "be", "were": "be", "is": "be", "are": "be", "am": "be",
    "been": "be", "being": "be",
    "did": "do", "does": "do", "done": "do",
    "had": "have", "has": "have",
    "wrote": "write", "written": "write",
    "bore": "bear", "born": "bear", "borne": "bear",
    "made": "make", "gave": "give", "given": "give",
    "took": "take", "taken": "take",
    "went": "go", "gone": "go",
    "came": "come", "knew": "know", "known": "know",
    "led": "lead", "won": "win", "built": "build",
    "spoke": "speak", "spoken": "speak",
    "sang": "sing", "sung": "sing",
    "began": "begin", "begun": "begin",
    "showed": "show", "shown": "show",
    "died": "die", "dies": "die", "dying": "die",
    "writing": "write", "writes": "write",
    "lived": "live", "lives": "live",
    "starred": "star", "starring": "star",
    "founded": "found", "founds": "found", "founding": "found",
}

#: Irregular noun plurals -> singular.
IRREGULAR_NOUNS: dict[str, str] = {
    "children": "child", "people": "person", "men": "man", "women": "woman",
    "wives": "wife", "lives": "life", "countries": "country",
    "cities": "city", "companies": "company", "universities": "university",
    "parties": "party", "movies": "movie", "series": "series",
    "feet": "foot", "teeth": "tooth",
}

_VOWELS = set("aeiou")


def _lemmatize_verb(word: str) -> str:
    if word in IRREGULAR_VERBS:
        return IRREGULAR_VERBS[word]
    if word.endswith("ies") and len(word) > 4:
        return word[:-3] + "y"
    if word.endswith("sses") or word.endswith("shes") or word.endswith("ches") or word.endswith("xes"):
        return word[:-2]
    if word.endswith("es") and len(word) > 3 and word[-3] not in _VOWELS:
        # crosses -> cross handled above; releases -> release needs the e.
        return word[:-1]
    if word.endswith("s") and not word.endswith("ss") and len(word) > 3:
        return word[:-1]
    if word.endswith("ied") and len(word) > 4:
        return word[:-3] + "y"
    if word.endswith("ed") and len(word) > 3:
        stem = word[:-2]
        if len(stem) > 2 and stem[-1] == stem[-2] and stem[-1] not in _VOWELS:
            return stem[:-1]  # starred -> star
        if len(stem) > 2 and stem[-1] not in _VOWELS and stem[-2] in _VOWELS:
            # created -> create? No: 'creat' + e.  Restore 'e' when the stem
            # ends consonant-after-vowel and the e-form is more plausible.
            return stem + "e" if word.endswith(("ated", "ised", "ized", "osed", "uced", "aced", "ired")) else stem
        if stem.endswith(("at", "is", "iz", "os", "uc", "ac", "ir", "as", "eas")):
            return stem + "e"
        return stem
    if word.endswith("ing") and len(word) > 4:
        stem = word[:-3]
        if len(stem) > 2 and stem[-1] == stem[-2] and stem[-1] not in _VOWELS:
            return stem[:-1]
        if stem.endswith(("at", "is", "iz", "os", "uc", "ac", "ir", "iv")):
            return stem + "e"
        return stem
    return word


def _lemmatize_noun(word: str) -> str:
    if word in IRREGULAR_NOUNS:
        return IRREGULAR_NOUNS[word]
    if word.endswith("ies") and len(word) > 4:
        return word[:-3] + "y"
    if word.endswith(("sses", "shes", "ches", "xes")):
        return word[:-2]
    if word.endswith("es") and len(word) > 3 and word.endswith(("oes",)):
        return word[:-2]
    if word.endswith("s") and not word.endswith(("ss", "us", "is")) and len(word) > 3:
        return word[:-1]
    return word


@lru_cache(maxsize=16384)
def lemmatize(word: str, pos: str = "NN") -> str:
    """Lemmatise ``word`` given its Penn tag.

    Pure suffix rules over a closed vocabulary of question words, so the
    result is memoized; ``lemmatize.__wrapped__`` is the uncached rule
    engine (the cache-agreement test exercises both).

    >>> lemmatize("written", "VBN")
    'write'
    >>> lemmatize("cities", "NNS")
    'city'
    >>> lemmatize("born", "VBN")
    'bear'
    >>> lemmatize("Istanbul", "NNP")
    'Istanbul'
    """
    if pos.startswith("NNP"):
        return word  # proper nouns keep their form (and case)
    lower = word.lower()
    if pos.startswith("VB"):
        return _lemmatize_verb(lower)
    if pos in ("NNS",):
        return _lemmatize_noun(lower)
    if pos in ("NN",):
        return lower
    return lower

"""Penn-Treebank POS tagging: lexicon + suffix guesser + contextual rules.

The design follows the classic rule-based pipeline (Brill-style): an initial
lexical assignment followed by a small set of contextual repair rules.  The
question register makes this reliable: auxiliaries, wh-words and determiners
are closed-class anchors around which the open-class tags disambiguate.
"""

from __future__ import annotations

import re

from repro.nlp.lexicon import LEXICON

_BE_FORMS = {"is", "are", "was", "were", "be", "been", "being", "am"}
_DO_FORMS = {"do", "does", "did"}
_HAVE_FORMS = {"have", "has", "had"}
_NUMBER_RE = re.compile(r"^\d+(?:[.,]\d+)*$")
_PUNCT_RE = re.compile(r"^[^\w\s]+$")


class PosTagger:
    """Tags token lists; see :func:`tag` for the convenience entry point."""

    def __init__(self, lexicon: dict[str, tuple[str, ...]] | None = None) -> None:
        self._lexicon = lexicon if lexicon is not None else LEXICON

    def tag(self, tokens: list[str]) -> list[str]:
        tags = [self._initial_tag(token, index) for index, token in enumerate(tokens)]
        self._apply_context_rules(tokens, tags)
        return tags

    # -- initial assignment ---------------------------------------------

    def _initial_tag(self, token: str, index: int) -> str:
        if _PUNCT_RE.match(token):
            return "." if token in ".?!" else token
        if _NUMBER_RE.match(token):
            return "CD"
        lower = token.lower()
        known = self._lexicon.get(lower)
        if known:
            # Mid-sentence capitalisation of an open-class word signals a
            # proper noun ("Snow" the novel vs "snow" the weather), but
            # closed-class tags and verbs keep their lexicon reading.
            if (
                token[0].isupper()
                and index > 0
                and known[0] in ("NN", "NNS", "JJ")
            ):
                return "NNP"
            return known[0]
        return self._guess(token, index)

    def _guess(self, token: str, index: int) -> str:
        if token[0].isupper():
            return "NNP"
        if token.endswith("ing") and len(token) > 4:
            return "VBG"
        if token.endswith("ed") and len(token) > 3:
            return "VBN"
        if token.endswith("ly") and len(token) > 3:
            return "RB"
        if token.endswith("est") and len(token) > 4:
            return "JJS"
        if token.endswith("s") and not token.endswith("ss") and len(token) > 3:
            return "NNS"
        return "NN"

    # -- contextual repair -------------------------------------------------

    def _apply_context_rules(self, tokens: list[str], tags: list[str]) -> None:
        for i, token in enumerate(tokens):
            lower = token.lower()
            previous_lower = tokens[i - 1].lower() if i > 0 else ""
            previous_tag = tags[i - 1] if i > 0 else ""
            alternatives = self._lexicon.get(lower, ())

            # Rule 1: past/participle split.  After a form of *be* or
            # *have* an ambiguous -ed/-en verb is a participle; after a
            # form of *do*, a modal or *to* it is the base form.
            if tags[i] in ("VBD", "VBN") or "VBN" in alternatives:
                if self._preceded_by(tokens, tags, i, _BE_FORMS | _HAVE_FORMS):
                    if "VBN" in alternatives or tags[i] in ("VBD", "VBN"):
                        tags[i] = "VBN"
                elif previous_lower in _DO_FORMS or previous_tag in ("MD", "TO"):
                    if "VB" in alternatives:
                        tags[i] = "VB"

            # Rule 2: base-form verbs after do-support, modals and 'to'.
            if tags[i] in ("VBP", "NN", "VB") and (
                previous_lower in _DO_FORMS or previous_tag in ("MD", "TO")
            ):
                if "VB" in alternatives:
                    tags[i] = "VB"

            # Rule 2b: clause-final base verb with earlier do-support
            # ("Which river does the Brooklyn Bridge cross?").
            if (
                tags[i] in ("NN", "VBP")
                and "VB" in alternatives
                and self._has_earlier_do(tokens, i)
                and self._is_clause_final(tokens, tags, i)
            ):
                tags[i] = "VB"

            # Rule 3: noun readings win right after determiners.
            if previous_tag == "DT" and ("NN" in alternatives or "NNS" in alternatives):
                if tags[i].startswith("VB"):
                    tags[i] = "NNS" if "NNS" in alternatives else "NN"

            # Rule 4: 'born' after be-form is always the passive participle.
            if lower == "born":
                tags[i] = "VBN"

            # Rule 5: VBZ/NNS ambiguity ("shows", "stars"): before an
            # auxiliary or after nominal material it is the plural noun.
            if tags[i] == "VBZ" and "NNS" in alternatives:
                next_lower = tokens[i + 1].lower() if i + 1 < len(tokens) else ""
                if (
                    next_lower in _BE_FORMS | _DO_FORMS | _HAVE_FORMS
                    or previous_tag in ("NN", "JJ", "WDT", "DT")
                ):
                    tags[i] = "NNS"

    @staticmethod
    def _preceded_by(tokens: list[str], tags: list[str], i: int, lemmas: set[str]) -> bool:
        """An auxiliary from ``lemmas`` occurs before position ``i`` with
        only nominal material (a subject) in between."""
        for j in range(i - 1, -1, -1):
            if tokens[j].lower() in lemmas:
                return True
            if tags[j].startswith("VB") or tags[j] in (".", ","):
                return False
        return False

    @staticmethod
    def _has_earlier_do(tokens: list[str], i: int) -> bool:
        return any(tokens[j].lower() in _DO_FORMS for j in range(i))

    @staticmethod
    def _is_clause_final(tokens: list[str], tags: list[str], i: int) -> bool:
        rest = tags[i + 1:]
        return all(t in (".", "IN", "TO") for t in rest)


_DEFAULT = PosTagger()


def tag(tokens: list[str]) -> list[str]:
    """Tag a token list with the default tagger.

    >>> tag(["Which", "book", "is", "written", "by", "Orhan", "Pamuk", "?"])
    ['WDT', 'NN', 'VBZ', 'VBN', 'IN', 'NNP', 'NNP', '.']
    """
    return _DEFAULT.tag(tokens)

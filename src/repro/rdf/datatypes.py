"""Typed-literal construction and native-value conversion.

DBpedia data properties carry ``xsd`` datatypes (heights as doubles,
population counts as integers, death dates as dates).  The expected-type
checker of the paper (section 2.3.2) needs to recognise numeric and date
answers, so literal/value conversion lives here in one place.
"""

from __future__ import annotations

import datetime as _dt
from typing import Any

from repro.rdf.namespaces import XSD
from repro.rdf.terms import Literal

XSD_STRING = XSD.string.value
XSD_INTEGER = XSD.integer.value
XSD_INT = XSD.int.value
XSD_NON_NEG_INTEGER = XSD.nonNegativeInteger.value
XSD_DOUBLE = XSD.double.value
XSD_DECIMAL = XSD.decimal.value
XSD_FLOAT = XSD.float.value
XSD_BOOLEAN = XSD.boolean.value
XSD_DATE = XSD.date.value
XSD_DATETIME = XSD.dateTime.value
XSD_GYEAR = XSD.gYear.value

_INTEGER_TYPES = {XSD_INTEGER, XSD_INT, XSD_NON_NEG_INTEGER}
_DECIMAL_TYPES = {XSD_DOUBLE, XSD_DECIMAL, XSD_FLOAT}
NUMERIC_DATATYPES = _INTEGER_TYPES | _DECIMAL_TYPES
DATE_DATATYPES = {XSD_DATE, XSD_DATETIME, XSD_GYEAR}


def make_literal(value: Any, language: str | None = None) -> Literal:
    """Build a :class:`Literal` from a native Python value.

    Chooses the xsd datatype from the Python type; plain strings become
    untyped (optionally language-tagged) literals.

    >>> make_literal(198).n3()
    '"198"^^<http://www.w3.org/2001/XMLSchema#integer>'
    >>> make_literal("Orhan Pamuk", language="en").n3()
    '"Orhan Pamuk"@en'
    """
    if isinstance(value, Literal):
        return value
    if isinstance(value, bool):
        return Literal("true" if value else "false", datatype=XSD_BOOLEAN)
    if isinstance(value, int):
        return Literal(str(value), datatype=XSD_INTEGER)
    if isinstance(value, float):
        return Literal(repr(value), datatype=XSD_DOUBLE)
    if isinstance(value, _dt.datetime):
        return Literal(value.isoformat(), datatype=XSD_DATETIME)
    if isinstance(value, _dt.date):
        return Literal(value.isoformat(), datatype=XSD_DATE)
    if isinstance(value, str):
        return Literal(value, language=language)
    raise TypeError(f"cannot build a literal from {type(value).__name__}")


def literal_value(literal: Literal) -> Any:
    """Convert a literal to its native Python value.

    Falls back to the lexical string when the datatype is unknown or the
    lexical form does not parse — the store never hard-fails on dirty data,
    matching how the original system tolerated noisy DBpedia literals.
    """
    datatype = literal.datatype
    lexical = literal.lexical
    if datatype is None or datatype == XSD_STRING:
        return lexical
    try:
        if datatype in _INTEGER_TYPES:
            return int(lexical)
        if datatype in _DECIMAL_TYPES:
            return float(lexical)
        if datatype == XSD_BOOLEAN:
            return lexical.strip().lower() in ("true", "1")
        if datatype == XSD_DATE:
            return _dt.date.fromisoformat(lexical)
        if datatype == XSD_DATETIME:
            return _dt.datetime.fromisoformat(lexical)
        if datatype == XSD_GYEAR:
            return int(lexical)
    except ValueError:
        return lexical
    return lexical


def is_numeric_literal(literal: Literal) -> bool:
    """True for literals whose datatype is an xsd numeric type."""
    return literal.datatype in NUMERIC_DATATYPES


def is_date_literal(literal: Literal) -> bool:
    """True for literals whose datatype is an xsd date/time type."""
    return literal.datatype in DATE_DATATYPES

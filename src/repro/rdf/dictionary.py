"""Dictionary encoding of RDF terms.

Each distinct term gets a dense integer id; the triple indexes store only
ids.  This mirrors how disk-based stores (and DBpedia's own Virtuoso
backend) keep their indexes small, and it makes triple equality in the join
executor an integer comparison.
"""

from __future__ import annotations

from repro.rdf.terms import Term


class TermDictionary:
    """A bidirectional term <-> id mapping with dense, append-only ids."""

    def __init__(self) -> None:
        self._term_to_id: dict[Term, int] = {}
        self._id_to_term: list[Term] = []

    def __len__(self) -> int:
        return len(self._id_to_term)

    def __contains__(self, term: Term) -> bool:
        return term in self._term_to_id

    def encode(self, term: Term) -> int:
        """Return the id for ``term``, minting a new one if unseen."""
        existing = self._term_to_id.get(term)
        if existing is not None:
            return existing
        new_id = len(self._id_to_term)
        self._term_to_id[term] = new_id
        self._id_to_term.append(term)
        return new_id

    def lookup(self, term: Term) -> int | None:
        """Return the id for ``term`` or None when it was never interned.

        Unlike :meth:`encode` this never mutates the dictionary, so it is
        safe to use on the query path: an unseen constant in a query simply
        matches nothing.
        """
        return self._term_to_id.get(term)

    def decode(self, term_id: int) -> Term:
        """Return the term for a previously minted id."""
        try:
            return self._id_to_term[term_id]
        except IndexError:
            raise KeyError(f"no term with id {term_id}") from None

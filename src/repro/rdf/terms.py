"""RDF term model: IRIs, literals, blank nodes, variables and triples.

Terms are immutable, hashable dataclasses so they can live in the store's
dictionary encoding and in set-based query bindings.  ``Variable`` is not an
RDF term proper but is part of the SPARQL data model; keeping it here lets
triple *patterns* and concrete triples share one ``Triple`` type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union


class Term:
    """Marker base class for everything that can fill a triple slot."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class IRI(Term):
    """An IRI reference, e.g. ``http://dbpedia.org/ontology/writer``.

    >>> IRI("http://example.org/a").n3()
    '<http://example.org/a>'
    """

    value: str

    def __post_init__(self) -> None:
        if not self.value:
            raise ValueError("IRI value must be a non-empty string")

    def n3(self) -> str:
        """N-Triples / SPARQL surface form."""
        return f"<{self.value}>"

    @property
    def local_name(self) -> str:
        """The fragment after the last ``/`` or ``#`` — e.g. ``writer``."""
        value = self.value
        for sep in ("#", "/"):
            if sep in value:
                return value.rsplit(sep, 1)[1]
        return value

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, slots=True)
class Literal(Term):
    """A literal with optional datatype IRI or language tag.

    ``datatype`` and ``language`` are mutually exclusive, matching RDF 1.0
    semantics (the paper's DBpedia vintage).

    >>> Literal("1.98", datatype="http://www.w3.org/2001/XMLSchema#double").n3()
    '"1.98"^^<http://www.w3.org/2001/XMLSchema#double>'
    """

    lexical: str
    datatype: str | None = None
    language: str | None = None

    def __post_init__(self) -> None:
        if self.datatype and self.language:
            raise ValueError("a literal cannot carry both datatype and language")

    def n3(self) -> str:
        escaped = (
            self.lexical.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\r", "\\r")
            .replace("\t", "\\t")
        )
        if self.datatype:
            return f'"{escaped}"^^<{self.datatype}>'
        if self.language:
            return f'"{escaped}"@{self.language}'
        return f'"{escaped}"'

    def __str__(self) -> str:
        return self.lexical


_BNODE_COUNTER = 0


def _next_bnode_id() -> str:
    global _BNODE_COUNTER
    _BNODE_COUNTER += 1
    return f"b{_BNODE_COUNTER}"


@dataclass(frozen=True, slots=True)
class BNode(Term):
    """A blank node.  Fresh labels are generated when none is supplied."""

    label: str = field(default_factory=_next_bnode_id)

    def n3(self) -> str:
        return f"_:{self.label}"

    def __str__(self) -> str:
        return self.n3()


@dataclass(frozen=True, slots=True)
class Variable(Term):
    """A SPARQL variable such as ``?x`` (stored without the ``?``)."""

    name: str

    def __post_init__(self) -> None:
        if not self.name or self.name.startswith(("?", "$")):
            raise ValueError(f"variable name must be bare (got {self.name!r})")

    def n3(self) -> str:
        return f"?{self.name}"

    def __str__(self) -> str:
        return self.n3()


#: A slot of a concrete triple (no variables allowed).
GroundTerm = Union[IRI, Literal, BNode]
#: A slot of a triple pattern (variables allowed).
PatternTerm = Union[IRI, Literal, BNode, Variable]


@dataclass(frozen=True, slots=True)
class Triple:
    """An (s, p, o) statement or pattern.

    Used both for asserted triples (all slots ground) and for SPARQL basic
    graph pattern entries (slots may be :class:`Variable`).
    """

    subject: PatternTerm
    predicate: PatternTerm
    object: PatternTerm

    def __post_init__(self) -> None:
        for slot_name, slot in (
            ("subject", self.subject),
            ("predicate", self.predicate),
            ("object", self.object),
        ):
            if not isinstance(slot, Term):
                raise TypeError(
                    f"triple {slot_name} must be a Term, got {type(slot).__name__}"
                )
        if isinstance(self.subject, Literal):
            raise ValueError("a literal cannot be the subject of a triple")
        if isinstance(self.predicate, (Literal, BNode)):
            raise ValueError("a triple predicate must be an IRI or variable")

    def is_ground(self) -> bool:
        """True when no slot is a variable (i.e. this is an asserted fact)."""
        return not any(
            isinstance(slot, Variable)
            for slot in (self.subject, self.predicate, self.object)
        )

    def variables(self) -> set[Variable]:
        """The set of variables appearing in this pattern."""
        return {
            slot
            for slot in (self.subject, self.predicate, self.object)
            if isinstance(slot, Variable)
        }

    def n3(self) -> str:
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."

    def __iter__(self):
        return iter((self.subject, self.predicate, self.object))

    def __str__(self) -> str:
        return self.n3()

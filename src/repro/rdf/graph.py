"""Dictionary-encoded triple store with SPO / POS / OSP indexes.

The three cyclic permutation indexes cover every access pattern the SPARQL
executor needs with at most one level of iteration:

====================  =================
bound slots           index used
====================  =================
s --, s p -, s p o    SPO
p -, p o              POS
o -, o s              OSP
(none bound)          SPO full scan
====================  =================

Each index is a two-level ``dict[int, dict[int, set[int]]]``.  The store
also keeps exact first-level cardinalities so the query planner can order
joins by selectivity without scanning.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.rdf.dictionary import TermDictionary
from repro.rdf.terms import BNode, IRI, Literal, Term, Triple

_Index = dict[int, dict[int, set[int]]]


def _index_add(index: _Index, a: int, b: int, c: int) -> None:
    index.setdefault(a, {}).setdefault(b, set()).add(c)


def _index_remove(index: _Index, a: int, b: int, c: int) -> None:
    level_b = index[a]
    level_c = level_b[b]
    level_c.discard(c)
    if not level_c:
        del level_b[b]
        if not level_b:
            del index[a]


class Graph:
    """An in-memory RDF graph.

    >>> from repro.rdf import DBO, DBR, RDF
    >>> g = Graph()
    >>> g.add(Triple(DBR.Snow, DBO.author, DBR.Orhan_Pamuk))
    True
    >>> len(g)
    1
    >>> next(iter(g.match(None, DBO.author, None))).subject.local_name
    'Snow'
    """

    def __init__(self, triples: Iterable[Triple] | None = None) -> None:
        self._dictionary = TermDictionary()
        self._spo: _Index = {}
        self._pos: _Index = {}
        self._osp: _Index = {}
        self._size = 0
        self._generation = 0
        if triples is not None:
            self.add_all(triples)

    @property
    def generation(self) -> int:
        """Monotonic mutation counter.

        Bumped by every successful :meth:`add`/:meth:`remove`, never reset.
        Query-result caches (see :class:`repro.sparql.engine.SparqlEngine`)
        key their validity on this value: a changed generation means any
        cached bindings may be stale.  Reads never change it, so concurrent
        readers of an unchanging graph observe a stable generation.
        """
        return self._generation

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, triple: Triple) -> bool:
        """Assert a ground triple.  Returns False when already present."""
        if not triple.is_ground():
            raise ValueError(f"cannot assert a non-ground triple: {triple}")
        s = self._dictionary.encode(triple.subject)
        p = self._dictionary.encode(triple.predicate)
        o = self._dictionary.encode(triple.object)
        objects = self._spo.setdefault(s, {}).setdefault(p, set())
        if o in objects:
            return False
        objects.add(o)
        _index_add(self._pos, p, o, s)
        _index_add(self._osp, o, s, p)
        self._size += 1
        self._generation += 1
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Assert many triples; returns the number actually added."""
        return sum(1 for triple in triples if self.add(triple))

    def remove(self, triple: Triple) -> bool:
        """Retract a ground triple.  Returns False when absent."""
        ids = self._encode_ground(triple)
        if ids is None:
            return False
        s, p, o = ids
        objects = self._spo.get(s, {}).get(p)
        if objects is None or o not in objects:
            return False
        _index_remove(self._spo, s, p, o)
        _index_remove(self._pos, p, o, s)
        _index_remove(self._osp, o, s, p)
        self._size -= 1
        self._generation += 1
        return True

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __contains__(self, triple: Triple) -> bool:
        ids = self._encode_ground(triple)
        if ids is None:
            return False
        s, p, o = ids
        return o in self._spo.get(s, {}).get(p, ())

    def __iter__(self) -> Iterator[Triple]:
        return self.match(None, None, None)

    def match(
        self,
        subject: Term | None,
        predicate: Term | None,
        obj: Term | None,
    ) -> Iterator[Triple]:
        """Iterate triples matching the pattern; ``None`` is a wildcard."""
        yield from (
            Triple(
                self._dictionary.decode(s),
                self._dictionary.decode(p),
                self._dictionary.decode(o),
            )
            for s, p, o in self.match_ids(
                self._maybe_lookup(subject),
                self._maybe_lookup(predicate),
                self._maybe_lookup(obj),
            )
        )

    def match_ids(
        self, s: int | None, p: int | None, o: int | None
    ) -> Iterator[tuple[int, int, int]]:
        """Id-level pattern matching; backbone of the SPARQL executor.

        ``-1`` encodes "constant not in dictionary" (matches nothing).
        """
        if -1 in (s, p, o):
            return
        if s is not None:
            by_p = self._spo.get(s)
            if by_p is None:
                return
            if p is not None:
                objects = by_p.get(p)
                if objects is None:
                    return
                if o is not None:
                    if o in objects:
                        yield (s, p, o)
                    return
                for obj_id in objects:
                    yield (s, p, obj_id)
                return
            for p_id, objects in by_p.items():
                if o is not None:
                    if o in objects:
                        yield (s, p_id, o)
                else:
                    for obj_id in objects:
                        yield (s, p_id, obj_id)
            return
        if p is not None:
            by_o = self._pos.get(p)
            if by_o is None:
                return
            if o is not None:
                for s_id in by_o.get(o, ()):
                    yield (s_id, p, o)
                return
            for o_id, subjects in by_o.items():
                for s_id in subjects:
                    yield (s_id, p, o_id)
            return
        if o is not None:
            by_s = self._osp.get(o)
            if by_s is None:
                return
            for s_id, predicates in by_s.items():
                for p_id in predicates:
                    yield (s_id, p_id, o)
            return
        for s_id, by_p in self._spo.items():
            for p_id, objects in by_p.items():
                for o_id in objects:
                    yield (s_id, p_id, o_id)

    def count(
        self,
        subject: Term | None = None,
        predicate: Term | None = None,
        obj: Term | None = None,
    ) -> int:
        """Exact number of triples matching a pattern.

        Bound-prefix lookups are answered from index sizes without
        enumeration where possible; this is what the planner's selectivity
        estimates call.
        """
        return self.count_ids(
            self._maybe_lookup(subject),
            self._maybe_lookup(predicate),
            self._maybe_lookup(obj),
        )

    def count_ids(
        self, s: int | None = None, p: int | None = None, o: int | None = None
    ) -> int:
        """Id-level twin of :meth:`count` (``-1`` = absent constant).

        The compiled id-space executor calls this to decide between the
        nested-index-loop and hash-join operators without decoding terms.
        """
        if -1 in (s, p, o):
            return 0
        if s is None and p is None and o is None:
            return self._size
        if s is not None and p is None and o is None:
            return sum(len(objs) for objs in self._spo.get(s, {}).values())
        if s is not None and p is not None and o is None:
            return len(self._spo.get(s, {}).get(p, ()))
        if p is not None and s is None and o is None:
            return sum(len(subs) for subs in self._pos.get(p, {}).values())
        if p is not None and o is not None and s is None:
            return len(self._pos.get(p, {}).get(o, ()))
        if o is not None and s is None and p is None:
            return sum(len(preds) for preds in self._osp.get(o, {}).values())
        if o is not None and s is not None and p is None:
            return len(self._osp.get(o, {}).get(s, ()))
        # Fully bound: membership test.
        return 1 if o in self._spo.get(s, {}).get(p, ()) else 0

    # ------------------------------------------------------------------
    # Vocabulary views
    # ------------------------------------------------------------------

    def subjects(self) -> Iterator[Term]:
        """Distinct subjects in the graph."""
        for s_id in self._spo:
            yield self._dictionary.decode(s_id)

    def predicates(self) -> Iterator[IRI]:
        """Distinct predicates in the graph."""
        for p_id in self._pos:
            term = self._dictionary.decode(p_id)
            assert isinstance(term, IRI)
            yield term

    def objects(self) -> Iterator[Term]:
        """Distinct objects in the graph."""
        for o_id in self._osp:
            yield self._dictionary.decode(o_id)

    def objects_of(self, subject: Term, predicate: Term) -> Iterator[Term]:
        """All o with (subject, predicate, o) asserted."""
        for __, __, o in self.match(subject, predicate, None):
            yield o

    def subjects_of(self, predicate: Term, obj: Term) -> Iterator[Term]:
        """All s with (s, predicate, obj) asserted."""
        for s, __, __ in self.match(None, predicate, obj):
            yield s

    def value(self, subject: Term, predicate: Term) -> Term | None:
        """The first object for (subject, predicate), or None."""
        return next(self.objects_of(subject, predicate), None)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @property
    def dictionary(self) -> TermDictionary:
        """The term dictionary (shared with the SPARQL executor)."""
        return self._dictionary

    def lookup_id(self, term: Term) -> int:
        """The term's dictionary id, or ``-1`` when never interned.

        Ids are append-only (never recycled, never reassigned), so a
        non-negative id stays valid for the lifetime of the graph — the
        compiled-plan cache relies on this to keep resolved constants
        across graph generations.
        """
        term_id = self._dictionary.lookup(term)
        return -1 if term_id is None else term_id

    def decode_id(self, term_id: int) -> Term:
        """Decode a dictionary id back into its :class:`Term`."""
        return self._dictionary.decode(term_id)

    def _maybe_lookup(self, term: Term | None) -> int | None:
        """Map a term to its id; None stays None; unseen terms become -1."""
        if term is None:
            return None
        term_id = self._dictionary.lookup(term)
        return -1 if term_id is None else term_id

    def _encode_ground(self, triple: Triple) -> tuple[int, int, int] | None:
        if not triple.is_ground():
            raise ValueError(f"expected a ground triple, got {triple}")
        s = self._dictionary.lookup(triple.subject)
        p = self._dictionary.lookup(triple.predicate)
        o = self._dictionary.lookup(triple.object)
        if s is None or p is None or o is None:
            return None
        return (s, p, o)

"""Namespace helpers and the vocabularies used throughout the reproduction.

Mirrors the prefixes of the paper: ``dbont:`` (which modern DBpedia writes
``dbo:``) for the ontology, ``res:``/``dbr:`` for resources, plus the RDF,
RDFS, XSD and FOAF standards.
"""

from __future__ import annotations

from repro.rdf.terms import IRI


class Namespace:
    """A base IRI that mints terms by attribute or item access.

    >>> DBO = Namespace("http://dbpedia.org/ontology/")
    >>> DBO.writer
    IRI(value='http://dbpedia.org/ontology/writer')
    >>> DBO["birthPlace"].local_name
    'birthPlace'
    """

    def __init__(self, base: str) -> None:
        if not base:
            raise ValueError("namespace base must be non-empty")
        self._base = base

    @property
    def base(self) -> str:
        return self._base

    def term(self, local_name: str) -> IRI:
        return IRI(self._base + local_name)

    def __getitem__(self, local_name: str) -> IRI:
        return self.term(local_name)

    def __getattr__(self, local_name: str) -> IRI:
        if local_name.startswith("_"):
            raise AttributeError(local_name)
        return self.term(local_name)

    def __contains__(self, iri: IRI | str) -> bool:
        value = iri.value if isinstance(iri, IRI) else iri
        return value.startswith(self._base)

    def __repr__(self) -> str:
        return f"Namespace({self._base!r})"


RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")
FOAF = Namespace("http://xmlns.com/foaf/0.1/")
#: DBpedia ontology — the paper's ``dbont:`` prefix.
DBO = Namespace("http://dbpedia.org/ontology/")
#: DBpedia raw infobox properties.
DBP = Namespace("http://dbpedia.org/property/")
#: DBpedia resources — the paper's ``res:`` prefix.
DBR = Namespace("http://dbpedia.org/resource/")

#: Prefix table used by the SPARQL parser and the serialisers.
PREFIXES: dict[str, Namespace] = {
    "rdf": RDF,
    "rdfs": RDFS,
    "xsd": XSD,
    "foaf": FOAF,
    "dbo": DBO,
    "dbont": DBO,  # the paper's spelling
    "dbp": DBP,
    "dbr": DBR,
    "res": DBR,  # the paper's spelling
}


def expand_curie(curie: str, prefixes: dict[str, Namespace] | None = None) -> IRI:
    """Expand ``prefix:local`` into a full IRI.

    >>> expand_curie("dbo:writer").value
    'http://dbpedia.org/ontology/writer'
    """
    table = prefixes if prefixes is not None else PREFIXES
    prefix, sep, local = curie.partition(":")
    if not sep:
        raise ValueError(f"not a CURIE (missing colon): {curie!r}")
    try:
        namespace = table[prefix]
    except KeyError:
        raise ValueError(f"unknown prefix {prefix!r} in {curie!r}") from None
    return namespace.term(local)


def shrink_iri(iri: IRI | str, prefixes: dict[str, Namespace] | None = None) -> str:
    """Render an IRI as a CURIE when a known prefix matches, else ``<iri>``.

    Prefers the canonical prefix names (longest matching base, first entry in
    the table order for ties), so DBO IRIs render as ``dbo:`` not ``dbont:``.
    """
    table = prefixes if prefixes is not None else PREFIXES
    value = iri.value if isinstance(iri, IRI) else iri
    best: tuple[int, str, str] | None = None
    seen_bases: set[str] = set()
    for prefix, namespace in table.items():
        if namespace.base in seen_bases:
            continue
        seen_bases.add(namespace.base)
        if value.startswith(namespace.base):
            candidate = (len(namespace.base), prefix, value[len(namespace.base):])
            if best is None or candidate[0] > best[0]:
                best = candidate
    if best is None:
        return f"<{value}>"
    _, prefix, local = best
    return f"{prefix}:{local}"

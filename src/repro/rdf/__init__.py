"""In-memory RDF substrate.

This package replaces the live DBpedia endpoint of the paper with a local
triple store.  It provides the RDF data model (:mod:`repro.rdf.terms`), a
dictionary-encoded, triple-indexed graph (:mod:`repro.rdf.graph`), common
namespaces (:mod:`repro.rdf.namespaces`), typed-literal handling
(:mod:`repro.rdf.datatypes`) and N-Triples serialisation
(:mod:`repro.rdf.ntriples`).
"""

from repro.rdf.terms import (
    BNode,
    IRI,
    Literal,
    Term,
    Triple,
    Variable,
)
from repro.rdf.namespaces import (
    DBO,
    DBP,
    DBR,
    FOAF,
    Namespace,
    PREFIXES,
    RDF,
    RDFS,
    XSD,
    expand_curie,
    shrink_iri,
)
from repro.rdf.graph import Graph
from repro.rdf.datatypes import literal_value, make_literal
from repro.rdf.ntriples import (
    parse_ntriples,
    read_ntriples,
    serialize_ntriples,
    write_ntriples,
)
from repro.rdf.turtle import parse_turtle, serialize_turtle, write_turtle
from repro.rdf.inference import materialize_rdfs

__all__ = [
    "Term",
    "IRI",
    "Literal",
    "BNode",
    "Variable",
    "Triple",
    "Namespace",
    "RDF",
    "RDFS",
    "XSD",
    "FOAF",
    "DBO",
    "DBP",
    "DBR",
    "PREFIXES",
    "expand_curie",
    "shrink_iri",
    "Graph",
    "make_literal",
    "literal_value",
    "parse_ntriples",
    "read_ntriples",
    "serialize_ntriples",
    "write_ntriples",
    "parse_turtle",
    "serialize_turtle",
    "write_turtle",
    "materialize_rdfs",
]

"""N-Triples reading and writing.

The curated knowledge base can be exported/imported as ``.nt`` so users can
swap in their own data (see ``examples/build_your_own_kb.py``).  The parser
accepts the N-Triples core grammar: IRIs, blank nodes, and literals with
optional language tag or datatype, plus ``#`` comments and blank lines.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterable, Iterator, TextIO

from repro.rdf.terms import BNode, IRI, Literal, Term, Triple

_IRI_RE = r"<(?P<{0}_iri>[^<>\s]*)>"
_BNODE_RE = r"_:(?P<{0}_bnode>[A-Za-z][A-Za-z0-9]*)"
_LITERAL_RE = (
    r'"(?P<obj_lex>(?:[^"\\]|\\.)*)"'
    r"(?:\^\^<(?P<obj_dt>[^<>\s]*)>|@(?P<obj_lang>[A-Za-z]+(?:-[A-Za-z0-9]+)*))?"
)

_LINE_RE = re.compile(
    r"^\s*"
    + r"(?:" + _IRI_RE.format("subj") + r"|" + _BNODE_RE.format("subj") + r")"
    + r"\s+"
    + _IRI_RE.format("pred")
    + r"\s+"
    + r"(?:"
    + _IRI_RE.format("obj")
    + r"|"
    + _BNODE_RE.format("obj")
    + r"|"
    + _LITERAL_RE
    + r")"
    + r"\s*\.\s*$"
)

_ESCAPES = {
    "\\n": "\n",
    "\\r": "\r",
    "\\t": "\t",
    '\\"': '"',
    "\\\\": "\\",
}


class NTriplesError(ValueError):
    """Raised when a line cannot be parsed, with its line number."""

    def __init__(self, line_number: int, line: str) -> None:
        super().__init__(f"malformed N-Triples at line {line_number}: {line!r}")
        self.line_number = line_number
        self.line = line


def _unescape(lexical: str) -> str:
    out: list[str] = []
    i = 0
    while i < len(lexical):
        pair = lexical[i:i + 2]
        if pair in _ESCAPES:
            out.append(_ESCAPES[pair])
            i += 2
        elif pair == "\\u":
            out.append(chr(int(lexical[i + 2:i + 6], 16)))
            i += 6
        elif pair == "\\U":
            out.append(chr(int(lexical[i + 2:i + 10], 16)))
            i += 10
        else:
            out.append(lexical[i])
            i += 1
    return "".join(out)


def parse_ntriples(text: str) -> Iterator[Triple]:
    """Parse N-Triples source text, yielding triples.

    >>> list(parse_ntriples('<http://e/a> <http://e/p> "v" .'))[0].object.lexical
    'v'
    """
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        match = _LINE_RE.match(line)
        if match is None:
            raise NTriplesError(line_number, raw_line)
        groups = match.groupdict()

        subject: Term
        if groups["subj_iri"] is not None:
            subject = IRI(groups["subj_iri"])
        else:
            subject = BNode(groups["subj_bnode"])

        predicate = IRI(groups["pred_iri"])

        obj: Term
        if groups["obj_iri"] is not None:
            obj = IRI(groups["obj_iri"])
        elif groups["obj_bnode"] is not None:
            obj = BNode(groups["obj_bnode"])
        else:
            obj = Literal(
                _unescape(groups["obj_lex"]),
                datatype=groups["obj_dt"],
                language=groups["obj_lang"],
            )
        yield Triple(subject, predicate, obj)


def read_ntriples(source: str | Path | TextIO) -> Iterator[Triple]:
    """Read triples from a path or an open text handle."""
    if isinstance(source, (str, Path)):
        with open(source, encoding="utf-8") as handle:
            yield from parse_ntriples(handle.read())
    else:
        yield from parse_ntriples(source.read())


def serialize_ntriples(triples: Iterable[Triple]) -> str:
    """Render triples as N-Triples text (one statement per line)."""
    return "".join(f"{triple.n3()}\n" for triple in triples)


def write_ntriples(triples: Iterable[Triple], destination: str | Path | TextIO) -> int:
    """Write triples to a path or handle; returns the number written."""
    count = 0
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8") as handle:
            for triple in triples:
                handle.write(f"{triple.n3()}\n")
                count += 1
    else:
        for triple in triples:
            destination.write(f"{triple.n3()}\n")
            count += 1
    return count

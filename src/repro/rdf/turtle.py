"""Turtle-subset serialisation: prefixed, grouped, human-readable exports.

N-Triples (:mod:`repro.rdf.ntriples`) is the interchange format; Turtle is
the *inspection* format — prefixes, one subject block per resource,
``a`` for ``rdf:type``, ``;``/``,`` grouping.  The writer emits exactly the
subset the reader parses, so exports round-trip.
"""

from __future__ import annotations

from collections import defaultdict
from pathlib import Path
from typing import Iterable, Iterator, TextIO

from repro.rdf.namespaces import Namespace, PREFIXES, RDF
from repro.rdf.terms import BNode, IRI, Literal, Term, Triple

_CANONICAL_ORDER = ("rdf", "rdfs", "xsd", "foaf", "dbo", "dbp", "dbr")

#: Characters allowed in a prefixed local name without escaping.
_SAFE_LOCAL = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-."
)


def _used_prefixes(triples: list[Triple]) -> dict[str, Namespace]:
    used: dict[str, Namespace] = {}
    seen_bases: set[str] = set()
    ordered = [
        (name, PREFIXES[name]) for name in _CANONICAL_ORDER if name in PREFIXES
    ]
    for name, namespace in ordered:
        if namespace.base in seen_bases:
            continue
        for triple in triples:
            if any(
                isinstance(term, IRI) and term in namespace
                for term in triple
            ) or any(
                isinstance(term, Literal) and term.datatype
                and term.datatype.startswith(namespace.base)
                for term in triple
            ):
                used[name] = namespace
                seen_bases.add(namespace.base)
                break
    return used


def _render_term(term: Term, prefixes: dict[str, Namespace]) -> str:
    if isinstance(term, IRI):
        for name, namespace in prefixes.items():
            if term in namespace:
                local = term.value[len(namespace.base):]
                if local and all(ch in _SAFE_LOCAL for ch in local) and not local.endswith("."):
                    return f"{name}:{local}"
        return term.n3()
    if isinstance(term, Literal) and term.datatype:
        for name, namespace in prefixes.items():
            if term.datatype.startswith(namespace.base):
                local = term.datatype[len(namespace.base):]
                lexical = Literal(term.lexical).n3()
                return f"{lexical}^^{name}:{local}"
        return term.n3()
    return term.n3()


def serialize_turtle(triples: Iterable[Triple]) -> str:
    """Render triples as Turtle with prefixes and subject grouping.

    >>> from repro.rdf import DBO, DBR
    >>> print(serialize_turtle([Triple(DBR.Snow, RDF.type, DBO.Book)]))
    @prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
    @prefix dbo: <http://dbpedia.org/ontology/> .
    @prefix dbr: <http://dbpedia.org/resource/> .
    <BLANKLINE>
    dbr:Snow a dbo:Book .
    """
    triples = list(triples)
    prefixes = _used_prefixes(triples)

    lines = [f"@prefix {name}: <{ns.base}> ." for name, ns in prefixes.items()]
    if lines:
        lines.append("")

    by_subject: dict[Term, dict[Term, list[Term]]] = defaultdict(
        lambda: defaultdict(list)
    )
    subject_order: list[Term] = []
    for triple in triples:
        if triple.subject not in by_subject:
            subject_order.append(triple.subject)
        bucket = by_subject[triple.subject][triple.predicate]
        if triple.object not in bucket:
            bucket.append(triple.object)

    for subject in subject_order:
        subject_text = _render_term(subject, prefixes)
        predicate_lines = []
        for predicate, objects in by_subject[subject].items():
            predicate_text = (
                "a" if predicate == RDF.type
                else _render_term(predicate, prefixes)
            )
            object_text = ", ".join(
                _render_term(obj, prefixes) for obj in objects
            )
            predicate_lines.append(f"{predicate_text} {object_text}")
        if len(predicate_lines) == 1:
            lines.append(f"{subject_text} {predicate_lines[0]} .")
        else:
            lines.append(f"{subject_text} {predicate_lines[0]} ;")
            for middle in predicate_lines[1:-1]:
                indent = " " * (len(subject_text) + 1)
                lines.append(f"{indent}{middle} ;")
            indent = " " * (len(subject_text) + 1)
            lines.append(f"{indent}{predicate_lines[-1]} .")
    return "\n".join(lines)


def write_turtle(triples: Iterable[Triple], destination: str | Path | TextIO) -> None:
    """Write Turtle to a path or open handle."""
    text = serialize_turtle(triples)
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    else:
        destination.write(text + "\n")


def parse_turtle(text: str) -> Iterator[Triple]:
    """Parse the Turtle subset the writer emits.

    Supports ``@prefix`` declarations, subject blocks with ``;``/``,``
    grouping, the ``a`` shorthand, prefixed names, IRIs and literals with
    language tags or (prefixed) datatypes.  This is deliberately *not* a
    full Turtle parser — it guarantees round-tripping of this module's own
    output and of similarly simple hand-written files.
    """
    from repro.sparql.lexer import tokenize
    from repro.sparql.errors import SparqlParseError

    prefixes: dict[str, Namespace] = {}
    # Reuse the SPARQL tokeniser: Turtle's term syntax is the same subset.
    statements = _split_statements(text)
    for statement in statements:
        stripped = statement.strip()
        if not stripped:
            continue
        if stripped.startswith("@prefix"):
            __, name_part, iri_part = stripped.split(None, 2)
            prefixes[name_part.rstrip(":")] = Namespace(iri_part.strip().strip("<>"))
            continue
        try:
            tokens = [t for t in tokenize(stripped) if t.kind != "EOF"]
        except SparqlParseError as exc:
            raise ValueError(f"cannot parse turtle statement {stripped!r}: {exc}")
        yield from _parse_subject_block(tokens, prefixes)


def _split_statements(text: str) -> list[str]:
    """Split on '.' statement terminators.

    A '.' terminates a statement only outside strings/IRIs and when
    followed by whitespace or end of input — decimal points ("1.98") and
    dotted local names ("J.K._Rowling") are never followed by whitespace
    in the emitted subset.
    """
    statements: list[str] = []
    current: list[str] = []
    in_string = False
    in_iri = False
    previous = ""
    for index, ch in enumerate(text):
        if ch == '"' and previous != "\\":
            in_string = not in_string
        elif ch == "<" and not in_string:
            in_iri = True
        elif ch == ">" and not in_string:
            in_iri = False
        at_boundary = index + 1 == len(text) or text[index + 1].isspace()
        if ch == "." and not in_string and not in_iri and at_boundary:
            statements.append("".join(current))
            current = []
        else:
            current.append(ch)
        previous = ch
    tail = "".join(current).strip()
    if tail:
        statements.append(tail)
    return statements


def _parse_subject_block(tokens, prefixes: dict[str, Namespace]) -> Iterator[Triple]:
    position = 0

    def term_at(i: int) -> tuple[Term, int]:
        token = tokens[i]
        if token.kind == "IRIREF":
            return IRI(token.value[1:-1]), i + 1
        if token.kind == "PNAME":
            prefix, __, local = token.value.partition(":")
            namespace = prefixes.get(prefix) or PREFIXES.get(prefix)
            if namespace is None:
                raise ValueError(f"unknown turtle prefix {prefix!r}")
            return namespace.term(local), i + 1
        if token.kind == "STRING":
            lexical = token.value
            if i + 1 < len(tokens) and tokens[i + 1].kind == "LANGTAG":
                return Literal(lexical, language=tokens[i + 1].value), i + 2
            if i + 1 < len(tokens) and tokens[i + 1].kind == "DOUBLE_CARET":
                datatype, next_i = term_at(i + 2)
                return Literal(lexical, datatype=datatype.value), next_i
            return Literal(lexical), i + 1
        if token.kind == "NUMBER":
            from repro.rdf.datatypes import XSD_DOUBLE, XSD_INTEGER

            datatype = XSD_DOUBLE if any(c in token.value for c in ".eE") else XSD_INTEGER
            return Literal(token.value, datatype=datatype), i + 1
        if token.kind == "KEYWORD" and token.value == "A":
            return RDF.type, i + 1
        raise ValueError(f"unexpected turtle token {token.value!r}")

    subject, position = term_at(position)
    while position < len(tokens):
        predicate, position = term_at(position)
        while True:
            obj, position = term_at(position)
            yield Triple(subject, predicate, obj)
            if position < len(tokens) and tokens[position].value == ",":
                position += 1
                continue
            break
        if position < len(tokens) and tokens[position].value == ";":
            position += 1
            if position >= len(tokens):
                break
            continue
        break

"""RDFS forward-chaining materialisation.

The KB builder materialises the type closure for declarative records; data
loaded from N-Triples/Turtle files arrives raw.  This module applies the
two RDFS entailment rules DBpedia itself materialises, directly on a
graph:

* **rdfs9**  — ``(x rdf:type C), (C rdfs:subClassOf D) -> (x rdf:type D)``
* **rdfs7**  — ``(x P y), (P rdfs:subPropertyOf Q) -> (x Q y)``

plus the domain/range typing rules (rdfs2/rdfs3) as an opt-in, since noisy
data can propagate wrong types through them.  Rules run to fixpoint; the
subclass/subproperty axioms are read from the same graph (the T-Box lives
beside the A-Box, as in DBpedia dumps).
"""

from __future__ import annotations

from collections import defaultdict

from repro.rdf.graph import Graph
from repro.rdf.namespaces import RDF, RDFS
from repro.rdf.terms import IRI, Triple


def _transitive_closure(parents: dict[IRI, set[IRI]]) -> dict[IRI, set[IRI]]:
    closure: dict[IRI, set[IRI]] = {}

    def ancestors(node: IRI, seen: frozenset[IRI]) -> set[IRI]:
        if node in closure:
            return closure[node]
        out: set[IRI] = set()
        for parent in parents.get(node, ()):
            if parent in seen:
                continue  # tolerate cycles in dirty data
            out.add(parent)
            out |= ancestors(parent, seen | {parent})
        closure[node] = out
        return out

    for node in list(parents):
        ancestors(node, frozenset({node}))
    return closure


def materialize_subclass_closure(graph: Graph) -> int:
    """Apply rdfs9 to fixpoint; returns the number of triples added.

    >>> from repro.rdf import DBO, DBR
    >>> g = Graph([
    ...     Triple(DBO.Writer, RDFS.subClassOf, DBO.Person),
    ...     Triple(DBR.Orhan_Pamuk, RDF.type, DBO.Writer),
    ... ])
    >>> materialize_subclass_closure(g)
    1
    >>> Triple(DBR.Orhan_Pamuk, RDF.type, DBO.Person) in g
    True
    """
    parents: dict[IRI, set[IRI]] = defaultdict(set)
    for triple in graph.match(None, RDFS.subClassOf, None):
        if isinstance(triple.subject, IRI) and isinstance(triple.object, IRI):
            parents[triple.subject].add(triple.object)
    closure = _transitive_closure(parents)

    added = 0
    for triple in list(graph.match(None, RDF.type, None)):
        for ancestor in closure.get(triple.object, ()):
            if graph.add(Triple(triple.subject, RDF.type, ancestor)):
                added += 1
    return added


def materialize_subproperty_closure(graph: Graph) -> int:
    """Apply rdfs7 to fixpoint; returns the number of triples added."""
    parents: dict[IRI, set[IRI]] = defaultdict(set)
    for triple in graph.match(None, RDFS.subPropertyOf, None):
        if isinstance(triple.subject, IRI) and isinstance(triple.object, IRI):
            parents[triple.subject].add(triple.object)
    closure = _transitive_closure(parents)

    added = 0
    for property_iri, ancestors in closure.items():
        for triple in list(graph.match(None, property_iri, None)):
            for ancestor in ancestors:
                if graph.add(Triple(triple.subject, ancestor, triple.object)):
                    added += 1
    return added


def materialize_domain_range_types(graph: Graph) -> int:
    """Apply rdfs2/rdfs3: type subjects by property domains and IRI
    objects by property ranges.  Opt-in — call only on trusted data."""
    domains: dict[IRI, set[IRI]] = defaultdict(set)
    ranges: dict[IRI, set[IRI]] = defaultdict(set)
    for triple in graph.match(None, RDFS.domain, None):
        if isinstance(triple.object, IRI):
            domains[triple.subject].add(triple.object)
    for triple in graph.match(None, RDFS.range, None):
        if isinstance(triple.object, IRI):
            ranges[triple.subject].add(triple.object)

    added = 0
    for property_iri in set(domains) | set(ranges):
        for triple in list(graph.match(None, property_iri, None)):
            for cls in domains.get(property_iri, ()):
                if graph.add(Triple(triple.subject, RDF.type, cls)):
                    added += 1
            if isinstance(triple.object, IRI):
                for cls in ranges.get(property_iri, ()):
                    if graph.add(Triple(triple.object, RDF.type, cls)):
                        added += 1
    return added


def materialize_rdfs(graph: Graph, include_domain_range: bool = False) -> int:
    """Run the rule set to fixpoint; returns total triples added."""
    total = 0
    while True:
        added = materialize_subproperty_closure(graph)
        added += materialize_subclass_closure(graph)
        if include_domain_range:
            added += materialize_domain_range_types(graph)
        total += added
        if added == 0:
            return total

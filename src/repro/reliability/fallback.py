"""Degraded-mode extraction: shallow keyword patterns, no parse tree.

When dependency parsing (or the section-2.1 extractor itself) fails, the
pipeline falls back to this extractor instead of refusing outright — the
same "partial evidence beats no evidence" stance SLING-style relation
linkers take.  It needs only tokens: one recognised entity mention plus
one content word yields the pattern ``[?x, <content word>, <entity>]``,
which downstream mapping and both-orientation query generation (section
2.3) can still turn into real candidate queries.

The fallback is deliberately conservative: with no entity mention or no
content word it produces nothing, so a question rescued this way either
answers through the ordinary mapping machinery or fails with the original
typed :class:`~repro.reliability.errors.StageError` — it never invents
evidence.  Answers produced through this path are flagged in
``Answer.degraded``.
"""

from __future__ import annotations

from repro.core.triples import Slot, TriplePattern
from repro.nlp.dependencies import Token
from repro.nlp.pipeline import Sentence

#: Question machinery that must never become a predicate keyword.
_STOP_WORDS = {
    "be", "is", "are", "was", "were", "do", "does", "did", "have", "has",
    "had", "the", "a", "an", "of", "in", "on", "by", "to", "for", "with",
    "from", "and", "or", "not", "give", "me", "all", "list", "many",
    "much", "what", "which", "who", "whom", "whose", "where", "when",
    "how", "why", "there", "it", "this", "that", "these", "those",
}


class KeywordPatternExtractor:
    """Builds shallow triple patterns from token-level evidence only."""

    def extract(self, sentence: Sentence) -> list[TriplePattern]:
        """One ``[?x, keyword, entity]`` pattern, or nothing.

        Works on any :class:`Sentence`, including the flat (unparsed)
        output of ``Pipeline.annotate_shallow``.
        """
        entity = self._first_entity(sentence)
        if entity is None:
            return []
        keyword = self._content_word(sentence, entity)
        if keyword is None:
            return []
        return [
            TriplePattern(
                Slot.variable(),
                Slot.text_of(keyword),
                Slot.entity(entity),
                is_main=True,
            )
        ]

    # ------------------------------------------------------------------

    @staticmethod
    def _first_entity(sentence: Sentence) -> Token | None:
        for token in sentence.tokens:
            if token.entity:
                return token
        return None

    @staticmethod
    def _content_word(sentence: Sentence, entity: Token) -> Token | None:
        """The best predicate keyword: prefer a verb, else a noun/adjective.

        Tokens are scanned in sentence order; the entity itself, wh-words
        and stop words never qualify.
        """
        fallback: Token | None = None
        for token in sentence.tokens:
            if token.index == entity.index or token.entity:
                continue
            if token.is_wh_word() or token.lemma.lower() in _STOP_WORDS:
                continue
            if not token.text or not token.text[0].isalnum():
                continue
            if token.is_verb():
                return token
            if fallback is None and (token.is_noun() or token.is_adjective()):
                fallback = token
        return fallback

"""Typed failure taxonomy for the answering pipeline.

Every pipeline stage boundary (annotate -> extract -> map -> generate ->
execute -> typecheck) converts whatever went wrong inside it into exactly
one :class:`StageError` subclass, so callers — and the fault-injection test
harness — can tell *where* a question died without parsing message text.
``Answer.failure`` carries :meth:`StageError.describe`, which always starts
with the class name, and ``Answer.failure_stage`` carries the stage value.
"""

from __future__ import annotations

import enum


class Stage(enum.Enum):
    """The named pipeline stages, in execution order."""

    ANNOTATE = "annotate"
    EXTRACT = "extract"
    MAP = "map"
    GENERATE = "generate"
    EXECUTE = "execute"
    TYPECHECK = "typecheck"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Stage values in pipeline order (the fault-matrix tests iterate this).
STAGES: tuple[str, ...] = tuple(stage.value for stage in Stage)


class StageError(Exception):
    """A failure attributed to one pipeline stage.

    Subclasses fix :attr:`stage`; the two cross-cutting kinds
    (:class:`StageTimeout`, :class:`BudgetExceeded`) take the stage as a
    constructor argument instead.

    >>> err = MappingError("disambiguator blew up")
    >>> err.stage
    <Stage.MAP: 'map'>
    >>> err.describe()
    "MappingError at stage 'map': disambiguator blew up"
    """

    stage: Stage = Stage.EXECUTE  # overridden by every subclass

    def __init__(self, detail: str = "") -> None:
        super().__init__(detail)
        self.detail = detail

    @property
    def name(self) -> str:
        """The taxonomy name (the class name)."""
        return type(self).__name__

    @property
    def stage_value(self) -> str:
        """The stage string for ``Answer.failure_stage`` (subclasses that
        are not attributed to a pipeline stage override this)."""
        return self.stage.value

    def describe(self) -> str:
        """The canonical one-line diagnostic stored on ``Answer.failure``."""
        text = f"{self.name} at stage '{self.stage_value}'"
        return f"{text}: {self.detail}" if self.detail else text

    def trace_event(self) -> tuple[str, dict]:
        """``(name, attributes)`` for the observability layer's failure
        events, so a span records *which* taxonomy class fired without
        parsing :meth:`describe` text.

        >>> MappingError("boom").trace_event()
        ('stage-failure', {'stage': 'map', 'error': 'MappingError', 'detail': 'boom'})
        """
        return (
            "stage-failure",
            {"stage": self.stage_value, "error": self.name, "detail": self.detail},
        )


class AnnotationError(StageError):
    """Tokenisation / tagging / dependency parsing failed."""

    stage = Stage.ANNOTATE


class ExtractionError(StageError):
    """The section-2.1 triple-pattern extractor failed (distinct from the
    legitimate empty bucket, which is the paper's 'cannot process' case)."""

    stage = Stage.EXTRACT


class MappingError(StageError):
    """The section-2.2 slot mapper failed *unexpectedly* (a
    :class:`repro.core.mapping.MappingFailure` is the expected refusal and
    keeps its own diagnostic)."""

    stage = Stage.MAP


class QueryGenerationError(StageError):
    """Candidate-query enumeration (section 2.3) failed."""

    stage = Stage.GENERATE


class ExecutionError(StageError):
    """A candidate SPARQL query failed against the knowledge base."""

    stage = Stage.EXECUTE


class TypeCheckError(StageError):
    """The expected-answer-type filter (section 2.3.2) failed."""

    stage = Stage.TYPECHECK


class StageTimeout(StageError):
    """A stage exceeded its wall-clock deadline (or a timeout was injected)."""

    def __init__(self, stage: Stage | str, detail: str = "") -> None:
        super().__init__(detail)
        self.stage = Stage(stage) if isinstance(stage, str) else stage


class BudgetExceeded(StageError):
    """A stage ran out of its configured work budget (wall time or
    candidate count).  Distinct from :class:`StageTimeout`: a budget is a
    *configured* limit the caller opted into, not an anomaly."""

    def __init__(self, stage: Stage | str, detail: str = "") -> None:
        super().__init__(detail)
        self.stage = Stage(stage) if isinstance(stage, str) else stage


class InternalError(StageError):
    """An exception escaped the guarded pipeline itself — the never-raise
    contract's last resort.  Not attributed to a pipeline stage:
    ``Answer.failure_stage`` carries the literal ``"internal"``, and
    :meth:`describe` keeps the established ``"InternalError: …"`` shape
    (no stage clause) so existing diagnostics are unchanged.

    >>> InternalError("unhandled ValueError: boom").describe()
    'InternalError: unhandled ValueError: boom'
    >>> InternalError().stage_value
    'internal'
    """

    stage = None  # deliberately outside the Stage enum

    @property
    def stage_value(self) -> str:
        return "internal"

    def describe(self) -> str:
        return f"{self.name}: {self.detail}" if self.detail else self.name

    @classmethod
    def from_exception(cls, error: BaseException) -> "InternalError":
        """The canonical wrapper for an escaping exception."""
        return cls(f"unhandled {type(error).__name__}: {error}")


class CircuitOpenError(StageError):
    """The serving layer's circuit breaker for a stage is open: the stage
    was skipped outright instead of being attempted (fail-fast).  Raised by
    the stage guard *before* the stage runs; never counted as a fresh
    breaker failure."""

    def __init__(self, stage: Stage | str, detail: str = "") -> None:
        super().__init__(detail)
        self.stage = Stage(stage) if isinstance(stage, str) else stage


class BulkheadSaturatedError(StageError):
    """The serving layer's per-stage bulkhead (concurrency limit) had no
    free slot within its wait budget — the stage was shed to protect the
    other stages' workers, not attempted and failed."""

    def __init__(self, stage: Stage | str, detail: str = "") -> None:
        super().__init__(detail)
        self.stage = Stage(stage) if isinstance(stage, str) else stage


_ERROR_FOR_STAGE: dict[Stage, type[StageError]] = {
    Stage.ANNOTATE: AnnotationError,
    Stage.EXTRACT: ExtractionError,
    Stage.MAP: MappingError,
    Stage.GENERATE: QueryGenerationError,
    Stage.EXECUTE: ExecutionError,
    Stage.TYPECHECK: TypeCheckError,
}


def error_for(stage: Stage | str) -> type[StageError]:
    """The taxonomy class owning a stage.

    >>> error_for("extract").__name__
    'ExtractionError'
    """
    return _ERROR_FOR_STAGE[Stage(stage) if isinstance(stage, str) else stage]

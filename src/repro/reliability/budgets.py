"""Per-stage wall-clock deadlines.

A :class:`Deadline` is created once per question (from
``PipelineConfig.stage_budget_ms``) and handed to the expensive stages
(candidate enumeration and candidate execution).  Stages poll
:meth:`Deadline.expired` at natural loop boundaries and stop early —
*keeping whatever they already produced* — rather than raising through the
pipeline.  The first observation of expiry latches :attr:`tripped`, which
is how the system knows to mark the answer as truncated (no silent caps:
every budget hit is visible in ``Answer.truncated`` and the
``reliability.budget_exhausted.*`` counters).
"""

from __future__ import annotations

import time
from typing import Callable


class Deadline:
    """A monotonic wall-clock budget shared by one question's stages.

    ``clock`` is injectable for deterministic tests.

    >>> ticks = iter([0.0, 0.05, 0.2])
    >>> deadline = Deadline(0.1, clock=lambda: next(ticks))
    >>> deadline.expired()
    False
    >>> deadline.expired()
    True
    >>> deadline.tripped
    True
    """

    __slots__ = ("_clock", "_expires_at", "tripped")

    def __init__(
        self,
        seconds: float | None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._clock = clock
        self._expires_at = None if seconds is None else clock() + seconds
        #: Latched true the first time :meth:`expired` observes expiry.
        self.tripped = False

    @classmethod
    def unlimited(cls) -> "Deadline":
        """A deadline that never expires (budget feature switched off)."""
        return cls(None)

    @classmethod
    def from_millis(cls, millis: float | None, **kwargs) -> "Deadline":
        return cls(None if millis is None else millis / 1000.0, **kwargs)

    @property
    def limited(self) -> bool:
        return self._expires_at is not None

    def remaining(self) -> float:
        """Seconds left; ``inf`` when unlimited, floored at 0."""
        if self._expires_at is None:
            return float("inf")
        return max(0.0, self._expires_at - self._clock())

    def expired(self) -> bool:
        """Whether the budget is spent (latches :attr:`tripped`)."""
        if self._expires_at is None:
            return False
        if self._clock() >= self._expires_at:
            self.tripped = True
            return True
        return False

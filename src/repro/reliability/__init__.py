"""Reliability layer: typed failures, budgets, fault injection, fallbacks.

The production contract (``docs/reliability.md``) is that
:meth:`repro.core.system.QuestionAnsweringSystem.answer` **never raises**:
every failure inside a pipeline stage is converted at the stage boundary
into a typed :class:`StageError` recorded on ``Answer.failure``, and a
batch (`answer_many`) always completes with one ``Answer`` per question.

Modules:

* :mod:`repro.reliability.errors` — the stage taxonomy and error classes;
* :mod:`repro.reliability.budgets` — per-stage wall-clock deadlines;
* :mod:`repro.reliability.faults` — the deterministic fault injector that
  the test harness uses to force failures at any stage boundary;
* :mod:`repro.reliability.fallback` — degraded-mode extraction used when
  the dependency parse is unavailable.
"""

from repro.reliability.errors import (
    STAGES,
    AnnotationError,
    BudgetExceeded,
    BulkheadSaturatedError,
    CircuitOpenError,
    ExecutionError,
    ExtractionError,
    InternalError,
    MappingError,
    QueryGenerationError,
    Stage,
    StageError,
    StageTimeout,
    TypeCheckError,
    error_for,
)
from repro.reliability.budgets import Deadline
from repro.reliability.faults import FaultInjector, FaultSpec
from repro.reliability.fallback import KeywordPatternExtractor

__all__ = [
    "Stage",
    "STAGES",
    "StageError",
    "AnnotationError",
    "ExtractionError",
    "MappingError",
    "QueryGenerationError",
    "ExecutionError",
    "TypeCheckError",
    "StageTimeout",
    "BudgetExceeded",
    "InternalError",
    "CircuitOpenError",
    "BulkheadSaturatedError",
    "error_for",
    "Deadline",
    "FaultInjector",
    "FaultSpec",
    "KeywordPatternExtractor",
]

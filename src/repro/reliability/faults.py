"""Deterministic, config-driven fault injection.

The :class:`FaultInjector` is the backbone of the reliability test harness
(``tests/reliability/``): armed with one or more :class:`FaultSpec`\\ s it
forces a typed exception, an injected timeout, or an empty result at any
named stage boundary — deterministically, with no randomness, so every
failure a test provokes is exactly reproducible.

It is *off by default*: ``PipelineConfig.fault_injector`` is ``None`` in
production configurations, and an injector with no armed specs is inert.
The pipeline calls :meth:`FaultInjector.check` at each stage boundary
**before** the stage touches any shared cache, which is what guarantees
the cache-consistency-after-fault contract (a faulted run never writes a
poisoned entry; see ``docs/reliability.md``).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.reliability.errors import Stage, StageTimeout, error_for

#: The supported fault kinds.
FAULT_KINDS: tuple[str, ...] = ("error", "timeout", "empty", "slow")

#: Injected latency of a ``slow`` fault when the spec does not set one.
DEFAULT_SLOW_MS = 50.0


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    * ``stage`` — a :data:`repro.reliability.errors.STAGES` name;
    * ``kind`` — ``"error"`` (raise the stage's taxonomy class),
      ``"timeout"`` (raise :class:`StageTimeout`), ``"empty"`` (the
      stage behaves as if it produced nothing), or ``"slow"`` (the stage
      runs normally after an injected delay — the chaos harness's
      wedged-backend simulation; answers are unchanged);
    * ``match`` — only fire for questions containing this substring
      (``None`` fires for every question);
    * ``times`` — fire at most this many times (``None`` = every time);
    * ``delay_ms`` — injected latency for ``slow`` faults
      (:data:`DEFAULT_SLOW_MS` when ``None``; ignored by other kinds).
    """

    stage: str
    kind: str = "error"
    match: str | None = None
    times: int | None = None
    delay_ms: float | None = None

    def __post_init__(self) -> None:
        Stage(self.stage)  # validates the stage name
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse the CLI syntax ``stage:kind[:match]``.

        >>> FaultSpec.parse("execute:timeout")
        FaultSpec(stage='execute', kind='timeout', match=None, times=None, delay_ms=None)
        """
        parts = text.split(":", 2)
        if len(parts) < 2:
            raise ValueError(f"expected 'stage:kind[:match]', got {text!r}")
        stage, kind = parts[0], parts[1]
        match = parts[2] if len(parts) == 3 else None
        return cls(stage=stage, kind=kind, match=match)


class FaultInjector:
    """Fires armed faults at stage boundaries; thread-safe and inert when
    disarmed.  One injector may be shared by every worker thread of a
    batch — the remaining-fires countdown is taken under a lock."""

    def __init__(self, specs: tuple[FaultSpec, ...] | list[FaultSpec] = ()) -> None:
        self._lock = threading.Lock()
        self._specs: list[FaultSpec] = []
        self._remaining: list[int | None] = []
        self._fired: dict[tuple[str, str], int] = {}
        for spec in specs:
            self.arm(spec)

    def arm(self, spec: FaultSpec) -> None:
        """Add one fault plan (takes effect immediately)."""
        with self._lock:
            self._specs.append(spec)
            self._remaining.append(spec.times)

    def disarm(self) -> None:
        """Remove every armed spec; fired-counts are kept for inspection."""
        with self._lock:
            self._specs.clear()
            self._remaining.clear()

    @property
    def armed(self) -> bool:
        with self._lock:
            return bool(self._specs)

    def fired(self, stage: str, kind: str) -> int:
        """How many times a (stage, kind) fault has actually fired."""
        with self._lock:
            return self._fired.get((stage, kind), 0)

    # ------------------------------------------------------------------

    def check(self, stage: Stage | str, question: str | None = None) -> bool:
        """Fire any armed fault matching this stage boundary.

        Returns ``True`` when an ``empty`` fault fired (the caller must
        behave as if the stage produced nothing); raises the matching
        typed error for ``error``/``timeout`` faults; sleeps and returns
        ``False`` for ``slow`` faults (the stage then runs normally);
        returns ``False`` when nothing fired.
        """
        stage_name = stage.value if isinstance(stage, Stage) else stage
        spec = self._claim(stage_name, question)
        if spec is None:
            return False
        if spec.kind == "slow":
            delay = spec.delay_ms if spec.delay_ms is not None else DEFAULT_SLOW_MS
            time.sleep(delay / 1000.0)
            return False
        if spec.kind == "empty":
            return True
        if spec.kind == "timeout":
            raise StageTimeout(stage_name, "injected timeout")
        raise error_for(stage_name)("injected fault")

    def _claim(self, stage_name: str, question: str | None) -> FaultSpec | None:
        """Find the first matching spec and consume one firing of it."""
        with self._lock:
            for index, spec in enumerate(self._specs):
                if spec.stage != stage_name:
                    continue
                if spec.match is not None and (
                    question is None or spec.match not in question
                ):
                    continue
                remaining = self._remaining[index]
                if remaining is not None:
                    if remaining <= 0:
                        continue
                    self._remaining[index] = remaining - 1
                key = (stage_name, spec.kind)
                self._fired[key] = self._fired.get(key, 0) + 1
                return spec
        return None

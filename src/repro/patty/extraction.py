"""Distant-supervision pattern extraction.

Follows PATTY's extraction stage: find sentences mentioning two known
entities, lift the connecting phrase into a normalised (lemmatised) pattern,
and attribute the occurrence to every knowledge-base relation holding
between the entity pair.  The ground-truth relation attached to the
generated sentences is **not** consulted — attribution goes through the KB
exactly as distant supervision would over a real corpus, which is what
lets noise creep in (a "was born in" sentence between a person and the city
they both were born *and* died in is attributed to both relations).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

from repro.kb.builder import KnowledgeBase
from repro.kb.pagelinks import WIKI_PAGE_LINK
from repro.nlp.morphology import lemmatize
from repro.nlp.postagger import PosTagger
from repro.nlp.tokenizer import tokenize
from repro.patty.corpus import CorpusSentence
from repro.patty.patterns import PatternOccurrence, RelationalPattern
from repro.rdf.namespaces import DBO, RDF, RDFS

#: Patterns longer than this many tokens are discarded (PATTY's
#: frequent-pattern length bound).
MAX_PATTERN_TOKENS = 6

_SKIP_PREDICATES = {WIKI_PAGE_LINK, RDF.type, RDFS.label}


class PatternExtractor:
    """Extracts and aggregates relational patterns from sentences."""

    def __init__(self, kb: KnowledgeBase) -> None:
        self._kb = kb
        self._tagger = PosTagger()

    # ------------------------------------------------------------------

    def extract(self, sentences: Iterable[CorpusSentence]) -> list[PatternOccurrence]:
        """Produce one occurrence per (sentence, attributed relation)."""
        occurrences: list[PatternOccurrence] = []
        for sentence in sentences:
            occurrences.extend(self._extract_one(sentence.text))
        return occurrences

    def _extract_one(self, text: str) -> list[PatternOccurrence]:
        tokens = tokenize(text)
        spots = list(self._kb.surface_index.spot(tokens))
        if len(spots) < 2:
            return []
        (start_a, end_a, candidates_a), (start_b, end_b, candidates_b) = spots[:2]
        between = tokens[end_a:start_b]
        pattern = self._normalise(between)
        if pattern is None:
            return []
        out: list[PatternOccurrence] = []
        # Ambiguous mentions: attribute through every candidate pair that
        # the KB connects (PATTY used its own NED; ambiguity noise remains).
        for entity_a in candidates_a:
            for entity_b in candidates_b:
                for relation in self._relations_between(entity_a, entity_b):
                    out.append(PatternOccurrence(
                        pattern=pattern,
                        subject=entity_a.local_name,
                        object=entity_b.local_name,
                        relation=relation,
                        sentence=text,
                    ))
        return out

    def _normalise(self, tokens: Sequence[str]) -> str | None:
        words = [t for t in tokens if any(ch.isalnum() for ch in t)]
        if not words or len(words) > MAX_PATTERN_TOKENS:
            return None
        tags = self._tagger.tag(list(words))
        lemmas = [lemmatize(word, tag).lower() for word, tag in zip(words, tags)]
        return " ".join(lemmas)

    def _relations_between(self, a, b) -> list[str]:
        relations = []
        for __, predicate, __o in self._kb.graph.match(a, None, b):
            if predicate not in _SKIP_PREDICATES and predicate in DBO:
                relations.append(predicate.local_name)
        for __, predicate, __o in self._kb.graph.match(b, None, a):
            if predicate not in _SKIP_PREDICATES and predicate in DBO:
                relations.append(predicate.local_name)
        return relations

    # ------------------------------------------------------------------

    @staticmethod
    def aggregate(
        occurrences: Iterable[PatternOccurrence],
    ) -> dict[tuple[str, str], RelationalPattern]:
        """Group occurrences into (pattern text, relation) aggregates."""
        aggregates: dict[tuple[str, str], RelationalPattern] = {}
        for occurrence in occurrences:
            key = (occurrence.pattern, occurrence.relation)
            aggregate = aggregates.get(key)
            if aggregate is None:
                aggregate = RelationalPattern(occurrence.pattern, occurrence.relation)
                aggregates[key] = aggregate
            aggregate.record(occurrence.subject, occurrence.object)
        return aggregates

"""PATTY substitute: mining relational patterns from a corpus.

The paper uses the PATTY resource (Nakashole et al. 2012) to map textual
phrases ("born in", "born at", "died at") onto DBpedia object properties,
ranked by pattern frequency (section 2.2.3).  PATTY itself was mined from
the New York Times archive and Wikipedia; offline we rebuild the *mechanism*
end to end:

* :mod:`repro.patty.corpus` — a synthetic corpus generator that verbalises
  knowledge-base facts through paraphrase templates, including the noisy
  verbalisations the paper complains about (a "born in" sentence attributed
  to ``deathPlace``);
* :mod:`repro.patty.extraction` — distant-supervision pattern extraction:
  spot the entity pair, take the connecting phrase, normalise it, attribute
  it to every KB relation holding between the pair;
* :mod:`repro.patty.prefixtree` — the frequent-pattern prefix tree with
  support sets, used to decide inclusion / mutual inclusion / independence;
* :mod:`repro.patty.taxonomy` — the subsumption taxonomy over patterns;
* :mod:`repro.patty.store` — the word -> (property, frequency) index the QA
  pipeline queries ("die" -> deathPlace≫birthPlace, residence).
"""

from repro.patty.patterns import PatternOccurrence, RelationalPattern
from repro.patty.corpus import CorpusSentence, generate_corpus
from repro.patty.extraction import PatternExtractor
from repro.patty.prefixtree import PrefixTree
from repro.patty.taxonomy import PatternTaxonomy, SubsumptionKind
from repro.patty.store import PatternStore, build_pattern_store

__all__ = [
    "RelationalPattern",
    "PatternOccurrence",
    "CorpusSentence",
    "generate_corpus",
    "PatternExtractor",
    "PrefixTree",
    "PatternTaxonomy",
    "SubsumptionKind",
    "PatternStore",
    "build_pattern_store",
]

"""Synthetic corpus generation: verbalising KB facts as text.

PATTY mined the New York Times and Wikipedia; we have neither offline, so
the corpus is produced by verbalising knowledge-base facts through
paraphrase templates.  Two properties of real corpora are reproduced
deliberately:

* **paraphrase diversity** — each relation is expressed by several
  competing phrasings with different frequencies ("died in" common,
  "passed away at" rare), so pattern frequencies are informative;
* **noise** — a small fraction of sentences verbalise a relation with a
  *wrong* phrase (a ``deathPlace`` fact rendered as "was born in"),
  reproducing the PATTY defect the paper discusses in sections 2.2.3/5:
  the "deathPlace" relation containing a "born in" pattern.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.kb.builder import KnowledgeBase
from repro.rdf.namespaces import DBO
from repro.rdf.terms import IRI

#: property -> list of (template, weight).  ``{s}``/``{o}`` are replaced by
#: entity labels.  Weights drive a deterministic weighted choice.
TEMPLATES: dict[str, list[tuple[str, int]]] = {
    "birthPlace": [
        ("{s} was born in {o}", 10),
        ("{s} was born at {o}", 4),
        ("{s} , born in {o} ,", 3),
        ("{s} grew up in {o}", 2),
        # Biography noise: people are often described as living in their
        # birth town; with far more birthPlace facts than residence facts,
        # this inverts the frequency ranking for "live" — the PATTY noise
        # defect of sections 2.2.3/5, reproduced on purpose.
        ("{s} lived in {o}", 2),
    ],
    "deathPlace": [
        ("{s} died in {o}", 10),
        ("{s} died at {o}", 5),
        ("{s} passed away in {o}", 3),
        # PATTY-style corpus noise: obituaries mentioning the birth city.
        ("{s} was born in {o}", 1),
    ],
    "residence": [
        ("{s} lives in {o}", 6),
        ("{s} resides in {o}", 3),
        ("{s} died in {o}", 1),  # noise
    ],
    "author": [
        ("{s} was written by {o}", 8),
        ("{s} is a novel by {o}", 4),
        ("{s} , the book {o} wrote ,", 2),
    ],
    "writer": [
        ("{s} was written by {o}", 6),
        ("{s} script by {o}", 2),
    ],
    "director": [
        ("{s} was directed by {o}", 8),
        ("{s} , a film by {o} ,", 3),
    ],
    "starring": [
        ("{s} starring {o}", 6),
        ("{s} stars {o}", 4),
    ],
    "producer": [
        ("{s} was produced by {o}", 6),
    ],
    "creator": [
        ("{s} was created by {o}", 8),
        ("{s} , invented by {o} ,", 2),
    ],
    "developer": [
        ("{s} was developed by {o}", 8),
        ("{s} was made by {o}", 3),
    ],
    "foundedBy": [
        ("{s} was founded by {o}", 8),
        ("{s} was established by {o}", 4),
        ("{s} was started by {o}", 2),
    ],
    "spouse": [
        ("{s} is married to {o}", 8),
        ("{s} married {o}", 5),
        ("{s} wed {o}", 2),
    ],
    "child": [
        ("{o} is the child of {s}", 5),
        ("{o} , the daughter of {s} ,", 3),
        ("{o} , the son of {s} ,", 3),
    ],
    "capital": [
        ("{o} is the capital of {s}", 8),
    ],
    "country": [
        ("{s} is located in {o}", 8),
        ("{s} lies in {o}", 4),
        ("{s} is a city in {o}", 4),
    ],
    "leaderName": [
        ("{s} is led by {o}", 5),
        ("{o} leads {s}", 3),
        ("{o} governs {s}", 3),
    ],
    "mayor": [
        ("{o} is the mayor of {s}", 6),
        ("{o} governs {s}", 2),
    ],
    "governor": [
        ("{o} is the governor of {s}", 6),
        ("{o} governs {s}", 2),
    ],
    "crosses": [
        ("{s} crosses {o}", 8),
        ("{s} spans {o}", 4),
    ],
    "mouth": [
        ("{s} flows into {o}", 6),
        ("{s} empties into {o}", 3),
    ],
    "sourceCountry": [
        ("{s} starts in {o}", 5),
        ("{s} originates in {o}", 4),
        ("{s} begins in {o}", 3),
    ],
    "owner": [
        ("{s} is owned by {o}", 8),
        ("{o} owns {s}", 4),
    ],
    "team": [
        ("{s} plays for {o}", 8),
    ],
    "artist": [
        ("{s} was recorded by {o}", 5),
        ("{s} , a song by {o} ,", 3),
        ("{o} sang {s}", 2),
    ],
    "bandMember": [
        ("{o} is a member of {s}", 6),
        ("{o} plays in {s}", 3),
    ],
    "architect": [
        ("{s} was designed by {o}", 6),
        ("{s} was built by {o}", 3),
    ],
    "location": [
        ("{s} is located in {o}", 8),
        ("{s} stands in {o}", 3),
    ],
    "headquarter": [
        ("{s} is headquartered in {o}", 6),
        ("{s} is based in {o}", 4),
    ],
    "crewMember": [
        ("{o} flew on {s}", 5),
        ("{o} was a crew member of {s}", 3),
    ],
    "launchSite": [
        ("{s} was launched from {o}", 6),
    ],
}


@dataclass(frozen=True, slots=True)
class CorpusSentence:
    """One generated sentence with its provenance fact."""

    text: str
    subject: str   # entity local name
    object: str    # entity local name
    relation: str  # the fact's property (ground truth, NOT given to mining)


def _weighted_choice(rng: random.Random, options: list[tuple[str, int]]) -> str:
    total = sum(weight for __, weight in options)
    pick = rng.randrange(total)
    for template, weight in options:
        if pick < weight:
            return template
        pick -= weight
    raise AssertionError("unreachable")


def generate_corpus(
    kb: KnowledgeBase,
    sentences_per_fact: int = 3,
    seed: int = 29,
    properties: Iterable[str] | None = None,
) -> list[CorpusSentence]:
    """Verbalize every templated fact of ``kb`` into sentences.

    Deterministic for a given seed.  ``properties`` restricts which
    relations are verbalised (default: all templated ones).
    """
    rng = random.Random(seed)
    wanted = set(properties) if properties is not None else set(TEMPLATES)
    sentences: list[CorpusSentence] = []
    for prop_name in sorted(wanted):
        templates = TEMPLATES.get(prop_name)
        if not templates:
            continue
        predicate = DBO[prop_name]
        for triple in kb.graph.match(None, predicate, None):
            subject = triple.subject
            obj = triple.object
            if not isinstance(obj, IRI):
                continue
            subject_label = kb.label_of(subject)
            object_label = kb.label_of(obj)
            for __ in range(sentences_per_fact):
                template = _weighted_choice(rng, templates)
                text = template.format(s=subject_label, o=object_label)
                sentences.append(CorpusSentence(
                    text=text,
                    subject=subject.local_name,
                    object=obj.local_name,
                    relation=prop_name,
                ))
    return sentences


def corpus_statistics(sentences: list[CorpusSentence]) -> dict[str, int]:
    """Sentence counts per relation (diagnostics and tests)."""
    counts: dict[str, int] = {}
    for sentence in sentences:
        counts[sentence.relation] = counts.get(sentence.relation, 0) + 1
    return counts

"""The pattern store: word -> (property, frequency) used by section 2.2.3.

    "The word 'die' may occur in many forms in pattern texts.  We count all
    occurrences of the word and assign it as a frequency value to the
    relative property. ... Frequency of a pattern determines the ranking
    score of the predicate."

Lookups are by lemma ("die", "bear", "write"), matching how the QA pipeline
normalises question predicates.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from repro.kb.builder import KnowledgeBase
from repro.patty.corpus import generate_corpus
from repro.patty.extraction import PatternExtractor
from repro.patty.patterns import RelationalPattern


class PatternStore:
    """Frequency-ranked word -> property index over mined patterns."""

    def __init__(self, patterns: Iterable[RelationalPattern] = ()) -> None:
        self._frequency: dict[str, dict[str, int]] = defaultdict(lambda: defaultdict(int))
        self._patterns: list[RelationalPattern] = []
        for pattern in patterns:
            self.add_pattern(pattern)

    def add_pattern(self, pattern: RelationalPattern) -> None:
        self._patterns.append(pattern)
        for word in pattern.content_words:
            self._frequency[word][pattern.relation] += pattern.frequency

    # ------------------------------------------------------------------

    def properties_for(self, word: str) -> list[tuple[str, int]]:
        """Properties whose patterns contain ``word``, most frequent first.

        >>> store = PatternStore([
        ...     RelationalPattern("die in", "deathPlace", 40, {("a", "b")}),
        ...     RelationalPattern("die in", "birthPlace", 3, {("a", "b")}),
        ... ])
        >>> store.properties_for("die")
        [('deathPlace', 40), ('birthPlace', 3)]
        """
        ranked = self._frequency.get(word.lower())
        if not ranked:
            return []
        return sorted(ranked.items(), key=lambda item: (-item[1], item[0]))

    def frequency(self, word: str, property_name: str) -> int:
        """Occurrence count of ``word`` under one property's patterns."""
        return self._frequency.get(word.lower(), {}).get(property_name, 0)

    def words(self) -> list[str]:
        return sorted(self._frequency)

    def patterns(self) -> list[RelationalPattern]:
        return list(self._patterns)

    def __contains__(self, word: str) -> bool:
        return word.lower() in self._frequency

    def __len__(self) -> int:
        return len(self._frequency)


def build_pattern_store(
    kb: KnowledgeBase,
    sentences_per_fact: int = 3,
    seed: int = 29,
    min_support: int = 1,
) -> PatternStore:
    """Run the full mining pipeline: corpus -> extraction -> aggregation.

    ``min_support`` drops patterns seen with fewer distinct entity pairs
    (PATTY's frequent-pattern threshold).
    """
    sentences = generate_corpus(kb, sentences_per_fact=sentences_per_fact, seed=seed)
    extractor = PatternExtractor(kb)
    occurrences = extractor.extract(sentences)
    aggregates = extractor.aggregate(occurrences)
    store = PatternStore()
    for aggregate in aggregates.values():
        if len(aggregate.support) >= min_support:
            store.add_pattern(aggregate)
    return store

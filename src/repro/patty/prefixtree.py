"""Prefix tree over pattern token sequences with support sets.

PATTY stores the support sets of frequent patterns in a prefix tree and
answers subsumption queries ("is support(A) contained in support(B)?") via
set intersections computed on the tree.  This implementation keeps each
node's aggregate support (union over the subtree), so prefix
generalisations ("be bear" generalises "be bear in" and "be bear at") have
their support available directly at the interior node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

Pair = tuple[str, str]


@dataclass
class _Node:
    children: dict[str, "_Node"] = field(default_factory=dict)
    #: support of patterns ending exactly here.
    terminal_support: set[Pair] = field(default_factory=set)
    #: union of supports in the whole subtree (incl. terminal_support).
    subtree_support: set[Pair] = field(default_factory=set)
    is_terminal: bool = False


class PrefixTree:
    """Token-sequence prefix tree with support-set aggregation."""

    def __init__(self) -> None:
        self._root = _Node()
        self._size = 0

    def insert(self, tokens: tuple[str, ...], support: set[Pair]) -> None:
        """Insert a pattern with its support set (merges on re-insert)."""
        if not tokens:
            raise ValueError("cannot insert an empty pattern")
        node = self._root
        node.subtree_support |= support
        for token in tokens:
            node = node.children.setdefault(token, _Node())
            node.subtree_support |= support
        if not node.is_terminal:
            self._size += 1
        node.is_terminal = True
        node.terminal_support |= support

    def __len__(self) -> int:
        return self._size

    def __contains__(self, tokens: tuple[str, ...]) -> bool:
        node = self._find(tokens)
        return node is not None and node.is_terminal

    def support(self, tokens: tuple[str, ...]) -> set[Pair]:
        """Exact support of a terminal pattern (empty if absent)."""
        node = self._find(tokens)
        if node is None or not node.is_terminal:
            return set()
        return set(node.terminal_support)

    def prefix_support(self, tokens: tuple[str, ...]) -> set[Pair]:
        """Aggregated support of every pattern extending this prefix."""
        node = self._find(tokens)
        if node is None:
            return set()
        return set(node.subtree_support)

    def patterns(self) -> Iterator[tuple[tuple[str, ...], set[Pair]]]:
        """All terminal patterns with their supports."""
        stack: list[tuple[_Node, tuple[str, ...]]] = [(self._root, ())]
        while stack:
            node, prefix = stack.pop()
            if node.is_terminal:
                yield (prefix, set(node.terminal_support))
            for token, child in node.children.items():
                stack.append((child, prefix + (token,)))

    def _find(self, tokens: tuple[str, ...]) -> _Node | None:
        node = self._root
        for token in tokens:
            node = node.children.get(token)
            if node is None:
                return None
        return node

    # ------------------------------------------------------------------
    # Set-intersection queries (the PATTY subsumption primitives)
    # ------------------------------------------------------------------

    def intersection(self, a: tuple[str, ...], b: tuple[str, ...]) -> set[Pair]:
        """Support intersection of two terminal patterns."""
        return self.support(a) & self.support(b)

    def inclusion(self, a: tuple[str, ...], b: tuple[str, ...]) -> float:
        """|support(a) ∩ support(b)| / |support(a)| — how much of a's
        support b covers.  0.0 when a has no support."""
        support_a = self.support(a)
        if not support_a:
            return 0.0
        return len(support_a & self.support(b)) / len(support_a)

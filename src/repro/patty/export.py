"""Export the mined pattern resource (PATTY-release-style artefacts).

The real PATTY was distributed as flat files of typed patterns with
support and confidence.  This module writes the mined store in the same
spirit — a TSV of patterns and a JSON document with the word->property
frequency index — and reads them back, so a mined resource can be shipped
and reloaded without rerunning extraction.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TextIO

from repro.patty.patterns import RelationalPattern
from repro.patty.store import PatternStore


def export_patterns_tsv(store: PatternStore, destination: str | Path | TextIO) -> int:
    """Write one line per aggregated pattern:
    ``pattern<TAB>relation<TAB>frequency<TAB>support_size``.

    Returns the number of rows written.
    """
    rows = sorted(
        store.patterns(),
        key=lambda p: (-p.frequency, p.relation, p.text),
    )

    def write_all(handle: TextIO) -> int:
        handle.write("# pattern\trelation\tfrequency\tsupport\n")
        for pattern in rows:
            handle.write(
                f"{pattern.text}\t{pattern.relation}\t"
                f"{pattern.frequency}\t{len(pattern.support)}\n"
            )
        return len(rows)

    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8") as handle:
            return write_all(handle)
    return write_all(destination)


def import_patterns_tsv(source: str | Path | TextIO) -> PatternStore:
    """Rebuild a :class:`PatternStore` from an exported TSV.

    Support *sets* are not serialised (like the public PATTY release, which
    shipped only support sizes); imported patterns carry synthetic support
    pair counts so frequencies — the only thing section 2.2.3 consumes —
    round-trip exactly.
    """
    def read_all(handle: TextIO) -> PatternStore:
        store = PatternStore()
        for line_number, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) != 4:
                raise ValueError(
                    f"malformed pattern TSV at line {line_number}: {line!r}"
                )
            text, relation, frequency, support_size = parts
            support = {(f"pair{i}", relation) for i in range(int(support_size))}
            store.add_pattern(RelationalPattern(
                text, relation, int(frequency), support,
            ))
        return store

    if isinstance(source, (str, Path)):
        with open(source, encoding="utf-8") as handle:
            return read_all(handle)
    return read_all(source)


def export_store_json(store: PatternStore, destination: str | Path | TextIO) -> None:
    """Write the word -> [(property, frequency)] index as JSON."""
    payload = {
        "format": "repro-patty-store/1",
        "words": {
            word: [
                {"property": name, "frequency": frequency}
                for name, frequency in store.properties_for(word)
            ]
            for word in store.words()
        },
    }
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
    else:
        json.dump(payload, destination, indent=2, sort_keys=True)

"""Subsumption taxonomy over mined patterns.

PATTY organises patterns into a taxonomy by comparing support sets:
pattern A *subsumes* B when B's support is (almost) contained in A's;
mutual inclusion makes them synonymous; otherwise they are independent.
The inclusion tests run on the prefix tree's support sets.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from typing import Iterable

from repro.patty.patterns import RelationalPattern
from repro.patty.prefixtree import PrefixTree


class SubsumptionKind(enum.Enum):
    EQUIVALENT = "equivalent"
    SUBSUMES = "subsumes"          # A ⊐ B (A more general)
    SUBSUMED_BY = "subsumed_by"    # A ⊏ B
    INDEPENDENT = "independent"


class PatternTaxonomy:
    """Pairwise subsumption relations plus synonym clusters.

    ``tolerance`` relaxes strict set inclusion the way PATTY does for noisy
    support sets: inclusion holds when at least that fraction of the
    smaller support is covered.
    """

    def __init__(
        self,
        patterns: Iterable[RelationalPattern],
        tolerance: float = 0.95,
        min_support: int = 2,
    ) -> None:
        self._tolerance = tolerance
        self._tree = PrefixTree()
        self._patterns: dict[tuple[str, ...], RelationalPattern] = {}
        for pattern in patterns:
            if len(pattern.support) < min_support:
                continue  # infrequent patterns never enter the taxonomy
            key = pattern.tokens
            existing = self._patterns.get(key)
            if existing is None:
                merged = RelationalPattern(pattern.text, pattern.relation,
                                           pattern.frequency, set(pattern.support))
                self._patterns[key] = merged
            else:
                existing.frequency += pattern.frequency
                existing.support |= pattern.support
            self._tree.insert(key, set(pattern.support))

    @property
    def tree(self) -> PrefixTree:
        return self._tree

    def patterns(self) -> list[RelationalPattern]:
        return list(self._patterns.values())

    def classify(self, a: tuple[str, ...], b: tuple[str, ...]) -> SubsumptionKind:
        """Inclusion / mutual inclusion / independence of two patterns."""
        a_in_b = self._tree.inclusion(a, b) >= self._tolerance
        b_in_a = self._tree.inclusion(b, a) >= self._tolerance
        if a_in_b and b_in_a:
            return SubsumptionKind.EQUIVALENT
        if b_in_a:
            return SubsumptionKind.SUBSUMES
        if a_in_b:
            return SubsumptionKind.SUBSUMED_BY
        return SubsumptionKind.INDEPENDENT

    def synonym_sets(self) -> list[set[str]]:
        """Clusters of mutually-including patterns (PATTY's SOL sets),
        computed per relation so 'die in'~'die at' cluster under
        deathPlace without dragging in other relations."""
        by_relation: dict[str, list[RelationalPattern]] = defaultdict(list)
        for pattern in self._patterns.values():
            by_relation[pattern.relation].append(pattern)

        clusters: list[set[str]] = []
        for relation_patterns in by_relation.values():
            remaining = list(relation_patterns)
            while remaining:
                seed = remaining.pop()
                cluster = {seed.text}
                rest: list[RelationalPattern] = []
                for other in remaining:
                    kind = self.classify(seed.tokens, other.tokens)
                    if kind is SubsumptionKind.EQUIVALENT:
                        cluster.add(other.text)
                    else:
                        rest.append(other)
                remaining = rest
                clusters.append(cluster)
        return clusters

    def generalisations(self, tokens: tuple[str, ...]) -> list[tuple[str, ...]]:
        """Proper prefixes of a pattern that subsume it in the tree
        (PATTY's prefix-generalisation step)."""
        out = []
        for cut in range(1, len(tokens)):
            prefix = tokens[:cut]
            if self._tree.prefix_support(prefix) >= self._tree.support(tokens):
                out.append(prefix)
        return out

"""Pattern data model."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class PatternOccurrence:
    """One sighting of a pattern in the corpus."""

    pattern: str          # normalised connecting phrase, e.g. "be bear in"
    subject: str          # entity local name
    object: str           # entity local name
    relation: str         # property local name (distant supervision)
    sentence: str = ""    # original sentence text (diagnostics)


@dataclass
class RelationalPattern:
    """An aggregated pattern with its support under one relation.

    ``support`` is the set of (subject, object) entity pairs the pattern was
    seen connecting; ``frequency`` the raw occurrence count.  PATTY's
    semantic typing corresponds to the relation's domain/range, which the
    ontology supplies downstream.
    """

    text: str
    relation: str
    frequency: int = 0
    support: set[tuple[str, str]] = field(default_factory=set)

    @property
    def tokens(self) -> tuple[str, ...]:
        return tuple(self.text.split())

    @property
    def content_words(self) -> tuple[str, ...]:
        """Pattern words carrying lexical content (what the QA pipeline
        looks up): everything except closed-class glue."""
        return tuple(w for w in self.tokens if w not in _GLUE and w != "*")

    def record(self, subject: str, obj: str) -> None:
        self.frequency += 1
        self.support.add((subject, obj))


_GLUE = {
    "a", "an", "the", "of", "in", "at", "on", "by", "to", "from", "with",
    "be", "is", "was", "are", "were", "been", "'s", "into", "as", "and",
    "for",
}

"""The hand-built WordNet fragment.

Covers the vocabulary that DBpedia property mapping needs: roles and kinship
nouns, measurement attributes, creation/biography verbs, and the adjectives
that measure data properties.  The taxonomy shape and lemma groupings follow
real WordNet 3.0 (simplified); counts approximate SemCor frequency mass so
the Lin metric behaves like WordNet::Similarity's.

Deliberate omission, mirroring the paper's section 5 failure case: the
adjective ``alive`` has **no attribute link** — neither WordNet nor the
relational patterns can map "Is Frank Herbert still alive?" to
``dbo:deathDate``, so the pipeline must fail that question exactly like the
original system did.
"""

from __future__ import annotations

from repro.wordnet.synsets import Synset, WordNetDatabase


def _n(identifier, lemmas, hypernym=None, count=5, gloss=""):
    hypernyms = (hypernym,) if hypernym else ()
    return Synset(identifier, "n", tuple(lemmas), hypernyms, (), gloss, count)


def _v(identifier, lemmas, hypernym=None, count=5, gloss=""):
    hypernyms = (hypernym,) if hypernym else ()
    return Synset(identifier, "v", tuple(lemmas), hypernyms, (), gloss, count)


def _a(identifier, lemmas, attributes=(), count=5, gloss=""):
    return Synset(identifier, "a", tuple(lemmas), (), tuple(attributes), gloss, count)


def build_wordnet() -> WordNetDatabase:
    """Construct the mini-WordNet.

    >>> wn = build_wordnet()
    >>> sorted(wn.synsets("author", "n")[0].lemmas)[:2]
    ['author', 'writer']
    """
    synsets = [
        # ------------------------------------------------------------------
        # Noun taxonomy
        # ------------------------------------------------------------------
        _n("entity.n.01", ["entity"], count=1),
        _n("physical_entity.n.01", ["physical entity"], "entity.n.01", count=1),
        _n("abstraction.n.01", ["abstraction"], "entity.n.01", count=1),
        _n("object.n.01", ["object"], "physical_entity.n.01", count=10),

        # Locations.
        _n("location.n.01", ["location", "place"], "object.n.01", count=40),
        _n("region.n.01", ["region", "area"], "location.n.01", count=25),
        _n("city.n.01", ["city", "metropolis", "town"], "region.n.01", count=30),
        _n("country.n.01", ["country", "nation", "land", "state"], "region.n.01", count=30),
        _n("capital.n.01", ["capital"], "city.n.01", count=12),
        _n("birthplace.n.01", ["birthplace"], "location.n.01", count=6),
        _n("residence.n.01", ["residence", "home"], "location.n.01", count=10),
        _n("mountain.n.01", ["mountain", "peak", "mount"], "object.n.01", count=12),
        _n("river.n.01", ["river", "stream"], "object.n.01", count=12),
        _n("lake.n.01", ["lake"], "object.n.01", count=8),
        _n("mouth.n.01", ["mouth", "outlet"], "location.n.01", count=3),

        # Artifacts and works.
        _n("artifact.n.01", ["artifact"], "object.n.01", count=10),
        _n("building.n.01", ["building", "edifice"], "artifact.n.01", count=15),
        _n("bridge.n.01", ["bridge", "span"], "artifact.n.01", count=8),
        _n("creation.n.01", ["creation", "work"], "artifact.n.01", count=15),
        _n("book.n.01", ["book", "volume"], "creation.n.01", count=25),
        _n("film.n.01", ["film", "movie", "picture"], "creation.n.01", count=20),
        _n("album.n.01", ["album", "record"], "creation.n.01", count=10),
        _n("song.n.01", ["song"], "creation.n.01", count=10),

        # People and roles.
        _n("person.n.01", ["person", "individual", "human"], "physical_entity.n.01", count=50),
        _n("communicator.n.01", ["communicator"], "person.n.01", count=5),
        _n("writer.n.01", ["writer", "author"], "communicator.n.01", count=20,
           gloss="writes books or stories or articles"),
        _n("journalist.n.01", ["journalist", "reporter"], "communicator.n.01", count=8),
        _n("creator.n.01", ["creator", "maker"], "person.n.01", count=10),
        _n("artist.n.01", ["artist"], "creator.n.01", count=15),
        _n("musician.n.01", ["musician", "player"], "artist.n.01", count=10),
        _n("singer.n.01", ["singer", "vocalist"], "musician.n.01", count=8),
        _n("painter.n.01", ["painter"], "artist.n.01", count=8),
        _n("designer.n.01", ["designer"], "creator.n.01", count=6),
        _n("architect.n.01", ["architect"], "creator.n.01", count=6),
        _n("producer.n.01", ["producer"], "creator.n.01", count=8),
        _n("director.n.01", ["director", "filmmaker"], "creator.n.01", count=10),
        _n("founder.n.01", ["founder", "establisher"], "creator.n.01", count=8),
        _n("developer.n.01", ["developer"], "creator.n.01", count=8),
        _n("leader.n.01", ["leader", "head"], "person.n.01", count=20),
        _n("ruler.n.01", ["ruler", "sovereign"], "leader.n.01", count=10),
        _n("monarch.n.01", ["monarch", "king", "queen"], "ruler.n.01", count=10),
        _n("politician.n.01", ["politician"], "leader.n.01", count=12),
        _n("president.n.01", ["president"], "leader.n.01", count=15),
        _n("mayor.n.01", ["mayor"], "leader.n.01", count=8),
        _n("governor.n.01", ["governor"], "leader.n.01", count=8),
        _n("chancellor.n.01", ["chancellor", "premier"], "leader.n.01", count=6),
        _n("minister.n.01", ["minister"], "leader.n.01", count=8),
        _n("owner.n.01", ["owner", "proprietor", "possessor"], "person.n.01", count=10),
        _n("employer.n.01", ["employer"], "person.n.01", count=6),
        _n("employee.n.01", ["employee", "worker"], "person.n.01", count=12),
        _n("student.n.01", ["student", "pupil"], "person.n.01", count=15),
        _n("scientist.n.01", ["scientist"], "person.n.01", count=10),
        _n("athlete.n.01", ["athlete", "sportsman"], "person.n.01", count=10),
        _n("actor.n.01", ["actor", "performer"], "artist.n.01", count=12),
        _n("astronaut.n.01", ["astronaut", "cosmonaut", "spaceman"], "person.n.01", count=5),
        _n("relative.n.01", ["relative", "relation"], "person.n.01", count=10),
        _n("spouse.n.01", ["spouse", "partner", "better half"], "relative.n.01", count=12),
        _n("wife.n.01", ["wife", "married woman"], "spouse.n.01", count=12),
        _n("husband.n.01", ["husband", "married man"], "spouse.n.01", count=10),
        _n("child.n.01", ["child", "kid", "offspring"], "relative.n.01", count=20),
        _n("daughter.n.01", ["daughter", "girl"], "child.n.01", count=10),
        _n("son.n.01", ["son", "boy"], "child.n.01", count=10),
        _n("parent.n.01", ["parent"], "relative.n.01", count=12),
        _n("father.n.01", ["father", "dad"], "parent.n.01", count=12),
        _n("mother.n.01", ["mother", "mom"], "parent.n.01", count=12),

        # Groups.
        _n("group.n.01", ["group"], "abstraction.n.01", count=10),
        _n("organization.n.01", ["organization", "organisation"], "group.n.01", count=20),
        _n("company.n.01", ["company", "firm", "corporation"], "organization.n.01", count=20),
        _n("university.n.01", ["university", "college"], "organization.n.01", count=12),
        _n("band.n.01", ["band", "ensemble"], "organization.n.01", count=8),
        _n("team.n.01", ["team", "squad", "club"], "organization.n.01", count=12),
        _n("party.n.01", ["party"], "organization.n.01", count=10),

        # Attributes and measures.
        _n("attribute.n.01", ["attribute"], "abstraction.n.01", count=5),
        _n("property.n.02", ["property", "dimension"], "attribute.n.01", count=5),
        _n("size.n.01", ["size"], "property.n.02", count=12),
        _n("height.n.01", ["height", "stature", "tallness"], "property.n.02", count=12),
        _n("length.n.01", ["length"], "property.n.02", count=12),
        _n("width.n.01", ["width", "breadth", "wingspan"], "property.n.02", count=8),
        _n("depth.n.01", ["depth", "deepness"], "property.n.02", count=8),
        _n("weight.n.01", ["weight", "mass"], "property.n.02", count=10),
        _n("elevation.n.01", ["elevation", "altitude", "height"], "property.n.02", count=8),
        _n("area.n.02", ["area", "expanse", "surface area"], "property.n.02", count=10),
        _n("speed.n.01", ["speed", "velocity"], "property.n.02", count=8),
        _n("age.n.01", ["age"], "property.n.02", count=12),
        _n("measure.n.01", ["measure", "quantity", "amount"], "abstraction.n.01", count=8),
        _n("number.n.01", ["number", "count"], "measure.n.01", count=15),
        _n("population.n.01", ["population"], "measure.n.01", count=12),
        _n("budget.n.01", ["budget"], "measure.n.01", count=6),
        _n("revenue.n.01", ["revenue", "gross", "income"], "measure.n.01", count=6),

        # Time.
        _n("time.n.01", ["time"], "abstraction.n.01", count=10),
        _n("date.n.01", ["date", "day"], "time.n.01", count=15),
        _n("year.n.01", ["year"], "time.n.01", count=15),
        _n("birthday.n.01", ["birthday", "birthdate"], "date.n.01", count=6),

        # Communication.
        _n("communication.n.01", ["communication"], "abstraction.n.01", count=5),
        _n("language.n.01", ["language", "tongue", "speech"], "communication.n.01", count=15),
        _n("name.n.01", ["name"], "communication.n.01", count=15),
        _n("genre.n.01", ["genre", "style"], "communication.n.01", count=6),

        # Possession.
        _n("possession.n.01", ["possession"], "abstraction.n.01", count=5),
        _n("money.n.01", ["money"], "possession.n.01", count=12),
        _n("currency.n.01", ["currency"], "money.n.01", count=8),

        # ------------------------------------------------------------------
        # Verb taxonomy
        # ------------------------------------------------------------------
        _v("make.v.01", ["make", "create"], count=40),
        _v("produce.v.01", ["produce", "bring forth"], "make.v.01", count=15),
        _v("write.v.01", ["write", "compose", "pen", "author"], "make.v.01", count=25,
           gloss="produce a literary work"),
        _v("publish.v.01", ["publish", "issue", "release"], "produce.v.01", count=10),
        _v("direct.v.01", ["direct"], "make.v.01", count=10,
           gloss="be the director of"),
        _v("design.v.01", ["design", "plan"], "make.v.01", count=8),
        _v("invent.v.01", ["invent", "devise"], "make.v.01", count=8),
        _v("develop.v.01", ["develop"], "make.v.01", count=10),
        _v("build.v.01", ["build", "construct"], "make.v.01", count=12),
        _v("found.v.01", ["found", "establish", "launch", "set up"], "make.v.01", count=12),
        _v("bear.v.01", ["bear", "give birth", "deliver", "birth"], "produce.v.01", count=15),
        _v("record.v.01", ["record", "tape"], "make.v.01", count=8),
        _v("paint.v.01", ["paint"], "make.v.01", count=6),

        _v("change.v.01", ["change"], count=20),
        _v("die.v.01", ["die", "decease", "perish", "expire", "pass away"],
           "change.v.01", count=18, gloss="lose one's life"),

        _v("be.v.01", ["be", "exist"], count=50),
        _v("live.v.01", ["live", "dwell", "reside", "inhabit"], "be.v.01", count=15),
        _v("locate.v.01", ["locate", "situate", "place"], "be.v.01", count=8),

        _v("have.v.01", ["have", "hold"], count=30),
        _v("own.v.01", ["own", "possess"], "have.v.01", count=10),

        _v("control.v.01", ["control", "command"], count=10),
        _v("lead.v.01", ["lead", "head"], "control.v.01", count=12),
        _v("govern.v.01", ["govern", "rule"], "control.v.01", count=8),

        _v("join.v.01", ["join", "unite"], count=10),
        _v("marry.v.01", ["marry", "wed", "espouse"], "join.v.01", count=10),

        _v("move.v.01", ["move", "go", "travel"], count=20),
        _v("cross.v.01", ["cross", "traverse", "span"], "move.v.01", count=8),
        _v("flow.v.01", ["flow", "run"], "move.v.01", count=8),
        _v("start.v.01", ["start", "begin", "originate"], "move.v.01", count=10),

        _v("act.v.01", ["act", "perform"], count=10),
        _v("star.v.01", ["star", "feature", "appear"], "act.v.01", count=8),
        _v("play.v.01", ["play"], "act.v.01", count=12),
        _v("sing.v.01", ["sing"], "act.v.01", count=6),

        _v("communicate.v.01", ["communicate"], count=10),
        _v("speak.v.01", ["speak", "talk"], "communicate.v.01", count=12),
        _v("name.v.01", ["name", "call"], "communicate.v.01", count=10),
        _v("win.v.01", ["win", "gain"], count=10),

        # ------------------------------------------------------------------
        # Adjectives (attribute links drive the section 2.2.2 map)
        # ------------------------------------------------------------------
        _a("tall.a.01", ["tall"], ["height.n.01"], count=10,
           gloss="great in vertical dimension"),
        _a("high.a.01", ["high"], ["height.n.01", "elevation.n.01"], count=12),
        _a("long.a.01", ["long"], ["length.n.01"], count=12),
        _a("short.a.01", ["short"], ["height.n.01", "length.n.01"], count=8),
        _a("wide.a.01", ["wide", "broad"], ["width.n.01"], count=8),
        _a("deep.a.01", ["deep"], ["depth.n.01"], count=8),
        _a("heavy.a.01", ["heavy"], ["weight.n.01"], count=8),
        _a("big.a.01", ["big", "large"], ["size.n.01", "area.n.02"], count=15),
        _a("small.a.01", ["small", "little"], ["size.n.01"], count=12),
        _a("old.a.01", ["old"], ["age.n.01"], count=12),
        _a("young.a.01", ["young"], ["age.n.01"], count=8),
        _a("fast.a.01", ["fast", "quick"], ["speed.n.01"], count=8),
        _a("populous.a.01", ["populous"], ["population.n.01"], count=4),
        _a("rich.a.01", ["rich", "wealthy"], ["revenue.n.01"], count=6),
        # 'alive' intentionally carries no attribute link (see module docstring).
        _a("alive.a.01", ["alive", "living"], [], count=10,
           gloss="possessing life; not mapped to any measurable attribute"),
        _a("dead.a.01", ["dead"], [], count=10),
        _a("famous.a.01", ["famous", "celebrated"], [], count=6),
        _a("married.a.01", ["married"], [], count=6),
        _a("official.a.01", ["official"], [], count=6),
    ]
    return WordNetDatabase(synsets)

"""Synset model and the WordNet database container.

Synsets carry hypernym links (nouns and verbs), attribute links
(adjective -> the noun it measures) and corpus counts from which the
information content used by the Lin metric is computed.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Iterator


@dataclass(frozen=True, slots=True)
class Synset:
    """One WordNet synset.

    ``identifier`` follows the NLTK convention ``lemma.pos.nn``
    (e.g. ``write.v.01``).  ``count`` is the corpus frequency mass used for
    information content; hand-assigned here the way SemCor counts back real
    WordNet (common concepts get large counts, specific ones small counts).
    """

    identifier: str
    pos: str  # 'n', 'v', 'a'
    lemmas: tuple[str, ...]
    hypernyms: tuple[str, ...] = ()
    attributes: tuple[str, ...] = ()  # adjective -> noun synset ids
    gloss: str = ""
    count: int = 1

    def __post_init__(self) -> None:
        if self.pos not in ("n", "v", "a"):
            raise ValueError(f"synset pos must be n/v/a, got {self.pos!r}")
        if not self.lemmas:
            raise ValueError(f"synset {self.identifier} has no lemmas")


class WordNetDatabase:
    """Synset storage with lemma index, taxonomy walks and information content."""

    def __init__(self, synsets: Iterable[Synset]) -> None:
        self._synsets: dict[str, Synset] = {}
        self._by_lemma: dict[tuple[str, str], list[str]] = defaultdict(list)
        for synset in synsets:
            if synset.identifier in self._synsets:
                raise ValueError(f"duplicate synset {synset.identifier}")
            self._synsets[synset.identifier] = synset
            for lemma in synset.lemmas:
                self._by_lemma[(lemma.lower(), synset.pos)].append(synset.identifier)
        # Validate link targets.
        for synset in self._synsets.values():
            for target in synset.hypernyms + synset.attributes:
                if target not in self._synsets:
                    raise ValueError(
                        f"{synset.identifier} links to unknown synset {target!r}"
                    )
        self._ic_cache: dict[str, float] | None = None

    # -- lookup ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._synsets)

    def __contains__(self, identifier: str) -> bool:
        return identifier in self._synsets

    def get(self, identifier: str) -> Synset:
        try:
            return self._synsets[identifier]
        except KeyError:
            raise KeyError(f"no synset {identifier!r}") from None

    def synsets(self, lemma: str, pos: str | None = None) -> list[Synset]:
        """All synsets containing ``lemma`` (optionally restricted by pos)."""
        out: list[Synset] = []
        for p in ("n", "v", "a") if pos is None else (pos,):
            for identifier in self._by_lemma.get((lemma.lower(), p), ()):
                out.append(self._synsets[identifier])
        return out

    def all_synsets(self, pos: str | None = None) -> Iterator[Synset]:
        for synset in self._synsets.values():
            if pos is None or synset.pos == pos:
                yield synset

    # -- taxonomy ------------------------------------------------------------

    def hypernym_paths(self, identifier: str) -> list[list[str]]:
        """All root paths (synset first, root last)."""
        synset = self.get(identifier)
        if not synset.hypernyms:
            return [[identifier]]
        paths: list[list[str]] = []
        for parent in synset.hypernyms:
            for path in self.hypernym_paths(parent):
                paths.append([identifier, *path])
        return paths

    def ancestors(self, identifier: str) -> set[str]:
        """All hypernyms, transitively (excluding the synset itself)."""
        out: set[str] = set()
        frontier = list(self.get(identifier).hypernyms)
        while frontier:
            current = frontier.pop()
            if current not in out:
                out.add(current)
                frontier.extend(self.get(current).hypernyms)
        return out

    def depth(self, identifier: str) -> int:
        """1 + minimum hypernym distance to a root (roots have depth 1)."""
        return min(len(path) for path in self.hypernym_paths(identifier))

    def lowest_common_subsumer(self, a: str, b: str) -> str | None:
        """The deepest shared ancestor (or one of ``a``/``b`` itself)."""
        ancestors_a = self.ancestors(a) | {a}
        ancestors_b = self.ancestors(b) | {b}
        shared = ancestors_a & ancestors_b
        if not shared:
            return None
        return max(shared, key=self.depth)

    # -- information content -----------------------------------------------

    def information_content(self, identifier: str) -> float:
        """Resnik-style IC: ``-log p(synset)`` with descendant-mass counts."""
        if self._ic_cache is None:
            self._ic_cache = self._compute_ic()
        return self._ic_cache[identifier]

    def _compute_ic(self) -> dict[str, float]:
        # Each synset's probability mass includes all its descendants, per
        # the standard Resnik construction, computed per part of speech.
        mass: dict[str, float] = {i: float(s.count) for i, s in self._synsets.items()}
        # Propagate counts upward (children add to every ancestor).
        for identifier, synset in self._synsets.items():
            for ancestor in self.ancestors(identifier):
                mass[ancestor] += synset.count
        totals = {"n": 0.0, "v": 0.0, "a": 0.0}
        for identifier, synset in self._synsets.items():
            if not synset.hypernyms:  # root: carries the whole subtree mass
                totals[synset.pos] += mass[identifier]
        ic: dict[str, float] = {}
        for identifier, synset in self._synsets.items():
            total = totals[synset.pos] or 1.0
            probability = mass[identifier] / total
            probability = min(probability, 1.0)
            ic[identifier] = -math.log(probability) if probability > 0 else 0.0
        return ic

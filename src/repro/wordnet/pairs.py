"""Similar-object-property pairs via WordNet metrics (section 2.2.1).

    "We constructed a list of all possible pairs of object properties from
    DBpedia with similar meanings.  For each item we have calculated the
    similarity score by using Lin and Wu & Palmer metrics in
    WordNet::Similarity.  If the metrics are higher than the assigned
    threshold (0.75 for Lin, 0.85 for Wu & Palmer) then both properties are
    regarded as properties with similar meanings."

Only single-word property names can be looked up in WordNet (as in the
original: WordNet has no entry for camelCase compounds like
``birthPlace``), so multi-word properties simply do not participate —
their synonymy comes from the PATTY patterns instead.
"""

from __future__ import annotations

import re
from collections import defaultdict

from repro.kb.ontology import Ontology
from repro.wordnet.similarity import word_lin, word_wup
from repro.wordnet.synsets import WordNetDatabase

LIN_THRESHOLD = 0.75
WUP_THRESHOLD = 0.85

_SINGLE_WORD = re.compile(r"^[a-z]+$")


class SimilarPropertyIndex:
    """Symmetric property-name -> similar-property-names lookup."""

    def __init__(self) -> None:
        self._similar: dict[str, set[str]] = defaultdict(set)
        self._scores: dict[tuple[str, str], tuple[float, float]] = {}

    def add_pair(self, a: str, b: str, lin: float, wup: float) -> None:
        self._similar[a].add(b)
        self._similar[b].add(a)
        key = (min(a, b), max(a, b))
        self._scores[key] = (lin, wup)

    def similar_to(self, name: str) -> set[str]:
        """Property local names judged similar to ``name`` (excluding it)."""
        return set(self._similar.get(name, ()))

    def scores(self, a: str, b: str) -> tuple[float, float] | None:
        """(lin, wup) for a recorded pair, else None."""
        return self._scores.get((min(a, b), max(a, b)))

    def pairs(self) -> list[tuple[str, str]]:
        return sorted(self._scores)

    def __len__(self) -> int:
        return len(self._scores)


def build_similar_property_pairs(
    ontology: Ontology,
    wn: WordNetDatabase,
    lin_threshold: float = LIN_THRESHOLD,
    wup_threshold: float = WUP_THRESHOLD,
) -> SimilarPropertyIndex:
    """Score all object-property pairs; keep those above both thresholds.

    >>> from repro.kb.schema import build_dbpedia_ontology
    >>> from repro.wordnet.database import build_wordnet
    >>> index = build_similar_property_pairs(build_dbpedia_ontology(), build_wordnet())
    >>> "author" in index.similar_to("writer")
    True
    """
    index = SimilarPropertyIndex()
    names = [
        prop.name
        for prop in ontology.object_properties()
        if _SINGLE_WORD.match(prop.name)
    ]
    for i, name_a in enumerate(names):
        for name_b in names[i + 1:]:
            lin = word_lin(wn, name_a, name_b, pos="n")
            wup = word_wup(wn, name_a, name_b, pos="n")
            if lin >= lin_threshold and wup >= wup_threshold:
                index.add_pair(name_a, name_b, lin, wup)
    return index

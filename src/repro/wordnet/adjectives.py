"""Adjective -> data-property map via WordNet attribute relations.

Section 2.2.2 of the paper:

    "We constructed a list of adjectives for all data properties defined by
    DBpedia ontology using API WordNet Searching (JAWS). ... Using
    adjective list the predicate 'tall' is mapped to dbont:height."

The construction here is the same, driven by the mini-WordNet: for every
adjective synset, follow its *attribute* links to noun synsets; a data
property matches when any word of its decamelised label (or its full name)
is a lemma of that noun synset.  ``tall -> height.n.01 -> dbo:height``,
``populous -> population.n.01 -> dbo:populationTotal``.
"""

from __future__ import annotations

from collections import defaultdict

from repro.kb.ontology import Ontology, PropertyKind
from repro.wordnet.synsets import WordNetDatabase


class AdjectivePropertyMap:
    """adjective lemma -> data property local names."""

    def __init__(self) -> None:
        self._properties: dict[str, list[str]] = defaultdict(list)

    def add(self, adjective: str, property_name: str) -> None:
        bucket = self._properties[adjective.lower()]
        if property_name not in bucket:
            bucket.append(property_name)

    def properties_for(self, adjective: str) -> list[str]:
        """Data properties measured by this adjective (may be empty)."""
        return list(self._properties.get(adjective.lower(), ()))

    def adjectives(self) -> list[str]:
        return sorted(self._properties)

    def __contains__(self, adjective: str) -> bool:
        return adjective.lower() in self._properties

    def __len__(self) -> int:
        return len(self._properties)


def build_adjective_map(ontology: Ontology, wn: WordNetDatabase) -> AdjectivePropertyMap:
    """Build the adjective map from attribute links.

    >>> from repro.kb.schema import build_dbpedia_ontology
    >>> from repro.wordnet.database import build_wordnet
    >>> amap = build_adjective_map(build_dbpedia_ontology(), build_wordnet())
    >>> amap.properties_for("tall")
    ['height']
    """
    # Index data properties by the words of their labels and names.
    by_word: dict[str, list[str]] = defaultdict(list)
    for prop in ontology.properties():
        if prop.kind is not PropertyKind.DATA:
            continue
        words = set(prop.display_label().split())
        words.add(prop.name.lower())
        for word in words:
            if prop.name not in by_word[word]:
                by_word[word].append(prop.name)

    amap = AdjectivePropertyMap()
    for synset in wn.all_synsets("a"):
        for noun_id in synset.attributes:
            noun = wn.get(noun_id)
            for noun_lemma in noun.lemmas:
                for property_name in by_word.get(noun_lemma.lower(), ()):
                    for adjective in synset.lemmas:
                        amap.add(adjective, property_name)
    return amap

"""Mini-WordNet and WordNet::Similarity substitute.

The paper uses WordNet three ways:

1. **Similar object properties** (section 2.2.1): DBpedia property pairs
   scoring above thresholds under the Lin (0.75) and Wu & Palmer (0.85)
   metrics of WordNet::Similarity are treated as synonyms
   (``dbont:writer`` ~ ``dbont:author``).
2. **Adjective -> data property** (section 2.2.2): adjectives are mapped to
   the data properties they measure ("tall" -> ``dbont:height``) via
   WordNet attribute relations (the JAWS API in the paper).
3. Implicitly, the lexical knowledge that makes both of the above work.

This package provides a hand-built WordNet fragment covering the DBpedia
property vocabulary (:mod:`repro.wordnet.database`), the similarity metrics
with information content (:mod:`repro.wordnet.similarity`), the
similar-property-pair builder (:mod:`repro.wordnet.pairs`) and the
adjective map (:mod:`repro.wordnet.adjectives`).
"""

from repro.wordnet.synsets import Synset, WordNetDatabase
from repro.wordnet.database import build_wordnet
from repro.wordnet.similarity import (
    lin_similarity,
    path_similarity,
    word_lin,
    word_wup,
    wup_similarity,
)
from repro.wordnet.pairs import SimilarPropertyIndex, build_similar_property_pairs
from repro.wordnet.adjectives import AdjectivePropertyMap, build_adjective_map

__all__ = [
    "Synset",
    "WordNetDatabase",
    "build_wordnet",
    "lin_similarity",
    "wup_similarity",
    "path_similarity",
    "word_lin",
    "word_wup",
    "build_similar_property_pairs",
    "SimilarPropertyIndex",
    "build_adjective_map",
    "AdjectivePropertyMap",
]

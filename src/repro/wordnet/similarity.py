"""WordNet similarity metrics: Lin, Wu & Palmer, path.

Implements the measures of Pedersen et al.'s WordNet::Similarity (the
paper's reference [14]).  Word-level scores take the maximum over all sense
pairs with matching part of speech, WordNet::Similarity's default.
"""

from __future__ import annotations

from repro.wordnet.synsets import WordNetDatabase


def wup_similarity(wn: WordNetDatabase, a: str, b: str) -> float:
    """Wu & Palmer: ``2*depth(lcs) / (depth(a) + depth(b))`` in (0, 1]."""
    if a == b:
        return 1.0
    lcs = wn.lowest_common_subsumer(a, b)
    if lcs is None:
        return 0.0
    lcs_depth = wn.depth(lcs)
    return 2.0 * lcs_depth / (wn.depth(a) + wn.depth(b))


def lin_similarity(wn: WordNetDatabase, a: str, b: str) -> float:
    """Lin: ``2*IC(lcs) / (IC(a) + IC(b))`` in [0, 1]."""
    if a == b:
        return 1.0
    lcs = wn.lowest_common_subsumer(a, b)
    if lcs is None:
        return 0.0
    denominator = wn.information_content(a) + wn.information_content(b)
    if denominator == 0.0:
        return 0.0
    return 2.0 * wn.information_content(lcs) / denominator


def path_similarity(wn: WordNetDatabase, a: str, b: str) -> float:
    """Inverse shortest-path length through the LCS: ``1 / (1 + distance)``."""
    if a == b:
        return 1.0
    lcs = wn.lowest_common_subsumer(a, b)
    if lcs is None:
        return 0.0
    distance = (wn.depth(a) - wn.depth(lcs)) + (wn.depth(b) - wn.depth(lcs))
    return 1.0 / (1.0 + distance)


def _word_score(metric, wn: WordNetDatabase, word_a: str, word_b: str,
                pos: str | None) -> float:
    best = 0.0
    for synset_a in wn.synsets(word_a, pos):
        for synset_b in wn.synsets(word_b, pos):
            if synset_a.pos != synset_b.pos or synset_a.pos == "a":
                continue  # adjectives have no taxonomy
            score = metric(wn, synset_a.identifier, synset_b.identifier)
            best = max(best, score)
    return best


def word_lin(wn: WordNetDatabase, word_a: str, word_b: str,
             pos: str | None = None) -> float:
    """Max Lin similarity over all sense pairs of two words."""
    return _word_score(lin_similarity, wn, word_a, word_b, pos)


def word_wup(wn: WordNetDatabase, word_a: str, word_b: str,
             pos: str | None = None) -> float:
    """Max Wu-Palmer similarity over all sense pairs of two words."""
    return _word_score(wup_similarity, wn, word_a, word_b, pos)

"""Exception hierarchy for the SPARQL engine."""

from __future__ import annotations


class SparqlError(Exception):
    """Base class for all engine errors."""


class SparqlParseError(SparqlError):
    """Raised when query text cannot be tokenised or parsed.

    Carries the character position so callers (and tests) can point at the
    offending token.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class SparqlTypeError(SparqlError):
    """Raised by filter evaluation on type errors (SPARQL 'error' value).

    Per the SPARQL semantics a type error in a FILTER makes the solution
    fail the filter rather than aborting the query; the executor catches
    this internally.
    """

"""Columnar batch execution for compiled id-space plans.

The row engine (:mod:`repro.sparql.compiler`) joins python tuples one row
at a time: every pattern extension copies a tuple, every filter and ORDER
key closure runs once per row.  This module keeps the *compilation* layer
unchanged — the same slot layout, planned pattern order, expression
closures and prefix memo — and swaps the operator implementations for
batch-at-a-time ones:

* a solution set is a :class:`ColumnBatch`: one ``array('q')`` id column
  per variable slot, with :data:`~repro.sparql.compiler.UNBOUND` (-1)
  holes — no per-row tuple objects between operators;
* joins move whole columns: a **hash join** probes one key column against
  a single scan, a **sort-merge join** (single-key, numpy fast path)
  sorts the scan side once and binary-searches every probe key in one
  vectorized shot, and a **radix-partitioned join** splits both sides by
  key radix before hashing partition-wise — the strategy is chosen by
  :func:`repro.sparql.planner.choose_batch_join` once the existing
  hash-join admission thresholds are met;
* FILTERs evaluate over whole columns: ``?var = <iri>`` id-equality
  becomes one column mask, everything else is memoized per *distinct*
  value combination of the slots the expression actually reads
  (``closure.slots_used``), so a filter runs once per distinct key, not
  once per row — the same memo drives ORDER BY key evaluation;
* ids decode to Terms only at final projection, exactly like the row
  engine.

The operator boundary is explicit — batch in, batch out, each operator a
pure function of ``(graph, batch, pattern)`` — so a native (C/Rust)
backend could replace an operator without touching compilation.

**numpy fast path** — when numpy is importable, gathers, masks and the
sort-merge join run vectorized over zero-copy ``int64`` views of the id
columns; without numpy every operator falls back to pure-python code with
identical semantics.  Tests force the fallback by monkeypatching the
module's ``_np`` attribute to ``None``.

**Observability** — operators publish ``sparql.columnar.*`` counters
(batches, rows, row widths, per-strategy join counts, filter/ORDER memo
hits) through the shared :class:`repro.perf.stats.PerfStats`; see
docs/observability.md.

Correctness is pinned by the three-way differential harness
(``tests/sparql/test_threeway_differential.py``): term-space oracle vs
row id-space vs columnar, over seeded random queries, with identical
decoded solutions — ORDER BY ties are deterministic across all three
engines (stable sort + id-order tie-break, see docs/performance.md).
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from typing import Any, Callable, Iterable, Sequence

try:  # optional vectorized backend; every operator has a pure-python twin
    import numpy as _np  # type: ignore
except ImportError:  # pragma: no cover - exercised via monkeypatch in tests
    _np = None

from repro.perf.stats import PerfStats
from repro.rdf.datatypes import XSD_INTEGER
from repro.rdf.graph import Graph
from repro.rdf.terms import Literal, Variable
from repro.sparql import compiler as _compiler
from repro.sparql import planner as _planner
from repro.sparql.ast import CountAggregate, SelectQuery
from repro.sparql.compiler import (
    UNBOUND,
    CompiledBGP,
    CompiledGroup,
    CompiledOptional,
    CompiledPattern,
    CompiledQuery,
    CompiledUnion,
    ExecContext,
    Row,
)
from repro.sparql.errors import SparqlError, SparqlTypeError
from repro.sparql.functions import effective_boolean, invert_order, order_key
from repro.sparql.results import AskResult, SelectResult

#: Below this many rows numpy conversions cost more than they save; the
#: pure-python paths handle small batches.
NUMPY_MIN_ROWS = 64

_MISSING = object()

#: Column boundness states (see :func:`column_state`).
BOUND, UNBOUND_COL, MIXED = "bound", "unbound", "mixed"


def numpy_enabled() -> bool:
    """Whether the vectorized fast path is active (numpy importable and
    not disabled by a test monkeypatch)."""
    return _np is not None


def _count(stats: PerfStats | None, name: str, amount: int = 1) -> None:
    if stats is not None and amount:
        stats.increment(name, amount)


# ---------------------------------------------------------------------------
# The batch container
# ---------------------------------------------------------------------------


class ColumnBatch:
    """A solution set as parallel id columns.

    ``columns[slot][i]`` is the id bound to variable slot ``slot`` in row
    ``i`` (:data:`UNBOUND` when the row does not bind that slot).
    ``length`` is tracked explicitly so zero-width batches (queries whose
    patterns are all ground) still carry a row count.
    """

    __slots__ = ("width", "length", "columns")

    def __init__(self, width: int, columns: list[array], length: int) -> None:
        self.width = width
        self.columns = columns
        self.length = length

    @classmethod
    def empty(cls, width: int) -> "ColumnBatch":
        return cls(width, [array("q") for __ in range(width)], 0)

    @classmethod
    def seed(cls, width: int) -> "ColumnBatch":
        """The single all-unbound row every query execution starts from."""
        return cls(width, [array("q", (UNBOUND,)) for __ in range(width)], 1)

    @classmethod
    def from_rows(cls, rows: Sequence[Row], width: int) -> "ColumnBatch":
        columns = [
            array("q", (row[slot] for row in rows)) for slot in range(width)
        ]
        return cls(width, columns, len(rows))

    def row(self, index: int) -> Row:
        return tuple(column[index] for column in self.columns)

    def rows(self) -> list[Row]:
        """Materialise the batch as row tuples (memo/fallback boundary)."""
        if self.width == 0:
            return [()] * self.length
        return list(zip(*self.columns))

    def gather(self, indexes) -> "ColumnBatch":
        """A new batch holding the given row indexes, in order."""
        length = len(indexes)
        if self.width == 0:
            return ColumnBatch(0, [], length)
        np = _np
        if np is not None and length >= NUMPY_MIN_ROWS:
            if not isinstance(indexes, np.ndarray):
                indexes = np.fromiter(indexes, dtype=np.int64, count=length)
            columns = []
            for column in self.columns:
                view = np.frombuffer(column, dtype=np.int64)
                out = array("q")
                out.frombytes(view[indexes].astype(np.int64).tobytes())
                columns.append(out)
            return ColumnBatch(self.width, columns, length)
        columns = [
            array("q", map(column.__getitem__, indexes))
            for column in self.columns
        ]
        return ColumnBatch(self.width, columns, length)


def concat(batches: Sequence[ColumnBatch], width: int) -> ColumnBatch:
    """Concatenate batches row-wise (UNION / OPTIONAL reassembly)."""
    length = sum(batch.length for batch in batches)
    if width == 0:
        return ColumnBatch(0, [], length)
    columns = [array("q") for __ in range(width)]
    for batch in batches:
        for slot in range(width):
            columns[slot].extend(batch.columns[slot])
    return ColumnBatch(width, columns, length)


def column_state(column: array, length: int) -> str:
    """Classify a column: all ids bound, all unbound, or mixed.

    The batch operators require homogeneous boundness per column (the
    conjunctive hot path always is); a mixed column — possible below
    OPTIONAL/UNION — routes the whole batch through the row-at-a-time
    fallback, which keeps semantics identical to the row engine.
    """
    if length == 0:
        return UNBOUND_COL
    np = _np
    if np is not None and length >= NUMPY_MIN_ROWS:
        view = np.frombuffer(column, dtype=np.int64)
        if view.min() != UNBOUND:
            return BOUND
        return UNBOUND_COL if view.max() == UNBOUND else MIXED
    saw_bound = saw_unbound = False
    for value in column:
        if value == UNBOUND:
            saw_unbound = True
        else:
            saw_bound = True
        if saw_bound and saw_unbound:
            return MIXED
    return BOUND if saw_bound else UNBOUND_COL


def radix_partition(keys: Iterable, partitions: int | None = None) -> list[list[int]]:
    """Partition key positions by radix: ``hash(key) & (P - 1)``.

    Integer keys use their own value (ids are non-negative, so the masked
    value is already in range); composite tuple keys use ``hash``.  Every
    input index lands in exactly one partition — the property suite
    asserts disjointness and completeness.
    """
    count = partitions if partitions is not None else _planner.RADIX_JOIN_PARTITIONS
    mask = count - 1
    parts: list[list[int]] = [[] for __ in range(count)]
    for index, key in enumerate(keys):
        value = key if isinstance(key, int) else hash(key)
        parts[value & mask].append(index)
    return parts


# ---------------------------------------------------------------------------
# Scan materialisation
# ---------------------------------------------------------------------------


def _materialize_scan(
    graph: Graph,
    pattern: CompiledPattern,
    constraints: Sequence[tuple[int, int]],
) -> list[tuple[int, int, int]]:
    """One scan of the pattern's matches, with repeated-variable positions
    (``?x ?p ?x`` where ``?x`` is free) pre-filtered to agree."""
    matches = graph.match_ids(pattern.s_id, pattern.p_id, pattern.o_id)
    if constraints:
        return [
            match
            for match in matches
            if all(match[a] == match[b] for a, b in constraints)
        ]
    return list(matches)


def _scan_column(
    scan_rows: Sequence[tuple[int, int, int]], position: int
) -> array:
    return array("q", (match[position] for match in scan_rows))


def _dedup_free(
    free_items: Sequence[tuple[int, int]],
) -> tuple[list[tuple[int, int]], list[tuple[int, int]]]:
    """Split free (position, slot) pairs into one writer per slot plus
    must-agree position constraints for repeated slots."""
    unique: list[tuple[int, int]] = []
    first_position: dict[int, int] = {}
    constraints: list[tuple[int, int]] = []
    for position, slot in free_items:
        if slot in first_position:
            constraints.append((first_position[slot], position))
        else:
            first_position[slot] = position
            unique.append((position, slot))
    return unique, constraints


# ---------------------------------------------------------------------------
# Join operators (batch in -> batch out)
# ---------------------------------------------------------------------------


def _assemble(
    batch: ColumnBatch,
    scan_rows: Sequence[tuple[int, int, int]],
    probe_idx: Sequence[int],
    scan_idx: Sequence[int],
    free_items: Sequence[tuple[int, int]],
) -> ColumnBatch:
    """Build the join output: gather surviving probe rows, then overwrite
    each free slot's column from the matching scan rows."""
    out = batch.gather(probe_idx)
    for position, slot in free_items:
        out.columns[slot] = array(
            "q", (scan_rows[j][position] for j in scan_idx)
        )
    return out


def extend_index_loop(
    graph: Graph, batch: ColumnBatch, pattern: CompiledPattern
) -> ColumnBatch:
    """Row-at-a-time fallback: identical semantics to the row engine's
    nested-index-loop join, re-batched at the boundary."""
    rows = pattern.extend(batch.rows(), graph)
    return ColumnBatch.from_rows(rows, batch.width)


def extend_cartesian(
    graph: Graph,
    batch: ColumnBatch,
    pattern: CompiledPattern,
    free_items: Sequence[tuple[int, int]],
    constraints: Sequence[tuple[int, int]],
) -> ColumnBatch:
    """No bound join key: one shared scan crossed with every input row.

    Covers the leaf case (the all-unbound seed row — the common path that
    materialises the first pattern straight into columns) and genuine
    disconnected-pattern products.
    """
    scan_rows = _materialize_scan(graph, pattern, constraints)
    matches = len(scan_rows)
    if matches == 0:
        return ColumnBatch.empty(batch.width)
    length = batch.length
    free_slot_position = {slot: position for position, slot in free_items}
    columns: list[array] = []
    for slot in range(batch.width):
        if slot in free_slot_position:
            values = _scan_column(scan_rows, free_slot_position[slot])
            columns.append(values if length == 1 else values * length)
        else:
            column = batch.columns[slot]
            if length == 1:
                columns.append(array("q", (column[0],)) * matches)
            else:
                out = array("q")
                for value in column:
                    out.extend(array("q", (value,)) * matches)
                columns.append(out)
    return ColumnBatch(batch.width, columns, length * matches)


def extend_hash(
    graph: Graph,
    batch: ColumnBatch,
    pattern: CompiledPattern,
    bound_items: Sequence[tuple[int, int]],
    free_items: Sequence[tuple[int, int]],
    constraints: Sequence[tuple[int, int]],
) -> ColumnBatch:
    """Hash join: one scan of the pattern hashed on the bound positions,
    one probe per input row against the key column(s)."""
    scan_rows = _materialize_scan(graph, pattern, constraints)
    if not scan_rows:
        return ColumnBatch.empty(batch.width)
    probe_idx: list[int] = []
    scan_idx: list[int] = []
    if len(bound_items) == 1:
        position, slot = bound_items[0]
        table: dict[int, list[int]] = {}
        for j, match in enumerate(scan_rows):
            table.setdefault(match[position], []).append(j)
        get = table.get
        column = batch.columns[slot]
        for i in range(batch.length):
            bucket = get(column[i])
            if bucket:
                probe_idx.extend([i] * len(bucket))
                scan_idx.extend(bucket)
    else:
        positions = [position for position, __ in bound_items]
        key_columns = [batch.columns[slot] for __, slot in bound_items]
        table_t: dict[tuple[int, ...], list[int]] = {}
        for j, match in enumerate(scan_rows):
            key = tuple(match[position] for position in positions)
            table_t.setdefault(key, []).append(j)
        get_t = table_t.get
        for i, key in enumerate(zip(*key_columns)):
            bucket = get_t(key)
            if bucket:
                probe_idx.extend([i] * len(bucket))
                scan_idx.extend(bucket)
    if not probe_idx:
        return ColumnBatch.empty(batch.width)
    return _assemble(batch, scan_rows, probe_idx, scan_idx, free_items)


def extend_merge(
    graph: Graph,
    batch: ColumnBatch,
    pattern: CompiledPattern,
    bound_items: Sequence[tuple[int, int]],
    free_items: Sequence[tuple[int, int]],
    constraints: Sequence[tuple[int, int]],
) -> ColumnBatch:
    """Sort-merge join on a single key: sort the scan side once, then
    locate every probe key by binary search.

    The numpy path is fully vectorized — ``argsort`` + two
    ``searchsorted`` calls + index arithmetic produce the complete
    (probe, scan) match pairing with no per-row python.  The pure-python
    path bisects per probe row over the same sorted scan, with identical
    output ordering (probe order, then scan sort order within a key).
    """
    if len(bound_items) != 1:
        raise SparqlError("merge join requires exactly one join key")
    position, slot = bound_items[0]
    scan_rows = _materialize_scan(graph, pattern, constraints)
    matches = len(scan_rows)
    if matches == 0:
        return ColumnBatch.empty(batch.width)
    length = batch.length
    np = _np
    if np is not None and length >= 2 and matches >= 2:
        scan_keys = np.fromiter(
            (match[position] for match in scan_rows), np.int64, matches
        )
        order = np.argsort(scan_keys, kind="stable")
        sorted_keys = scan_keys[order]
        probe = np.frombuffer(batch.columns[slot], dtype=np.int64)
        left = np.searchsorted(sorted_keys, probe, side="left")
        right = np.searchsorted(sorted_keys, probe, side="right")
        counts = right - left
        total = int(counts.sum())
        if total == 0:
            return ColumnBatch.empty(batch.width)
        probe_idx = np.repeat(np.arange(length, dtype=np.int64), counts)
        starts = np.repeat(left, counts)
        run_starts = np.repeat(np.cumsum(counts) - counts, counts)
        within = np.arange(total, dtype=np.int64) - run_starts
        scan_positions = order[starts + within]
        out = batch.gather(probe_idx)
        for free_position, free_slot in free_items:
            values = np.fromiter(
                (match[free_position] for match in scan_rows), np.int64, matches
            )[scan_positions]
            column = array("q")
            column.frombytes(values.astype(np.int64).tobytes())
            out.columns[free_slot] = column
        return out
    keyed = sorted((match[position], j) for j, match in enumerate(scan_rows))
    keys = [key for key, __ in keyed]
    column = batch.columns[slot]
    probe_idx_l: list[int] = []
    scan_idx_l: list[int] = []
    for i in range(length):
        key = column[i]
        lo = bisect_left(keys, key)
        if lo == matches or keys[lo] != key:
            continue
        hi = bisect_right(keys, key, lo)
        probe_idx_l.extend([i] * (hi - lo))
        scan_idx_l.extend(keyed[t][1] for t in range(lo, hi))
    if not probe_idx_l:
        return ColumnBatch.empty(batch.width)
    return _assemble(batch, scan_rows, probe_idx_l, scan_idx_l, free_items)


def extend_radix(
    graph: Graph,
    batch: ColumnBatch,
    pattern: CompiledPattern,
    bound_items: Sequence[tuple[int, int]],
    free_items: Sequence[tuple[int, int]],
    constraints: Sequence[tuple[int, int]],
) -> ColumnBatch:
    """Radix-partitioned hash join for large intermediates: both sides are
    split by key radix, then hash-joined partition by partition, keeping
    every hash table small.  Output order is partition-major (the ORDER BY
    tie-break makes final ordering deterministic regardless)."""
    scan_rows = _materialize_scan(graph, pattern, constraints)
    if not scan_rows:
        return ColumnBatch.empty(batch.width)
    positions = [position for position, __ in bound_items]
    if len(positions) == 1:
        p0 = positions[0]
        scan_keys: Sequence = [match[p0] for match in scan_rows]
        probe_keys: Sequence = batch.columns[bound_items[0][1]]
    else:
        scan_keys = [
            tuple(match[position] for position in positions)
            for match in scan_rows
        ]
        probe_keys = list(
            zip(*(batch.columns[slot] for __, slot in bound_items))
        )
    scan_parts = radix_partition(scan_keys)
    probe_parts = radix_partition(probe_keys)
    probe_idx: list[int] = []
    scan_idx: list[int] = []
    for part in range(len(scan_parts)):
        scan_members = scan_parts[part]
        probe_members = probe_parts[part]
        if not scan_members or not probe_members:
            continue
        table: dict = {}
        for j in scan_members:
            table.setdefault(scan_keys[j], []).append(j)
        get = table.get
        for i in probe_members:
            bucket = get(probe_keys[i])
            if bucket:
                probe_idx.extend([i] * len(bucket))
                scan_idx.extend(bucket)
    if not probe_idx:
        return ColumnBatch.empty(batch.width)
    return _assemble(batch, scan_rows, probe_idx, scan_idx, free_items)


_JOIN_OPS: dict[str, Callable] = {
    "hash": extend_hash,
    "merge": extend_merge,
    "radix": extend_radix,
}


def join_pattern(
    context: ExecContext,
    batch: ColumnBatch,
    pattern: CompiledPattern,
) -> ColumnBatch:
    """Join one compiled pattern into the batch, picking the operator.

    Mirrors the row engine's admission logic — per-row index lookups for
    small batches or oversized scans, a batch join otherwise — and then
    lets :func:`repro.sparql.planner.choose_batch_join` select hash,
    merge, or radix.
    """
    graph = context.graph
    stats = context.stats
    length = batch.length
    if length == 0:
        return batch
    _count(stats, "sparql.columnar.batches")
    _count(stats, "sparql.columnar.rows_in", length)
    _count(stats, "sparql.columnar.row_width", batch.width)

    var_items = [
        (position, slot)
        for position, slot in (
            (0, pattern.s_slot), (1, pattern.p_slot), (2, pattern.o_slot)
        )
        if slot is not None
    ]
    if not var_items:
        # Fully ground pattern: every row survives iff the triple exists.
        if graph.count_ids(pattern.s_id, pattern.p_id, pattern.o_id):
            return batch
        return ColumnBatch.empty(batch.width)

    states = {}
    for __, slot in var_items:
        if slot not in states:
            states[slot] = column_state(batch.columns[slot], length)
    if any(state == MIXED for state in states.values()):
        # Heterogeneous boundness (OPTIONAL/UNION streams): per-row path.
        _count(stats, "sparql.columnar.joins.mixed_fallback")
        return extend_index_loop(graph, batch, pattern)

    bound_items = [
        (position, slot)
        for position, slot in var_items
        if states[slot] == BOUND
    ]
    free_items = [
        (position, slot)
        for position, slot in var_items
        if states[slot] != BOUND
    ]
    unique_free, constraints = _dedup_free(free_items)

    if not bound_items:
        _count(stats, "sparql.columnar.joins.cartesian")
        return extend_cartesian(graph, batch, pattern, unique_free, constraints)
    if length < _compiler.HASH_JOIN_MIN_ROWS:
        _count(stats, "sparql.columnar.joins.index_loop")
        return extend_index_loop(graph, batch, pattern)
    scan = graph.count_ids(pattern.s_id, pattern.p_id, pattern.o_id)
    if scan > length * _compiler.HASH_JOIN_MAX_SCAN_FACTOR:
        _count(stats, "sparql.columnar.joins.index_loop")
        return extend_index_loop(graph, batch, pattern)
    strategy = _planner.choose_batch_join(
        length, scan, len(bound_items), _np is not None
    )
    _count(stats, f"sparql.columnar.joins.{strategy}")
    out = _JOIN_OPS[strategy](
        graph, batch, pattern, bound_items, unique_free, constraints
    )
    _count(stats, "sparql.columnar.rows_out", out.length)
    return out


# ---------------------------------------------------------------------------
# Columnar FILTER evaluation
# ---------------------------------------------------------------------------


def filter_id_equality(
    batch: ColumnBatch, closure, stats: PerfStats | None = None
) -> ColumnBatch:
    """Vectorized ``?var = <iri>`` / ``!=`` filter: one column mask.

    An unbound id fails the filter (the row closure raises
    :class:`SparqlTypeError` there, which SPARQL maps to "filter fails").
    """
    column = batch.columns[closure.slot]
    target = closure.constant_box[0]
    negate = closure.negate
    length = batch.length
    _count(stats, "sparql.columnar.filter.vectorized_rows", length)
    np = _np
    if np is not None and length >= NUMPY_MIN_ROWS:
        view = np.frombuffer(column, dtype=np.int64)
        bound_mask = view != UNBOUND
        if negate:
            mask = bound_mask & (view != target)
        else:
            mask = bound_mask & (view == target)
        return batch.gather(np.nonzero(mask)[0])
    # The UNBOUND guard matters even for the equality case: an absent
    # constant resolves to -1, which must not match unbound (-1) cells.
    if negate:
        keep = [
            i for i, value in enumerate(column)
            if value != UNBOUND and value != target
        ]
    else:
        keep = [
            i for i, value in enumerate(column)
            if value != UNBOUND and value == target
        ]
    return batch.gather(keep)


def filter_memoized(
    batch: ColumnBatch,
    closure,
    width: int,
    stats: PerfStats | None = None,
) -> ColumnBatch:
    """General filter over a batch, memoized per distinct slot values.

    The compiled closure only reads ``closure.slots_used``; its verdict is
    therefore a pure function of those slots' ids, evaluated once per
    distinct combination and reused for every duplicate row.
    """
    used = getattr(closure, "slots_used", None)
    slots = sorted(used) if used is not None else list(range(width))
    template = [UNBOUND] * width
    if not slots:
        try:
            verdict = effective_boolean(closure(tuple(template)))
        except SparqlTypeError:
            verdict = False
        _count(stats, "sparql.columnar.filter.memo_rows", batch.length)
        return batch if verdict else ColumnBatch.empty(width)
    key_columns = [batch.columns[slot] for slot in slots]
    cache: dict[tuple[int, ...], bool] = {}
    keep: list[int] = []
    evaluated = 0
    for i, key in enumerate(zip(*key_columns)):
        verdict = cache.get(key, _MISSING)
        if verdict is _MISSING:
            for slot, value in zip(slots, key):
                template[slot] = value
            try:
                verdict = effective_boolean(closure(tuple(template)))
            except SparqlTypeError:
                verdict = False
            cache[key] = verdict
            evaluated += 1
        if verdict:
            keep.append(i)
    _count(stats, "sparql.columnar.filter.evaluated", evaluated)
    _count(stats, "sparql.columnar.filter.memo_rows", batch.length - evaluated)
    return batch.gather(keep)


def apply_filters(
    filters: Sequence, batch: ColumnBatch, width: int,
    stats: PerfStats | None = None,
) -> ColumnBatch:
    for closure in filters:
        if batch.length == 0:
            break
        if (
            getattr(closure, "slot", None) is not None
            and getattr(closure, "constant_box", None) is not None
        ):
            batch = filter_id_equality(batch, closure, stats)
        else:
            batch = filter_memoized(batch, closure, width, stats)
    return batch


# ---------------------------------------------------------------------------
# Pattern-tree execution
# ---------------------------------------------------------------------------


def _run_node(node, context: ExecContext, batch: ColumnBatch, plan) -> ColumnBatch:
    if isinstance(node, CompiledBGP):
        return _run_bgp(node, context, batch, plan)
    if isinstance(node, CompiledGroup):
        return _run_group(node, context, batch, plan)
    if isinstance(node, CompiledOptional):
        return _run_optional(node, context, batch, plan)
    if isinstance(node, CompiledUnion):
        left = _run_group(node.left, context, batch, plan)
        right = _run_group(node.right, context, batch, plan)
        return concat((left, right), batch.width)
    raise SparqlError(f"unknown compiled node {type(node).__name__}")


def _run_group(
    group: CompiledGroup, context: ExecContext, batch: ColumnBatch, plan
) -> ColumnBatch:
    for child in group.children:
        batch = _run_node(child, context, batch, plan)
        if batch.length == 0:
            break
    if batch.length and group.filters:
        batch = apply_filters(group.filters, batch, plan.width, context.stats)
    return batch


def _run_optional(
    node: CompiledOptional, context: ExecContext, batch: ColumnBatch, plan
) -> ColumnBatch:
    # Left join, one input row at a time (exact row-engine semantics): a
    # row keeps its extensions when the subgroup matches, itself otherwise.
    pieces: list[ColumnBatch] = []
    for i in range(batch.length):
        single = batch.gather((i,))
        extended = _run_group(node.group, context, single, plan)
        pieces.append(extended if extended.length else single)
    return concat(pieces, batch.width)


def _resume_from_memo_batch(
    node: CompiledBGP, context: ExecContext, memo, keys: list[tuple], plan
) -> tuple[ColumnBatch | None, int]:
    """Columnar twin of :meth:`CompiledBGP._resume_from_memo`: rebuild the
    longest memoized prefix straight into columns, skipping the row-tuple
    round trip the row engine pays."""
    stats = context.stats
    for length in range(len(node.patterns) - 1, 0, -1):
        hit = memo.get(tuple(keys[:length]))
        if hit is None:
            continue
        if stats is not None:
            stats.increment("sparql.prefix_memo.hits")
        names, stored = hit
        slots = [plan.slot_by_name[name] for name in names]
        count = len(stored)
        # Sharing one all-UNBOUND column across slots is safe: operators
        # never mutate a column in place, they only build fresh arrays.
        unbound_column = array("q", (UNBOUND,)) * count
        columns = [unbound_column] * plan.width
        if count:
            for slot, values in zip(slots, zip(*stored)):
                columns[slot] = array("q", values)
        return ColumnBatch(plan.width, columns, count), length
    if stats is not None:
        stats.increment("sparql.prefix_memo.misses")
    return None, 0


def _store_prefix_batch(
    memo, key: tuple, batch: ColumnBatch, plan, prefix_keys: tuple
) -> None:
    """Columnar twin of :meth:`CompiledBGP._store_prefix`: project the
    prefix's bound columns and zip them into the memo's row format."""
    bound_names = sorted(
        {
            name
            for pattern_key in prefix_keys
            for position in pattern_key
            if isinstance(position, tuple)
            for name in (position[1],)
        }
    )
    slots = [plan.slot_by_name[name] for name in bound_names]
    if slots:
        projected = tuple(zip(*(batch.columns[slot] for slot in slots)))
    else:
        projected = ((),) * batch.length
    memo.put(key, tuple(bound_names), projected)


def _has_bound_cell(batch: ColumnBatch) -> bool:
    return any(
        value != UNBOUND for column in batch.columns for value in column
    )


def _run_bgp(
    node: CompiledBGP, context: ExecContext, batch: ColumnBatch, plan
) -> ColumnBatch:
    if batch.length == 0:
        return batch
    patterns = node.patterns
    memo = context.prefix_memo if node.memo_eligible else None
    keys: list[tuple] | None = None
    start = 0
    if memo is not None and batch.length == 1 and len(patterns) > 1:
        keys = [pattern.memo_key(plan.slot_names) for pattern in patterns]
        resumed, start = _resume_from_memo_batch(
            node, context, memo, keys, plan
        )
        if resumed is not None:
            batch = resumed
    # Row-carrier mode: below the hash-join admission threshold the batch
    # conversions cost more than they save, so small *joined* intermediates
    # (at least one bound cell — the all-unbound seed stays columnar, its
    # first pattern materialises straight into columns) ride as plain row
    # tuples and promote back to columns once they outgrow the threshold.
    rows: list[Row] | None = None
    for index in range(start, len(patterns)):
        pattern = patterns[index]
        if rows is not None and len(rows) >= _compiler.HASH_JOIN_MIN_ROWS:
            batch = ColumnBatch.from_rows(rows, plan.width)
            rows = None
        if (
            rows is None
            and 0 < batch.length < _compiler.HASH_JOIN_MIN_ROWS
            and _has_bound_cell(batch)
        ):
            rows = batch.rows()
        if rows is not None:
            _count(context.stats, "sparql.columnar.joins.index_loop")
            rows = pattern.extend(rows, context.graph)
            length = len(rows)
        else:
            batch = join_pattern(context, batch, pattern)
            length = batch.length
        if (
            keys is not None
            and index + 1 < len(patterns)
            and length <= _compiler.PREFIX_MEMO_MAX_ROWS
        ):
            prefix = tuple(keys[: index + 1])
            if rows is not None:
                node._store_prefix(memo, prefix, rows, plan, prefix)
            else:
                _store_prefix_batch(memo, prefix, batch, plan, prefix)
        if length == 0:
            break
    if rows is not None:
        batch = ColumnBatch.from_rows(rows, plan.width)
    return batch


# ---------------------------------------------------------------------------
# The columnar plan
# ---------------------------------------------------------------------------


class ColumnarQuery(CompiledQuery):
    """A compiled id-space plan executed over :class:`ColumnBatch` objects.

    Compilation (slot layout, planned pattern order, expression closures,
    constant resolution, prefix-memo keys) is inherited unchanged from
    :class:`~repro.sparql.compiler.CompiledQuery`; only execution differs.
    """

    def execute(self, context: ExecContext) -> SelectResult | AskResult:
        self._resolve(context.graph)
        _count(context.stats, "sparql.columnar.executions")
        batch = _run_node(self.root, context, ColumnBatch.seed(self.width), self)
        if self.is_ask:
            return AskResult(batch.length > 0)
        return self._shape_select_batch(batch, context)

    # -- result shaping -------------------------------------------------

    def _shape_select_batch(
        self, batch: ColumnBatch, context: ExecContext
    ) -> SelectResult:
        query = self.query
        assert isinstance(query, SelectQuery)
        decode = self._decode

        if query.is_aggregate:
            return self._aggregate_batch(query, batch)

        if query.select_all:
            seen_slots = {
                slot
                for slot in range(self.width)
                if column_state(batch.columns[slot], batch.length)
                in (BOUND, MIXED)
            }
            variables = tuple(
                sorted(
                    (
                        variable
                        for variable, slot in self.slot_of.items()
                        if slot in seen_slots
                    ),
                    key=lambda v: v.name,
                )
            )
        else:
            variables = tuple(
                p for p in query.projection if isinstance(p, Variable)
            )

        # Project column-wise: zip the selected columns into id rows in
        # one C-level pass instead of a per-row/per-column inner loop.
        length = batch.length
        projected: list[array] = []
        unbound_column: array | None = None
        for variable in variables:
            slot = self.slot_of.get(variable)
            if slot is None:
                if unbound_column is None:
                    unbound_column = array("q", (UNBOUND,)) * length
                projected.append(unbound_column)
            else:
                projected.append(batch.columns[slot])
        if projected:
            id_rows: list[tuple[int, ...]] = list(zip(*projected))
        else:
            id_rows = [()] * length

        if query.order_by:
            order = self._order_permutation(batch, context)
            id_rows = [id_rows[i] for i in order]
        if query.distinct:
            id_rows = list(dict.fromkeys(id_rows))
        if query.offset:
            id_rows = id_rows[query.offset:]
        if query.limit is not None:
            id_rows = id_rows[: query.limit]

        # Ids repeat heavily across join results: decode each distinct id
        # once and share the Term object.
        decoded: dict[int, Any] = {UNBOUND: None}
        term_rows = []
        for id_row in id_rows:
            terms = []
            for term_id in id_row:
                term = decoded.get(term_id, _MISSING)
                if term is _MISSING:
                    term = decode(term_id)
                    decoded[term_id] = term
                terms.append(term)
            term_rows.append(tuple(terms))
        return SelectResult(variables=variables, rows=tuple(term_rows))

    def _order_permutation(
        self, batch: ColumnBatch, context: ExecContext
    ) -> list[int]:
        """Row permutation realising ORDER BY with the deterministic
        id-order tie-break shared by every engine."""
        length = batch.length
        key_columns = [
            self._order_key_column(closure, descending, batch, context)
            for closure, descending in self._order_keys
        ]
        if self.tiebreak_slots:
            tie: Sequence[tuple] = list(
                zip(*(batch.columns[slot] for slot in self.tiebreak_slots))
            )
        else:
            tie = [()] * length
        if key_columns:
            combined = [
                keys + (tie[i],)
                for i, keys in enumerate(zip(*key_columns))
            ]
        else:
            combined = tie
        return sorted(range(length), key=combined.__getitem__)

    def _order_key_column(
        self,
        closure,
        descending: bool,
        batch: ColumnBatch,
        context: ExecContext,
    ) -> list:
        """Evaluate one ORDER BY key over the whole batch, memoized per
        distinct combination of the slots the key expression reads."""
        used = getattr(closure, "slots_used", None)
        slots = sorted(used) if used is not None else list(range(self.width))
        template = [UNBOUND] * self.width

        def evaluate(row: Row):
            try:
                value = closure(row)
            except SparqlTypeError:
                value = None
            kind, within = order_key(value)
            if descending:
                return (-kind, invert_order(within))
            return (kind, within)

        if not slots:
            return [evaluate(tuple(template))] * batch.length
        key_columns = [batch.columns[slot] for slot in slots]
        cache: dict[tuple[int, ...], Any] = {}
        out = []
        evaluated = 0
        for key in zip(*key_columns):
            entry = cache.get(key, _MISSING)
            if entry is _MISSING:
                for slot, value in zip(slots, key):
                    template[slot] = value
                entry = evaluate(tuple(template))
                cache[key] = entry
                evaluated += 1
            out.append(entry)
        _count(
            context.stats,
            "sparql.columnar.order.memo_rows",
            batch.length - evaluated,
        )
        _count(context.stats, "sparql.columnar.order.evaluated", evaluated)
        return out

    def _aggregate_batch(
        self, query: SelectQuery, batch: ColumnBatch
    ) -> SelectResult:
        if len(query.projection) != 1:
            raise SparqlError("COUNT cannot be mixed with other projections")
        aggregate = query.projection[0]
        assert isinstance(aggregate, CountAggregate)
        if aggregate.variable is None:
            # Slot-aligned rows: tuple equality is bound-set equality.
            count = (
                len(set(batch.rows())) if aggregate.distinct else batch.length
            )
        else:
            slot = self.slot_of.get(aggregate.variable)
            if slot is None:
                count = 0
            else:
                column = batch.columns[slot]
                if aggregate.distinct:
                    count = len({v for v in column if v != UNBOUND})
                else:
                    count = sum(1 for v in column if v != UNBOUND)
        out_variable = aggregate.alias or Variable("count")
        row = (Literal(str(count), datatype=XSD_INTEGER),)
        return SelectResult(variables=(out_variable,), rows=(row,))

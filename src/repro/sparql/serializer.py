"""SPARQL AST -> query text serialisation.

The inverse of :mod:`repro.sparql.parser` for the supported subset.  Used
by diagnostics (showing generated queries), by the query log of the QA
pipeline, and by the round-trip property tests that pin the parser and the
serialiser against each other.
"""

from __future__ import annotations

from repro.rdf.namespaces import RDF, shrink_iri
from repro.rdf.terms import BNode, IRI, Literal, Term, Triple, Variable
from repro.sparql.ast import (
    AskQuery,
    BGP,
    BooleanOp,
    Comparison,
    CountAggregate,
    Expression,
    Filter,
    FunctionCall,
    GraphPattern,
    Group,
    Not,
    OptionalPattern,
    SelectQuery,
    TermExpr,
    UnionPattern,
)


def serialize_term(term: Term) -> str:
    """One term in query syntax (prefixed where possible)."""
    if isinstance(term, Variable):
        return term.n3()
    if isinstance(term, IRI):
        return shrink_iri(term)
    if isinstance(term, (Literal, BNode)):
        return term.n3()
    raise TypeError(f"cannot serialise {type(term).__name__}")


def serialize_expression(expression: Expression) -> str:
    if isinstance(expression, TermExpr):
        return serialize_term(expression.term)
    if isinstance(expression, Comparison):
        left = serialize_expression(expression.left)
        right = serialize_expression(expression.right)
        return f"({left} {expression.operator} {right})"
    if isinstance(expression, BooleanOp):
        left = serialize_expression(expression.left)
        right = serialize_expression(expression.right)
        return f"({left} {expression.operator} {right})"
    if isinstance(expression, Not):
        return f"(!{serialize_expression(expression.operand)})"
    if isinstance(expression, FunctionCall):
        arguments = ", ".join(serialize_expression(a) for a in expression.arguments)
        return f"{expression.name}({arguments})"
    raise TypeError(f"cannot serialise {type(expression).__name__}")


def _serialize_triple(triple: Triple) -> str:
    predicate = (
        "a" if triple.predicate == RDF.type else serialize_term(triple.predicate)
    )
    return (
        f"{serialize_term(triple.subject)} {predicate} "
        f"{serialize_term(triple.object)} ."
    )


def _serialize_pattern(pattern: GraphPattern, indent: str) -> list[str]:
    if isinstance(pattern, BGP):
        return [f"{indent}{_serialize_triple(t)}" for t in pattern.triples]
    if isinstance(pattern, Filter):
        return [f"{indent}FILTER {serialize_expression(pattern.expression)}"]
    if isinstance(pattern, OptionalPattern):
        lines = [f"{indent}OPTIONAL {{"]
        lines.extend(_serialize_group_body(pattern.pattern, indent + "  "))
        lines.append(f"{indent}}}")
        return lines
    if isinstance(pattern, UnionPattern):
        lines = [f"{indent}{{"]
        lines.extend(_serialize_group_body(pattern.left, indent + "  "))
        lines.append(f"{indent}}} UNION {{")
        lines.extend(_serialize_group_body(pattern.right, indent + "  "))
        lines.append(f"{indent}}}")
        return lines
    if isinstance(pattern, Group):
        lines = [f"{indent}{{"]
        lines.extend(_serialize_group_body(pattern, indent + "  "))
        lines.append(f"{indent}}}")
        return lines
    raise TypeError(f"cannot serialise {type(pattern).__name__}")


def _serialize_group_body(group: Group, indent: str) -> list[str]:
    lines: list[str] = []
    for child in group.patterns:
        lines.extend(_serialize_pattern(child, indent))
    return lines


def serialize_query(query: SelectQuery | AskQuery) -> str:
    """Render a query AST back to SPARQL text.

    >>> from repro.sparql.parser import parse_query
    >>> print(serialize_query(parse_query(
    ...     "SELECT ?x WHERE { ?x a dbo:Book } LIMIT 2")))
    SELECT ?x WHERE {
      ?x a dbo:Book .
    } LIMIT 2
    """
    if isinstance(query, AskQuery):
        lines = ["ASK {"]
        lines.extend(_serialize_group_body(query.where, "  "))
        lines.append("}")
        return "\n".join(lines)

    head = "SELECT "
    if query.distinct:
        head += "DISTINCT "
    if query.select_all:
        head += "*"
    else:
        parts = []
        for item in query.projection:
            if isinstance(item, Variable):
                parts.append(item.n3())
            else:
                assert isinstance(item, CountAggregate)
                inner = "*" if item.variable is None else item.variable.n3()
                if item.distinct:
                    inner = f"DISTINCT {inner}"
                if item.alias is not None:
                    parts.append(f"(COUNT({inner}) AS {item.alias.n3()})")
                else:
                    parts.append(f"COUNT({inner})")
        head += " ".join(parts)

    lines = [head + " WHERE {"]
    lines.extend(_serialize_group_body(query.where, "  "))
    closing = "}"
    if query.order_by:
        conditions = []
        for condition in query.order_by:
            rendered = serialize_expression(condition.expression)
            if condition.descending:
                conditions.append(f"DESC({rendered})")
            else:
                conditions.append(f"ASC({rendered})")
        closing += " ORDER BY " + " ".join(conditions)
    if query.limit is not None:
        closing += f" LIMIT {query.limit}"
    if query.offset:
        closing += f" OFFSET {query.offset}"
    lines.append(closing)
    return "\n".join(lines)

"""Recursive-descent parser for the SPARQL subset.

Grammar (informal)::

    Query        := Prologue (SelectQuery | AskQuery)
    Prologue     := (PREFIX PNAME IRIREF)*
    SelectQuery  := SELECT [DISTINCT] (Var+ | CountAgg | '*')
                    [WHERE] Group Modifiers
    AskQuery     := ASK [WHERE] Group
    Group        := '{' (TriplesBlock | Filter | Optional | GroupOrUnion)* '}'
    TriplesBlock := Triple ('.' Triple?)*
    Triple       := Term Term Term (';' Term Term)* (',' Term)*
    Modifiers    := [ORDER BY OrderCond+] [LIMIT n] [OFFSET n]

Property paths, subqueries, GRAPH, VALUES and BIND are out of scope — the
question-answering pipeline never generates them.
"""

from __future__ import annotations

from repro.rdf.namespaces import PREFIXES, Namespace, RDF
from repro.rdf.terms import IRI, Literal, Term, Triple, Variable
from repro.rdf.datatypes import XSD_BOOLEAN, XSD_DOUBLE, XSD_INTEGER
from repro.sparql.ast import (
    AskQuery,
    BGP,
    BooleanOp,
    Comparison,
    CountAggregate,
    Expression,
    Filter,
    FunctionCall,
    Group,
    GraphPattern,
    Not,
    OptionalPattern,
    OrderCondition,
    Projection,
    SelectQuery,
    TermExpr,
    UnionPattern,
)
from repro.sparql.errors import SparqlParseError
from repro.sparql.lexer import Token, tokenize

_BUILTIN_FUNCTIONS = {
    "REGEX",
    "STR",
    "LANG",
    "DATATYPE",
    "BOUND",
    "CONTAINS",
    "STRSTARTS",
    "STRENDS",
    "LCASE",
    "UCASE",
    "ISIRI",
    "ISURI",
    "ISLITERAL",
    "ISBLANK",
    "LANGMATCHES",
}

_COMPARISON_OPS = {"=", "!=", "<", "<=", ">", ">="}


class _Parser:
    def __init__(self, text: str) -> None:
        self._tokens = list(tokenize(text))
        self._index = 0
        self._prefixes: dict[str, Namespace] = dict(PREFIXES)

    # -- token helpers ---------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._current
        if token.kind != "EOF":
            self._index += 1
        return token

    def _check(self, kind: str, value: str | None = None) -> bool:
        token = self._current
        if token.kind != kind:
            return False
        return value is None or token.value == value

    def _accept(self, kind: str, value: str | None = None) -> Token | None:
        if self._check(kind, value):
            return self._advance()
        return None

    def _expect(self, kind: str, value: str | None = None) -> Token:
        token = self._accept(kind, value)
        if token is None:
            wanted = value or kind
            got = self._current.value or self._current.kind
            raise SparqlParseError(
                f"expected {wanted!r}, got {got!r}", self._current.position
            )
        return token

    # -- entry point -----------------------------------------------------

    def parse(self) -> SelectQuery | AskQuery:
        self._parse_prologue()
        if self._accept("KEYWORD", "SELECT"):
            query = self._parse_select()
        elif self._accept("KEYWORD", "ASK"):
            query = self._parse_ask()
        else:
            raise SparqlParseError(
                "query must start with SELECT or ASK", self._current.position
            )
        self._expect("EOF")
        return query

    def _parse_prologue(self) -> None:
        while self._accept("KEYWORD", "PREFIX"):
            pname = self._expect("PNAME")
            prefix = pname.value.split(":", 1)[0]
            iriref = self._expect("IRIREF")
            self._prefixes[prefix] = Namespace(iriref.value[1:-1])

    # -- SELECT ----------------------------------------------------------

    def _parse_select(self) -> SelectQuery:
        distinct = bool(self._accept("KEYWORD", "DISTINCT"))
        if not distinct:
            self._accept("KEYWORD", "REDUCED")  # treated as plain SELECT
        projection = self._parse_projection()
        self._accept("KEYWORD", "WHERE")
        where = self._parse_group()
        order_by = self._parse_order_by()
        limit, offset = self._parse_limit_offset()
        return SelectQuery(
            projection=projection,
            where=where,
            distinct=distinct,
            order_by=order_by,
            limit=limit,
            offset=offset,
        )

    def _parse_projection(self) -> tuple[Projection, ...]:
        if self._accept("OP", "*"):
            return ()
        items: list[Projection] = []
        while True:
            if self._check("VAR"):
                items.append(Variable(self._advance().value))
            elif self._check("KEYWORD", "COUNT"):
                items.append(self._parse_count())
            elif self._check("OP", "("):
                # (COUNT(?x) AS ?alias)
                self._advance()
                self._expect("KEYWORD", "COUNT")
                aggregate = self._finish_count()
                self._expect("KEYWORD", "AS")
                alias = Variable(self._expect("VAR").value)
                self._expect("OP", ")")
                items.append(
                    CountAggregate(aggregate.variable, aggregate.distinct, alias)
                )
            else:
                break
        if not items:
            raise SparqlParseError(
                "SELECT needs at least one variable, COUNT or '*'",
                self._current.position,
            )
        return tuple(items)

    def _parse_count(self) -> CountAggregate:
        self._expect("KEYWORD", "COUNT")
        return self._finish_count()

    def _finish_count(self) -> CountAggregate:
        self._expect("OP", "(")
        distinct = bool(self._accept("KEYWORD", "DISTINCT"))
        if self._accept("OP", "*"):
            variable = None
        else:
            variable = Variable(self._expect("VAR").value)
        self._expect("OP", ")")
        return CountAggregate(variable, distinct)

    def _parse_order_by(self) -> tuple[OrderCondition, ...]:
        if not self._accept("KEYWORD", "ORDER"):
            return ()
        self._expect("KEYWORD", "BY")
        conditions: list[OrderCondition] = []
        while True:
            if self._accept("KEYWORD", "ASC"):
                self._expect("OP", "(")
                expr = self._parse_expression()
                self._expect("OP", ")")
                conditions.append(OrderCondition(expr, descending=False))
            elif self._accept("KEYWORD", "DESC"):
                self._expect("OP", "(")
                expr = self._parse_expression()
                self._expect("OP", ")")
                conditions.append(OrderCondition(expr, descending=True))
            elif self._check("VAR"):
                conditions.append(
                    OrderCondition(TermExpr(Variable(self._advance().value)))
                )
            else:
                break
        if not conditions:
            raise SparqlParseError("ORDER BY needs a condition", self._current.position)
        return tuple(conditions)

    def _parse_limit_offset(self) -> tuple[int | None, int]:
        limit: int | None = None
        offset = 0
        # LIMIT and OFFSET may come in either order.
        for __ in range(2):
            if self._accept("KEYWORD", "LIMIT"):
                limit = int(self._expect("NUMBER").value)
            elif self._accept("KEYWORD", "OFFSET"):
                offset = int(self._expect("NUMBER").value)
        return limit, offset

    # -- ASK ---------------------------------------------------------------

    def _parse_ask(self) -> AskQuery:
        self._accept("KEYWORD", "WHERE")
        return AskQuery(where=self._parse_group())

    # -- groups and patterns ------------------------------------------------

    def _parse_group(self) -> Group:
        self._expect("OP", "{")
        patterns: list[GraphPattern] = []
        triples: list[Triple] = []

        def flush_triples() -> None:
            if triples:
                patterns.append(BGP(tuple(triples)))
                triples.clear()

        while not self._check("OP", "}"):
            if self._accept("OP", "."):
                continue  # stray separators after FILTER/OPTIONAL are legal
            if self._accept("KEYWORD", "FILTER"):
                flush_triples()
                patterns.append(Filter(self._parse_filter_expression()))
            elif self._accept("KEYWORD", "OPTIONAL"):
                flush_triples()
                patterns.append(OptionalPattern(self._parse_group()))
            elif self._check("OP", "{"):
                flush_triples()
                left = self._parse_group()
                node: GraphPattern = left
                while self._accept("KEYWORD", "UNION"):
                    right = self._parse_group()
                    node = UnionPattern(
                        node if isinstance(node, Group) else Group((node,)),
                        right,
                    )
                patterns.append(node)
            elif self._check("EOF"):
                raise SparqlParseError("unterminated group", self._current.position)
            else:
                triples.extend(self._parse_triples_same_subject())
                # Triple separator; trailing '.' before '}' is allowed.
                if not self._accept("OP", "."):
                    follower_ok = (
                        self._check("OP", "}")
                        or self._check("OP", "{")
                        or self._check("KEYWORD", "FILTER")
                        or self._check("KEYWORD", "OPTIONAL")
                    )
                    if not follower_ok:
                        raise SparqlParseError(
                            "expected '.' between triples", self._current.position
                        )
        self._expect("OP", "}")
        flush_triples()
        return Group(tuple(patterns))

    def _parse_triples_same_subject(self) -> list[Triple]:
        subject = self._parse_term()
        triples: list[Triple] = []
        while True:
            predicate = self._parse_verb()
            obj = self._parse_term()
            triples.append(Triple(subject, predicate, obj))
            while self._accept("OP", ","):
                obj = self._parse_term()
                triples.append(Triple(subject, predicate, obj))
            if not self._accept("OP", ";"):
                break
            if self._check("OP", ".") or self._check("OP", "}"):
                break  # dangling ';'
        return triples

    def _parse_verb(self) -> Term:
        if self._accept("KEYWORD", "A"):
            return RDF.type
        return self._parse_term()

    def _parse_term(self) -> Term:
        token = self._current
        if token.kind == "VAR":
            self._advance()
            return Variable(token.value)
        if token.kind == "IRIREF":
            self._advance()
            return IRI(token.value[1:-1])
        if token.kind == "PNAME":
            self._advance()
            return self._expand_pname(token)
        if token.kind == "STRING":
            self._advance()
            if self._check("LANGTAG"):
                return Literal(token.value, language=self._advance().value)
            if self._accept("DOUBLE_CARET"):
                datatype_token = self._current
                if datatype_token.kind == "IRIREF":
                    self._advance()
                    return Literal(token.value, datatype=datatype_token.value[1:-1])
                if datatype_token.kind == "PNAME":
                    self._advance()
                    return Literal(
                        token.value, datatype=self._expand_pname(datatype_token).value
                    )
                raise SparqlParseError(
                    "expected datatype IRI after '^^'", datatype_token.position
                )
            return Literal(token.value)
        if token.kind == "NUMBER":
            self._advance()
            if any(ch in token.value for ch in ".eE"):
                return Literal(token.value, datatype=XSD_DOUBLE)
            return Literal(token.value, datatype=XSD_INTEGER)
        if token.kind == "KEYWORD" and token.value in ("TRUE", "FALSE"):
            self._advance()
            return Literal(token.value.lower(), datatype=XSD_BOOLEAN)
        raise SparqlParseError(
            f"expected an RDF term, got {token.value or token.kind!r}", token.position
        )

    def _expand_pname(self, token: Token) -> IRI:
        prefix, __, local = token.value.partition(":")
        try:
            namespace = self._prefixes[prefix]
        except KeyError:
            raise SparqlParseError(
                f"undeclared prefix {prefix!r}", token.position
            ) from None
        return namespace.term(local)

    # -- expressions -------------------------------------------------------

    def _parse_filter_expression(self) -> Expression:
        # FILTER takes either a parenthesised expression or a builtin call.
        if self._check("OP", "("):
            self._advance()
            expr = self._parse_expression()
            self._expect("OP", ")")
            return expr
        return self._parse_expression()

    def _parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self._accept("OP", "||"):
            right = self._parse_and()
            left = BooleanOp("||", left, right)
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_unary()
        while self._accept("OP", "&&"):
            right = self._parse_unary()
            left = BooleanOp("&&", left, right)
        return left

    def _parse_unary(self) -> Expression:
        if self._accept("OP", "!"):
            return Not(self._parse_unary())
        return self._parse_comparison()

    def _parse_comparison(self) -> Expression:
        left = self._parse_primary()
        token = self._current
        if token.kind == "OP" and token.value in _COMPARISON_OPS:
            self._advance()
            right = self._parse_primary()
            return Comparison(token.value, left, right)
        return left

    def _parse_primary(self) -> Expression:
        token = self._current
        if token.kind == "OP" and token.value == "(":
            self._advance()
            expr = self._parse_expression()
            self._expect("OP", ")")
            return expr
        if token.kind == "KEYWORD" and token.value in _BUILTIN_FUNCTIONS:
            self._advance()
            return self._parse_call(token.value)
        if token.kind == "VAR" or token.kind in (
            "IRIREF",
            "PNAME",
            "STRING",
            "NUMBER",
        ) or (token.kind == "KEYWORD" and token.value in ("TRUE", "FALSE")):
            return TermExpr(self._parse_term())
        raise SparqlParseError(
            f"expected expression, got {token.value or token.kind!r}", token.position
        )

    def _parse_call(self, name: str) -> FunctionCall:
        self._expect("OP", "(")
        arguments: list[Expression] = []
        if not self._check("OP", ")"):
            arguments.append(self._parse_expression())
            while self._accept("OP", ","):
                arguments.append(self._parse_expression())
        self._expect("OP", ")")
        return FunctionCall(name, tuple(arguments))


def parse_query(text: str) -> SelectQuery | AskQuery:
    """Parse SPARQL text into an AST.

    >>> query = parse_query("SELECT ?x WHERE { ?x a dbo:Book }")
    >>> len(query.where.triples())
    1
    """
    return _Parser(text).parse()

"""FILTER expression evaluation.

Implements the SPARQL operator semantics the engine supports: effective
boolean value, value comparisons with numeric/date promotion, and the
builtin function library.  Type errors raise :class:`SparqlTypeError`, which
the executor converts into "the solution fails the filter" per the spec.
"""

from __future__ import annotations

import datetime as dt
import re
from typing import Any, Mapping

from repro.rdf.datatypes import (
    XSD_BOOLEAN,
    is_date_literal,
    is_numeric_literal,
    literal_value,
)
from repro.rdf.terms import BNode, IRI, Literal, Term, Variable
from repro.sparql.ast import (
    BooleanOp,
    Comparison,
    Expression,
    FunctionCall,
    Not,
    TermExpr,
)
from repro.sparql.errors import SparqlTypeError

Bindings = Mapping[Variable, Term]


def evaluate(expression: Expression, bindings: Bindings) -> Any:
    """Evaluate an expression to a Term or Python value.

    Unbound variables raise :class:`SparqlTypeError` (except inside
    ``BOUND``, which the function evaluator handles itself).
    """
    if isinstance(expression, TermExpr):
        term = expression.term
        if isinstance(term, Variable):
            try:
                return bindings[term]
            except KeyError:
                raise SparqlTypeError(f"unbound variable ?{term.name}") from None
        return term
    if isinstance(expression, Comparison):
        return _compare(expression.operator, expression.left, expression.right, bindings)
    if isinstance(expression, BooleanOp):
        return _boolean_op(expression, bindings)
    if isinstance(expression, Not):
        return not effective_boolean(evaluate(expression.operand, bindings))
    if isinstance(expression, FunctionCall):
        return _call(expression, bindings)
    raise SparqlTypeError(f"cannot evaluate {type(expression).__name__}")


def effective_boolean(value: Any) -> bool:
    """SPARQL effective boolean value (EBV)."""
    if isinstance(value, bool):
        return value
    if isinstance(value, Literal):
        native = literal_value(value)
        if isinstance(native, bool):
            return native
        if isinstance(native, (int, float)):
            return native != 0
        if isinstance(native, str):
            return len(native) > 0
        raise SparqlTypeError(f"no boolean value for literal {value.n3()}")
    if isinstance(value, (int, float)):
        return value != 0
    if isinstance(value, str):
        return len(value) > 0
    raise SparqlTypeError(f"no effective boolean value for {value!r}")


def _boolean_op(expression: BooleanOp, bindings: Bindings) -> bool:
    # SPARQL || and && have three-valued logic: an error on one side can be
    # absorbed when the other side decides the result.
    def side(expr: Expression) -> bool | None:
        try:
            return effective_boolean(evaluate(expr, bindings))
        except SparqlTypeError:
            return None

    left = side(expression.left)
    right = side(expression.right)
    if expression.operator == "&&":
        if left is False or right is False:
            return False
        if left is True and right is True:
            return True
        raise SparqlTypeError("type error in &&")
    if left is True or right is True:
        return True
    if left is False and right is False:
        return False
    raise SparqlTypeError("type error in ||")


def _comparable(term: Any) -> Any:
    """Map a term to a Python value usable with comparison operators."""
    if isinstance(term, Literal):
        if is_numeric_literal(term):
            value = literal_value(term)
            if isinstance(value, str):
                raise SparqlTypeError(f"malformed numeric literal {term.n3()}")
            return value
        if is_date_literal(term):
            value = literal_value(term)
            if isinstance(value, dt.datetime):
                return value.date()
            if isinstance(value, int):  # gYear
                return dt.date(value, 1, 1)
            if isinstance(value, dt.date):
                return value
            raise SparqlTypeError(f"malformed date literal {term.n3()}")
        if term.datatype == XSD_BOOLEAN:
            return bool(literal_value(term))
        return term.lexical
    if isinstance(term, (int, float, str, bool, dt.date)):
        return term
    raise SparqlTypeError(f"{term!r} is not comparable")


def _compare(operator: str, left: Expression, right: Expression, bindings: Bindings) -> bool:
    return compare_values(operator, evaluate(left, bindings), evaluate(right, bindings))


def compare_values(operator: str, lhs: Any, rhs: Any) -> bool:
    """SPARQL value comparison over already-evaluated operands.

    Shared between the AST-walking evaluator above and the compiled
    id-space expression closures (:mod:`repro.sparql.compiler`), which
    evaluate operands once and must not re-walk the expression tree.
    """
    # Term equality for IRIs and blank nodes.
    if isinstance(lhs, (IRI, BNode)) or isinstance(rhs, (IRI, BNode)):
        if operator == "=":
            return lhs == rhs
        if operator == "!=":
            return lhs != rhs
        raise SparqlTypeError("IRIs only support = and !=")
    lhs_value = _comparable(lhs)
    rhs_value = _comparable(rhs)
    if isinstance(lhs_value, str) != isinstance(rhs_value, str) or (
        isinstance(lhs_value, dt.date) != isinstance(rhs_value, dt.date)
    ):
        if operator == "=":
            return False
        if operator == "!=":
            return True
        raise SparqlTypeError(
            f"cannot order {type(lhs_value).__name__} against {type(rhs_value).__name__}"
        )
    if operator == "=":
        return lhs_value == rhs_value
    if operator == "!=":
        return lhs_value != rhs_value
    if operator == "<":
        return lhs_value < rhs_value
    if operator == "<=":
        return lhs_value <= rhs_value
    if operator == ">":
        return lhs_value > rhs_value
    if operator == ">=":
        return lhs_value >= rhs_value
    raise SparqlTypeError(f"unknown operator {operator!r}")


def _string_of(value: Any) -> str:
    if isinstance(value, Literal):
        return value.lexical
    if isinstance(value, IRI):
        return value.value
    if isinstance(value, str):
        return value
    raise SparqlTypeError(f"expected a string-valued argument, got {value!r}")


def _call(expression: FunctionCall, bindings: Bindings) -> Any:
    name = expression.name
    args = expression.arguments

    if name == "BOUND":
        if len(args) != 1:
            raise SparqlTypeError(f"BOUND expects 1 argument(s), got {len(args)}")
        operand = args[0]
        if not (isinstance(operand, TermExpr) and isinstance(operand.term, Variable)):
            raise SparqlTypeError("BOUND expects a variable")
        return operand.term in bindings

    return apply_builtin(name, tuple(evaluate(arg, bindings) for arg in args))


def apply_builtin(name: str, values: tuple[Any, ...]) -> Any:
    """Apply a builtin (other than ``BOUND``) to evaluated argument values.

    Shared between :func:`evaluate` and the compiled expression closures:
    the compiler evaluates arguments via per-slot closures and dispatches
    here, so builtin semantics live in exactly one place.  ``BOUND`` never
    reaches this function — it inspects bindings, not values, and both
    callers special-case it.
    """

    def arity(n: int) -> None:
        if len(values) != n:
            raise SparqlTypeError(f"{name} expects {n} argument(s), got {len(values)}")

    if name == "REGEX":
        if len(values) not in (2, 3):
            raise SparqlTypeError("REGEX expects 2 or 3 arguments")
        text = _string_of(values[0])
        pattern = _string_of(values[1])
        flags = 0
        if len(values) == 3:
            flag_text = _string_of(values[2])
            if "i" in flag_text:
                flags |= re.IGNORECASE
        try:
            return re.search(pattern, text, flags) is not None
        except re.error as exc:
            raise SparqlTypeError(f"bad REGEX pattern: {exc}") from exc

    if name == "STR":
        arity(1)
        return Literal(_string_of(values[0]))

    if name == "LANG":
        arity(1)
        value = values[0]
        if not isinstance(value, Literal):
            raise SparqlTypeError("LANG expects a literal")
        return Literal(value.language or "")

    if name == "LANGMATCHES":
        arity(2)
        tag = _string_of(values[0]).lower()
        pattern = _string_of(values[1]).lower()
        if pattern == "*":
            return bool(tag)
        return tag == pattern or tag.startswith(pattern + "-")

    if name == "DATATYPE":
        arity(1)
        value = values[0]
        if not isinstance(value, Literal):
            raise SparqlTypeError("DATATYPE expects a literal")
        if value.datatype:
            return IRI(value.datatype)
        return IRI("http://www.w3.org/2001/XMLSchema#string")

    if name == "CONTAINS":
        arity(2)
        return _string_of(values[1]) in _string_of(values[0])

    if name == "STRSTARTS":
        arity(2)
        return _string_of(values[0]).startswith(_string_of(values[1]))

    if name == "STRENDS":
        arity(2)
        return _string_of(values[0]).endswith(_string_of(values[1]))

    if name == "LCASE":
        arity(1)
        return Literal(_string_of(values[0]).lower())

    if name == "UCASE":
        arity(1)
        return Literal(_string_of(values[0]).upper())

    if name in ("ISIRI", "ISURI"):
        arity(1)
        return isinstance(values[0], IRI)

    if name == "ISLITERAL":
        arity(1)
        return isinstance(values[0], Literal)

    if name == "ISBLANK":
        arity(1)
        return isinstance(values[0], BNode)

    raise SparqlTypeError(f"unknown function {name}")


class Inverted:
    """Wrapper inverting comparison order for DESC sort keys."""

    __slots__ = ("value",)

    def __init__(self, value) -> None:
        self.value = value

    def __lt__(self, other: "Inverted") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Inverted) and other.value == self.value


def invert_order(value: Any) -> Any:
    """Invert a within-kind ORDER BY key for descending sorts."""
    if isinstance(value, (int, float)):
        return -value
    return Inverted(value)


def order_key(value: Any) -> tuple[int, Any]:
    """Sort key for ORDER BY: groups by kind then compares within the kind.

    SPARQL defines an ordering across term kinds (unbound < blank < IRI <
    literal); within literals we compare native values where possible.
    """
    if value is None:
        return (0, "")
    if isinstance(value, BNode):
        return (1, value.label)
    if isinstance(value, IRI):
        return (2, value.value)
    if isinstance(value, Literal):
        if is_numeric_literal(value):
            native = literal_value(value)
            if not isinstance(native, str):
                return (3, native)
        if is_date_literal(value):
            native = literal_value(value)
            if isinstance(native, dt.datetime):
                return (4, native.date().toordinal())
            if isinstance(native, dt.date):
                return (4, native.toordinal())
            if isinstance(native, int):
                return (4, dt.date(native, 1, 1).toordinal())
        return (5, value.lexical)
    return (6, str(value))

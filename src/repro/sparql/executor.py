"""Iterator-based term-space evaluation of graph patterns.

Solutions are immutable-by-convention ``dict[Variable, Term]`` bindings.
Groups evaluate their children in order: BGPs join (with planned triple
order), OPTIONAL left-joins, UNION concatenates, and FILTERs collected in
the group apply to the group's final solutions (SPARQL filter scoping).

This is the slowest and simplest of the three engines — the reference
the others are checked against.  The row id-space engine
(:mod:`repro.sparql.compiler`) and the columnar batch engine
(:mod:`repro.sparql.columnar`) must produce identical decoded solutions
to this evaluator; the three-way differential harness
(``tests/sparql/test_threeway_differential.py``) drives all three over
seeded random queries, and ordered results compare byte-for-byte thanks
to the shared deterministic ORDER BY tie-break (docs/performance.md,
"Deterministic ordering").
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.rdf.graph import Graph
from repro.rdf.terms import Term, Triple, Variable
from repro.sparql.ast import (
    BGP,
    Filter,
    Group,
    OptionalPattern,
    UnionPattern,
)
from repro.sparql.errors import SparqlTypeError
from repro.sparql.functions import effective_boolean, evaluate
from repro.sparql.planner import plan_bgp

Solution = dict[Variable, Term]


def _substitute(slot: Term, solution: Solution) -> Term | None:
    """Resolve a pattern slot against a solution: bound vars become
    constants, unbound vars become wildcards (None)."""
    if isinstance(slot, Variable):
        return solution.get(slot)
    return slot


def _match_pattern(
    graph: Graph, pattern: Triple, solution: Solution
) -> Iterator[Solution]:
    """Extend one solution with all matches of one triple pattern."""
    subject = _substitute(pattern.subject, solution)
    predicate = _substitute(pattern.predicate, solution)
    obj = _substitute(pattern.object, solution)
    for triple in graph.match(subject, predicate, obj):
        extended = dict(solution)
        consistent = True
        for slot, value in (
            (pattern.subject, triple.subject),
            (pattern.predicate, triple.predicate),
            (pattern.object, triple.object),
        ):
            if isinstance(slot, Variable):
                current = extended.get(slot)
                if current is None:
                    extended[slot] = value
                elif current != value:
                    # The same variable occurs twice in the pattern with
                    # conflicting values (e.g. ?x ?p ?x).
                    consistent = False
                    break
        if consistent:
            yield extended


def evaluate_bgp(
    graph: Graph, triples: tuple[Triple, ...], solutions: Iterable[Solution]
) -> Iterator[Solution]:
    """Join a BGP against a stream of solutions (nested index loops)."""
    solutions = list(solutions)
    if not solutions:
        return
    # Plan on the variables bound in *every* incoming solution: a
    # heterogeneous stream (OPTIONAL/UNION branches bind different
    # variables) must not get a join order keyed on a variable that is
    # unbound in some solutions.
    bound = set(solutions[0])
    for solution in solutions[1:]:
        bound &= set(solution)
        if not bound:
            break
    ordered = plan_bgp(graph, triples, bound)

    def join(current: Iterable[Solution], pattern: Triple) -> Iterator[Solution]:
        for solution in current:
            yield from _match_pattern(graph, pattern, solution)

    stream: Iterable[Solution] = solutions
    for pattern in ordered:
        stream = join(stream, pattern)
    yield from stream


def _passes(filters: list[Filter], solution: Solution) -> bool:
    for constraint in filters:
        try:
            if not effective_boolean(evaluate(constraint.expression, solution)):
                return False
        except SparqlTypeError:
            # Per SPARQL semantics a type error means the filter fails.
            return False
    return True


def evaluate_group(
    graph: Graph, group: Group, solutions: Iterable[Solution] | None = None
) -> Iterator[Solution]:
    """Evaluate a ``{ ... }`` group against the graph."""
    stream: list[Solution] = list(solutions) if solutions is not None else [{}]
    filters: list[Filter] = []
    for child in group.patterns:
        if isinstance(child, BGP):
            stream = list(evaluate_bgp(graph, child.triples, stream))
        elif isinstance(child, Filter):
            filters.append(child)
        elif isinstance(child, OptionalPattern):
            stream = list(_left_join(graph, child.pattern, stream))
        elif isinstance(child, UnionPattern):
            stream = list(_union_join(graph, child, stream))
        elif isinstance(child, Group):
            stream = list(evaluate_group(graph, child, stream))
        else:
            raise TypeError(f"unknown pattern node {type(child).__name__}")
        if not stream:
            break
    for solution in stream:
        if _passes(filters, solution):
            yield solution


def _left_join(
    graph: Graph, optional: Group, solutions: Iterable[Solution]
) -> Iterator[Solution]:
    for solution in solutions:
        matched = False
        for extended in evaluate_group(graph, optional, [solution]):
            matched = True
            yield extended
        if not matched:
            yield solution


def _union_join(
    graph: Graph, union: UnionPattern, solutions: Iterable[Solution]
) -> Iterator[Solution]:
    solutions = list(solutions)
    yield from evaluate_group(graph, union.left, solutions)
    yield from evaluate_group(graph, union.right, solutions)

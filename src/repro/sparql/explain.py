"""EXPLAIN: show the executor's plan for a query.

Renders, per group, the planner's join order with the cardinality
estimates it used, plus filter placement — the classic relational EXPLAIN,
adapted to BGPs.  Purely observational: calling it never executes the
query.
"""

from __future__ import annotations

from repro.rdf.graph import Graph
from repro.rdf.terms import Variable
from repro.sparql.ast import (
    AskQuery,
    BGP,
    Filter,
    Group,
    OptionalPattern,
    SelectQuery,
    UnionPattern,
)
from repro.sparql.compiler import HASH_JOIN_MIN_ROWS, compile_query
from repro.sparql.parser import parse_query
from repro.sparql.planner import estimate_cardinality, plan_bgp
from repro.sparql.serializer import serialize_expression, serialize_term


def explain(graph: Graph, query: str | SelectQuery | AskQuery) -> str:
    """Produce the plan description for a query over ``graph``.

    >>> from repro.rdf import DBO, DBR, Graph, RDF, Triple
    >>> g = Graph([Triple(DBR.Snow, RDF.type, DBO.Book)])
    >>> print(explain(g, "SELECT ?x WHERE { ?x a dbo:Book }"))
    SELECT plan
    group
      join[1] scan ?x rdf:type dbo:Book (est. 1)
    engine: columnar id-space plan (1 slot(s): ?x; batch join above 64 rows)
    """
    if isinstance(query, str):
        query = parse_query(query)
    lines: list[str] = []
    if isinstance(query, SelectQuery):
        lines.append("SELECT plan")
        where = query.where
    else:
        lines.append("ASK plan (stops at first solution)")
        where = query.where
    _explain_group(graph, where, lines, indent="", bound=set())
    if isinstance(query, SelectQuery):
        if query.distinct:
            lines.append("then: DISTINCT")
        if query.order_by:
            lines.append(f"then: ORDER BY ({len(query.order_by)} key(s))")
        if query.limit is not None or query.offset:
            lines.append(
                f"then: slice offset={query.offset} limit={query.limit}"
            )
    # Execution detail (docs/performance.md, "Engine architecture"):
    # compiling is cheap and observational — it never runs the query.
    compiled = compile_query(query, graph, columnar=True)
    slots = " ".join(
        f"?{compiled.slot_names[slot]}" for slot in sorted(compiled.slot_names)
    )
    lines.append(
        f"engine: columnar id-space plan ({compiled.width} slot(s): {slots}; "
        f"batch join above {HASH_JOIN_MIN_ROWS} rows)"
    )
    return "\n".join(lines)


def _explain_group(
    graph: Graph, group: Group, lines: list[str], indent: str,
    bound: set[Variable],
) -> None:
    lines.append(f"{indent}group")
    inner = indent + "  "
    filters: list[Filter] = []
    for child in group.patterns:
        if isinstance(child, BGP):
            ordered = plan_bgp(graph, child.triples, bound)
            for step, pattern in enumerate(ordered, start=1):
                estimate = estimate_cardinality(graph, pattern, bound)
                access = "lookup" if pattern.is_ground() else "scan"
                rendered = " ".join(
                    serialize_term(slot) for slot in pattern
                )
                lines.append(
                    f"{inner}join[{step}] {access} {rendered} "
                    f"(est. {estimate:.0f})"
                )
                bound |= pattern.variables()
        elif isinstance(child, Filter):
            filters.append(child)
        elif isinstance(child, OptionalPattern):
            lines.append(f"{inner}left-join")
            _explain_group(graph, child.pattern, lines, inner + "  ", set(bound))
        elif isinstance(child, UnionPattern):
            lines.append(f"{inner}union")
            _explain_group(graph, child.left, lines, inner + "  ", set(bound))
            _explain_group(graph, child.right, lines, inner + "  ", set(bound))
        elif isinstance(child, Group):
            _explain_group(graph, child, lines, inner, set(bound))
    for constraint in filters:
        lines.append(
            f"{inner}filter {serialize_expression(constraint.expression)}"
        )

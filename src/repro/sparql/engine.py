"""The query engine facade: parse, plan, execute, shape results.

The engine carries two LRU caches sized by ``cache_size``:

* a **parse cache** mapping query text to its AST (query parsing does not
  depend on graph contents, so entries never go stale);
* a **result cache** mapping the (hashable, frozen) AST to the computed
  result, invalidated wholesale whenever :attr:`repro.rdf.Graph.generation`
  moves — i.e. on any triple assertion or retraction.

Both caches are thread-safe and both results types
(:class:`~repro.sparql.results.SelectResult`,
:class:`~repro.sparql.results.AskResult`) are immutable, so cached objects
are shared between callers without copying.
"""

from __future__ import annotations

import threading
from typing import Iterable

from repro.perf.lru import LRUCache
from repro.perf.stats import PerfStats
from repro.rdf.datatypes import XSD_INTEGER
from repro.rdf.graph import Graph
from repro.rdf.terms import Literal, Term, Variable
from repro.sparql.ast import (
    AskQuery,
    CountAggregate,
    SelectQuery,
)
from repro.sparql.errors import SparqlError, SparqlTypeError
from repro.sparql.executor import Solution, evaluate_group
from repro.sparql.functions import evaluate as evaluate_expression
from repro.sparql.functions import order_key
from repro.sparql.parser import parse_query
from repro.sparql.results import AskResult, SelectResult

#: Default width of the parse and result caches.  Sized for the QA
#: workload: one question executes at most ``max_queries`` (64) candidate
#: queries, so 512 holds several questions' worth of candidates plus the
#: type-checking lookups.
DEFAULT_CACHE_SIZE = 512


class SparqlEngine:
    """Executes SPARQL-subset queries against a :class:`repro.rdf.Graph`.

    >>> from repro.rdf import DBO, DBR, Graph, RDF, Triple
    >>> g = Graph([Triple(DBR.Snow, RDF.type, DBO.Book)])
    >>> engine = SparqlEngine(g)
    >>> result = engine.query("SELECT ?b WHERE { ?b a dbo:Book }")
    >>> [term.local_name for term in result.column("b")]
    ['Snow']

    A repeated query is answered from cache — until the graph mutates:

    >>> engine.query("SELECT ?b WHERE { ?b a dbo:Book }") is result
    True
    >>> g.add(Triple(DBR.My_Name_Is_Red, RDF.type, DBO.Book))
    True
    >>> len(engine.query("SELECT ?b WHERE { ?b a dbo:Book }"))
    2
    """

    def __init__(
        self,
        graph: Graph,
        cache_size: int = DEFAULT_CACHE_SIZE,
        stats: PerfStats | None = None,
    ) -> None:
        self._graph = graph
        self._stats = stats if stats is not None else PerfStats()
        self._parse_cache = LRUCache(cache_size)
        self._result_cache = LRUCache(cache_size)
        self._cache_lock = threading.Lock()
        self._cached_generation = graph.generation
        self.cache_enabled = cache_size > 0
        # Observability hook (docs/observability.md): tracing systems
        # install their tracers via add_tracer(); see _trace_event.
        self._tracers: tuple = ()

    @property
    def graph(self) -> Graph:
        return self._graph

    @property
    def stats(self) -> PerfStats:
        """The engine's perf counters (shared with the owning system)."""
        return self._stats

    def add_tracer(self, tracer) -> None:
        """Install an observability tracer (docs/observability.md).

        The engine is shared by every system over one KB, and more than
        one of them may trace, so installed tracers accumulate; a cache
        hit/miss event goes to whichever installed tracer has a trace
        *open on the current thread* — i.e. onto the span of exactly the
        question that caused the lookup.  With none installed (the
        default) the hot path pays one empty-tuple truthiness check.
        """
        if tracer not in self._tracers:
            self._tracers = self._tracers + (tracer,)

    def _trace_event(self, name: str, **attributes) -> None:
        for tracer in self._tracers:
            if tracer.active:
                tracer.event(name, **attributes)

    def cache_stats(self) -> dict[str, dict]:
        """Hit/miss snapshots of the parse and result caches."""
        return {
            "parse_cache": self._parse_cache.stats(),
            "result_cache": self._result_cache.stats(),
        }

    def clear_caches(self) -> None:
        self._parse_cache.clear()
        self._result_cache.clear()

    def query(self, query: str | SelectQuery | AskQuery) -> SelectResult | AskResult:
        """Run a query given as text or pre-parsed AST."""
        if isinstance(query, str):
            query = self._parse(query)
        if not isinstance(query, (SelectQuery, AskQuery)):
            raise SparqlError(f"unsupported query type {type(query).__name__}")
        if not self.cache_enabled:
            return self._evaluate(query)

        self._validate_result_cache()
        cached = self._result_cache.get(query)
        if cached is not None:
            self._stats.increment("sparql.result_cache.hits")
            if self._tracers:
                self._trace_event("sparql.result_cache", outcome="hit")
            return cached
        self._stats.increment("sparql.result_cache.misses")
        if self._tracers:
            self._trace_event("sparql.result_cache", outcome="miss")
        # Failure containment (docs/reliability.md): the cache is filled
        # only after a *successful* evaluation — an evaluation that raises
        # leaves both caches untouched, so a faulted run can never poison
        # the results a later clean run observes.
        try:
            result = self._evaluate(query)
        except Exception:
            self._stats.increment("sparql.errors")
            raise
        self._result_cache.put(query, result)
        return result

    def _parse(self, text: str) -> SelectQuery | AskQuery:
        """Parse query text through the parse cache.

        Like the result cache, the parse cache only ever holds successful
        parses: a raising parse is counted and propagated, never stored.
        """
        if not self.cache_enabled:
            return parse_query(text)
        ast = self._parse_cache.get(text)
        if ast is not None:
            self._stats.increment("sparql.parse_cache.hits")
            if self._tracers:
                self._trace_event("sparql.parse_cache", outcome="hit")
            return ast
        self._stats.increment("sparql.parse_cache.misses")
        if self._tracers:
            self._trace_event("sparql.parse_cache", outcome="miss")
        try:
            ast = parse_query(text)
        except Exception:
            self._stats.increment("sparql.parse_errors")
            raise
        self._parse_cache.put(text, ast)
        return ast

    def _validate_result_cache(self) -> None:
        """Drop every cached result if the graph has mutated since filling.

        The generation check makes staleness impossible rather than
        unlikely: results enter the cache only at the generation observed
        here, and any later mutation moves the generation before the next
        lookup can hit.
        """
        generation = self._graph.generation
        with self._cache_lock:
            if generation != self._cached_generation:
                self._result_cache.clear()
                self._cached_generation = generation
                self._stats.increment("sparql.result_cache.invalidations")

    def _evaluate(self, query: SelectQuery | AskQuery) -> SelectResult | AskResult:
        if isinstance(query, SelectQuery):
            return self._run_select(query)
        return self._run_ask(query)

    def select(self, query: str | SelectQuery) -> SelectResult:
        """Run a SELECT query; raises on ASK input."""
        result = self.query(query)
        if not isinstance(result, SelectResult):
            raise SparqlError("expected a SELECT query")
        return result

    def ask(self, query: str | AskQuery) -> bool:
        """Run an ASK query, returning a plain bool."""
        result = self.query(query)
        if not isinstance(result, AskResult):
            raise SparqlError("expected an ASK query")
        return result.value

    # ------------------------------------------------------------------

    def _run_ask(self, query: AskQuery) -> AskResult:
        solutions = evaluate_group(self._graph, query.where)
        return AskResult(next(iter(solutions), None) is not None)

    def _run_select(self, query: SelectQuery) -> SelectResult:
        solutions = list(evaluate_group(self._graph, query.where))

        if query.is_aggregate:
            return self._aggregate(query, solutions)

        if query.select_all:
            seen: list[Variable] = []
            for solution in solutions:
                for variable in solution:
                    if variable not in seen:
                        seen.append(variable)
            variables = tuple(sorted(seen, key=lambda v: v.name))
        else:
            variables = tuple(
                p for p in query.projection if isinstance(p, Variable)
            )

        if query.order_by:
            def sort_key(solution: Solution):
                keys = []
                for condition in query.order_by:
                    try:
                        value = evaluate_expression(condition.expression, solution)
                    except SparqlTypeError:
                        value = None
                    kind, within = order_key(value)
                    if condition.descending:
                        keys.append((-kind, _invert(within)))
                    else:
                        keys.append((kind, within))
                return tuple(keys)

            solutions.sort(key=sort_key)

        rows: list[tuple[Term | None, ...]] = [
            tuple(solution.get(variable) for variable in variables)
            for solution in solutions
        ]

        if query.distinct:
            rows = list(dict.fromkeys(rows))

        rows = self._slice(rows, query.offset, query.limit)
        return SelectResult(variables=variables, rows=tuple(rows))

    def _aggregate(self, query: SelectQuery, solutions: list[Solution]) -> SelectResult:
        if len(query.projection) != 1:
            raise SparqlError("COUNT cannot be mixed with other projections")
        aggregate = query.projection[0]
        assert isinstance(aggregate, CountAggregate)
        if aggregate.variable is None:
            count = len(solutions)
            if aggregate.distinct:
                count = len({tuple(sorted(s.items(), key=lambda kv: kv[0].name)) for s in solutions})
        else:
            values = [
                solution[aggregate.variable]
                for solution in solutions
                if aggregate.variable in solution
            ]
            count = len(set(values)) if aggregate.distinct else len(values)
        out_variable = aggregate.alias or Variable("count")
        row = (Literal(str(count), datatype=XSD_INTEGER),)
        return SelectResult(variables=(out_variable,), rows=(row,))

    @staticmethod
    def _slice(
        rows: list[tuple[Term | None, ...]], offset: int, limit: int | None
    ) -> list[tuple[Term | None, ...]]:
        if offset:
            rows = rows[offset:]
        if limit is not None:
            rows = rows[:limit]
        return rows


class _Inverted:
    """Wrapper inverting comparison order for DESC sort keys."""

    __slots__ = ("value",)

    def __init__(self, value) -> None:
        self.value = value

    def __lt__(self, other: "_Inverted") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Inverted) and other.value == self.value


def _invert(value):
    if isinstance(value, (int, float)):
        return -value
    return _Inverted(value)


def select(graph: Graph, query: str) -> SelectResult:
    """One-shot SELECT over a graph."""
    return SparqlEngine(graph).select(query)


def ask(graph: Graph, query: str) -> bool:
    """One-shot ASK over a graph."""
    return SparqlEngine(graph).ask(query)

"""The query engine facade: parse, plan, execute, shape results.

The engine carries three LRU caches:

* a **parse cache** mapping query text to its AST (query parsing does not
  depend on graph contents, so entries never go stale);
* a **plan cache** mapping the (hashable, frozen) AST to its compiled
  id-space plan (:mod:`repro.sparql.compiler`).  Keyed on the AST's own
  structural hash, so queries submitted as pre-built ASTs — the QA hot
  path submits ``candidate.to_ast()`` directly — hit it just like textual
  queries.  Plans never go stale: constants resolved to dictionary ids
  stay valid forever (ids are append-only) and absent constants re-resolve
  per graph generation;
* a **result cache** mapping the AST to the computed result, invalidated
  wholesale whenever :attr:`repro.rdf.Graph.generation` moves — i.e. on
  any triple assertion or retraction.

The engine also keeps a cross-query **prefix memo**
(:class:`repro.sparql.compiler.PrefixMemo`): candidate queries for one
question share BGP join prefixes, and the memo lets a later candidate
resume from an earlier candidate's id-level prefix rows within a graph
generation.

All caches are thread-safe and both result types
(:class:`~repro.sparql.results.SelectResult`,
:class:`~repro.sparql.results.AskResult`) are immutable, so cached objects
are shared between callers without copying.

By default queries execute on the compiled id-space engine with the
columnar batch operators (:mod:`repro.sparql.columnar`).  Pass
``columnar=False`` for the row-tuple id-space operators, or
``idspace=False`` for the original term-space evaluator
(:mod:`repro.sparql.executor`) — both are retained as oracles for the
three-way differential tests and benchmarks.
"""

from __future__ import annotations

import threading
from typing import Iterable

from repro.perf.lru import LRUCache
from repro.perf.stats import PerfStats
from repro.rdf.datatypes import XSD_INTEGER
from repro.rdf.graph import Graph
from repro.rdf.terms import Literal, Term, Variable
from repro.sparql.ast import (
    AskQuery,
    CountAggregate,
    SelectQuery,
)
from repro.sparql.compiler import (
    CompiledQuery,
    ExecContext,
    PrefixMemo,
    compile_query,
)
from repro.sparql.errors import SparqlError, SparqlTypeError
from repro.sparql.executor import Solution, evaluate_group
from repro.sparql.functions import Inverted as _Inverted
from repro.sparql.functions import evaluate as evaluate_expression
from repro.sparql.functions import invert_order as _invert
from repro.sparql.functions import order_key
from repro.sparql.parser import parse_query
from repro.sparql.results import AskResult, SelectResult

#: Default width of the parse and result caches.  Sized for the QA
#: workload: one question executes at most ``max_queries`` (64) candidate
#: queries, so 512 holds several questions' worth of candidates plus the
#: type-checking lookups.
DEFAULT_CACHE_SIZE = 512


class SparqlEngine:
    """Executes SPARQL-subset queries against a :class:`repro.rdf.Graph`.

    >>> from repro.rdf import DBO, DBR, Graph, RDF, Triple
    >>> g = Graph([Triple(DBR.Snow, RDF.type, DBO.Book)])
    >>> engine = SparqlEngine(g)
    >>> result = engine.query("SELECT ?b WHERE { ?b a dbo:Book }")
    >>> [term.local_name for term in result.column("b")]
    ['Snow']

    A repeated query is answered from cache — until the graph mutates:

    >>> engine.query("SELECT ?b WHERE { ?b a dbo:Book }") is result
    True
    >>> g.add(Triple(DBR.My_Name_Is_Red, RDF.type, DBO.Book))
    True
    >>> len(engine.query("SELECT ?b WHERE { ?b a dbo:Book }"))
    2
    """

    def __init__(
        self,
        graph: Graph,
        cache_size: int = DEFAULT_CACHE_SIZE,
        stats: PerfStats | None = None,
        idspace: bool = True,
        columnar: bool = True,
    ) -> None:
        self._graph = graph
        self._stats = stats if stats is not None else PerfStats()
        self._parse_cache = LRUCache(cache_size)
        self._result_cache = LRUCache(cache_size)
        # Plans never go stale (see module docstring), so the plan cache
        # stays on even when result caching is disabled — compiling per
        # call would just re-do structurally identical work.
        self._plan_cache = LRUCache(cache_size if cache_size > 0 else DEFAULT_CACHE_SIZE)
        self._prefix_memo = PrefixMemo()
        self._memo_generation = graph.generation
        self._cache_lock = threading.Lock()
        self._cached_generation = graph.generation
        self.cache_enabled = cache_size > 0
        self.idspace = idspace
        # Columnar batch execution (repro.sparql.columnar) is the default
        # operator backend for id-space plans; columnar=False keeps the
        # row-tuple operators, retained for differential testing.
        self.columnar = bool(idspace and columnar)
        # Observability hook (docs/observability.md): tracing systems
        # install their tracers via add_tracer(); see _trace_event.
        self._tracers: tuple = ()
        # Optional scatter-gather executor (repro.sparql.scatter) consulted
        # per plan by _execute_plan; None keeps single-process execution.
        self._scatter = None

    @property
    def graph(self) -> Graph:
        return self._graph

    @property
    def stats(self) -> PerfStats:
        """The engine's perf counters (shared with the owning system)."""
        return self._stats

    def add_tracer(self, tracer) -> None:
        """Install an observability tracer (docs/observability.md).

        The engine is shared by every system over one KB, and more than
        one of them may trace, so installed tracers accumulate; a cache
        hit/miss event goes to whichever installed tracer has a trace
        *open on the current thread* — i.e. onto the span of exactly the
        question that caused the lookup.  With none installed (the
        default) the hot path pays one empty-tuple truthiness check.
        """
        if tracer not in self._tracers:
            self._tracers = self._tracers + (tracer,)

    def install_scatter(self, executor) -> None:
        """Route shard-partitionable plans through a scatter-gather
        executor (:class:`repro.sparql.scatter.ScatterGatherExecutor`).

        Every compiled plan is offered to ``executor.maybe_execute``
        first; it answers the partitionable ones from the segment shards
        and returns ``None`` for the rest, which then execute on the
        single-process path exactly as before.  Pass ``None`` to
        uninstall.
        """
        self._scatter = executor

    def _trace_event(self, name: str, **attributes) -> None:
        for tracer in self._tracers:
            if tracer.active:
                tracer.event(name, **attributes)

    def cache_stats(self) -> dict[str, dict]:
        """Hit/miss snapshots of the parse, plan, and result caches.

        Folded into the ``repro.metrics/v1`` document as
        ``sparql.<cache>.<field>`` gauges by
        :meth:`repro.obs.metrics.MetricsRegistry.absorb_cache_stats`.
        """
        return {
            "parse_cache": self._parse_cache.stats(),
            "plan_cache": self._plan_cache.stats(),
            "result_cache": self._result_cache.stats(),
            "prefix_memo": {"size": len(self._prefix_memo)},
        }

    def clear_caches(self) -> None:
        self._parse_cache.clear()
        self._plan_cache.clear()
        self._result_cache.clear()
        self._prefix_memo.invalidate()

    # -- warm-state snapshot (repro.serve.snapshot) ---------------------

    def export_warm_state(self) -> dict:
        """Picklable warm-cache state for crash-safe restarts.

        Compiled plans are *not* serialised — they close over this graph's
        indexes — only their AST keys, recompiled on import (compilation is
        deterministic and cheap next to re-earning the result cache from
        traffic).  Results are exported as ``(ast, result)`` pairs, valid
        only for the exported graph generation.
        """
        return {
            "generation": self._graph.generation,
            "plan_keys": self._plan_cache.keys(),
            "results": self._result_cache.items(),
        }

    def import_warm_state(self, state: dict) -> dict[str, int]:
        """Restore :meth:`export_warm_state` output into the live caches.

        The caller (the snapshot layer) has already matched the KB
        fingerprint; the generation check here is the engine's own final
        guard against torn restores — results cached under a different
        graph generation never enter the cache.
        """
        if state["generation"] != self._graph.generation:
            raise ValueError(
                f"warm state is for graph generation {state['generation']}, "
                f"engine is at {self._graph.generation}"
            )
        plans = 0
        for ast in state["plan_keys"]:
            if self._plan_cache.get(ast) is None:
                self._plan_cache.put(
                    ast,
                    compile_query(ast, self._graph, columnar=self.columnar),
                )
                plans += 1
        results = 0
        self._validate_result_cache()
        for ast, result in state["results"]:
            self._result_cache.put(ast, result)
            results += 1
        self._stats.increment("sparql.snapshot.plans_restored", plans)
        self._stats.increment("sparql.snapshot.results_restored", results)
        return {"plans": plans, "results": results}

    def query(self, query: str | SelectQuery | AskQuery) -> SelectResult | AskResult:
        """Run a query given as text or pre-parsed AST."""
        if isinstance(query, str):
            query = self._parse(query)
        if not isinstance(query, (SelectQuery, AskQuery)):
            raise SparqlError(f"unsupported query type {type(query).__name__}")
        # Plan lookup happens before the result-cache lookup on purpose:
        # plan-cache traffic then reflects every query submitted (text or
        # AST), not only result-cache misses, and the plan is already in
        # hand when a result-cache entry gets invalidated later.
        plan = self._plan(query) if self.idspace else None
        if not self.cache_enabled:
            return self._evaluate(query, plan)

        self._validate_result_cache()
        cached = self._result_cache.get(query)
        if cached is not None:
            self._stats.increment("sparql.result_cache.hits")
            if self._tracers:
                self._trace_event("sparql.result_cache", outcome="hit")
            return cached
        self._stats.increment("sparql.result_cache.misses")
        if self._tracers:
            self._trace_event("sparql.result_cache", outcome="miss")
        # Failure containment (docs/reliability.md): the cache is filled
        # only after a *successful* evaluation — an evaluation that raises
        # leaves both caches untouched, so a faulted run can never poison
        # the results a later clean run observes.
        try:
            result = self._evaluate(query, plan)
        except Exception:
            self._stats.increment("sparql.errors")
            raise
        self._result_cache.put(query, result)
        return result

    def _plan(self, query: SelectQuery | AskQuery) -> CompiledQuery:
        """Fetch or compile the id-space plan for a query AST."""
        plan = self._plan_cache.get(query)
        if plan is not None:
            self._stats.increment("sparql.plan_cache.hits")
            if self._tracers:
                self._trace_event("sparql.plan_cache", outcome="hit")
            return plan
        self._stats.increment("sparql.plan_cache.misses")
        if self._tracers:
            self._trace_event("sparql.plan_cache", outcome="miss")
        plan = compile_query(query, self._graph, columnar=self.columnar)
        self._plan_cache.put(query, plan)
        return plan

    def _parse(self, text: str) -> SelectQuery | AskQuery:
        """Parse query text through the parse cache.

        Like the result cache, the parse cache only ever holds successful
        parses: a raising parse is counted and propagated, never stored.
        """
        if not self.cache_enabled:
            return parse_query(text)
        ast = self._parse_cache.get(text)
        if ast is not None:
            self._stats.increment("sparql.parse_cache.hits")
            if self._tracers:
                self._trace_event("sparql.parse_cache", outcome="hit")
            return ast
        self._stats.increment("sparql.parse_cache.misses")
        if self._tracers:
            self._trace_event("sparql.parse_cache", outcome="miss")
        try:
            ast = parse_query(text)
        except Exception:
            self._stats.increment("sparql.parse_errors")
            raise
        self._parse_cache.put(text, ast)
        return ast

    def _validate_result_cache(self) -> None:
        """Drop every cached result if the graph has mutated since filling.

        The generation check makes staleness impossible rather than
        unlikely: results enter the cache only at the generation observed
        here, and any later mutation moves the generation before the next
        lookup can hit.
        """
        generation = self._graph.generation
        with self._cache_lock:
            if generation != self._cached_generation:
                self._result_cache.clear()
                self._cached_generation = generation
                self._stats.increment("sparql.result_cache.invalidations")

    def _evaluate(
        self,
        query: SelectQuery | AskQuery,
        plan: CompiledQuery | None = None,
    ) -> SelectResult | AskResult:
        if plan is not None:
            return self._execute_plan(plan)
        if isinstance(query, SelectQuery):
            return self._run_select(query)
        return self._run_ask(query)

    def _execute_plan(self, plan: CompiledQuery) -> SelectResult | AskResult:
        # The prefix memo lives outside the result cache (it must also
        # serve cache-disabled engines), so it checks the generation here
        # on every execution rather than in _validate_result_cache.
        generation = self._graph.generation
        if generation != self._memo_generation:
            with self._cache_lock:
                if generation != self._memo_generation:
                    self._prefix_memo.invalidate()
                    self._memo_generation = generation
        context = ExecContext(self._graph, self._stats, self._prefix_memo)
        if self._scatter is not None:
            result = self._scatter.maybe_execute(plan, context)
            if result is not None:
                return result
        return plan.execute(context)

    def select(self, query: str | SelectQuery) -> SelectResult:
        """Run a SELECT query; raises on ASK input."""
        result = self.query(query)
        if not isinstance(result, SelectResult):
            raise SparqlError("expected a SELECT query")
        return result

    def ask(self, query: str | AskQuery) -> bool:
        """Run an ASK query, returning a plain bool."""
        result = self.query(query)
        if not isinstance(result, AskResult):
            raise SparqlError("expected an ASK query")
        return result.value

    # ------------------------------------------------------------------

    def _run_ask(self, query: AskQuery) -> AskResult:
        solutions = evaluate_group(self._graph, query.where)
        return AskResult(next(iter(solutions), None) is not None)

    def _run_select(self, query: SelectQuery) -> SelectResult:
        solutions = list(evaluate_group(self._graph, query.where))

        if query.is_aggregate:
            return self._aggregate(query, solutions)

        if query.select_all:
            seen: list[Variable] = []
            for solution in solutions:
                for variable in solution:
                    if variable not in seen:
                        seen.append(variable)
            variables = tuple(sorted(seen, key=lambda v: v.name))
        else:
            variables = tuple(
                p for p in query.projection if isinstance(p, Variable)
            )

        if query.order_by:
            # Deterministic tie-break shared with the id-space engines
            # (docs/performance.md): rows equal under every ORDER BY key
            # fall back to dictionary-id order over the solution variables
            # in name order, never inverted for DESC.
            tiebreak_variables = tuple(
                sorted(
                    {v for solution in solutions for v in solution},
                    key=lambda v: v.name,
                )
            )
            lookup = self._graph.lookup_id

            def sort_key(solution: Solution):
                keys = []
                for condition in query.order_by:
                    try:
                        value = evaluate_expression(condition.expression, solution)
                    except SparqlTypeError:
                        value = None
                    kind, within = order_key(value)
                    if condition.descending:
                        keys.append((-kind, _invert(within)))
                    else:
                        keys.append((kind, within))
                keys.append(
                    tuple(
                        lookup(solution[v]) if v in solution else -1
                        for v in tiebreak_variables
                    )
                )
                return tuple(keys)

            solutions.sort(key=sort_key)

        rows: list[tuple[Term | None, ...]] = [
            tuple(solution.get(variable) for variable in variables)
            for solution in solutions
        ]

        if query.distinct:
            rows = list(dict.fromkeys(rows))

        rows = self._slice(rows, query.offset, query.limit)
        return SelectResult(variables=variables, rows=tuple(rows))

    def _aggregate(self, query: SelectQuery, solutions: list[Solution]) -> SelectResult:
        if len(query.projection) != 1:
            raise SparqlError("COUNT cannot be mixed with other projections")
        aggregate = query.projection[0]
        assert isinstance(aggregate, CountAggregate)
        if aggregate.variable is None:
            count = len(solutions)
            if aggregate.distinct:
                count = len({tuple(sorted(s.items(), key=lambda kv: kv[0].name)) for s in solutions})
        else:
            values = [
                solution[aggregate.variable]
                for solution in solutions
                if aggregate.variable in solution
            ]
            count = len(set(values)) if aggregate.distinct else len(values)
        out_variable = aggregate.alias or Variable("count")
        row = (Literal(str(count), datatype=XSD_INTEGER),)
        return SelectResult(variables=(out_variable,), rows=(row,))

    @staticmethod
    def _slice(
        rows: list[tuple[Term | None, ...]], offset: int, limit: int | None
    ) -> list[tuple[Term | None, ...]]:
        if offset:
            rows = rows[offset:]
        if limit is not None:
            rows = rows[:limit]
        return rows


def select(graph: Graph, query: str) -> SelectResult:
    """One-shot SELECT over a graph."""
    return SparqlEngine(graph).select(query)


def ask(graph: Graph, query: str) -> bool:
    """One-shot ASK over a graph."""
    return SparqlEngine(graph).ask(query)

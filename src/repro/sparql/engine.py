"""The query engine facade: parse, plan, execute, shape results."""

from __future__ import annotations

from typing import Iterable

from repro.rdf.datatypes import XSD_INTEGER
from repro.rdf.graph import Graph
from repro.rdf.terms import Literal, Term, Variable
from repro.sparql.ast import (
    AskQuery,
    CountAggregate,
    SelectQuery,
)
from repro.sparql.errors import SparqlError, SparqlTypeError
from repro.sparql.executor import Solution, evaluate_group
from repro.sparql.functions import evaluate as evaluate_expression
from repro.sparql.functions import order_key
from repro.sparql.parser import parse_query
from repro.sparql.results import AskResult, SelectResult


class SparqlEngine:
    """Executes SPARQL-subset queries against a :class:`repro.rdf.Graph`.

    >>> from repro.rdf import DBO, DBR, Graph, RDF, Triple
    >>> g = Graph([Triple(DBR.Snow, RDF.type, DBO.Book)])
    >>> engine = SparqlEngine(g)
    >>> result = engine.query("SELECT ?b WHERE { ?b a dbo:Book }")
    >>> [term.local_name for term in result.column("b")]
    ['Snow']
    """

    def __init__(self, graph: Graph) -> None:
        self._graph = graph

    @property
    def graph(self) -> Graph:
        return self._graph

    def query(self, query: str | SelectQuery | AskQuery) -> SelectResult | AskResult:
        """Run a query given as text or pre-parsed AST."""
        if isinstance(query, str):
            query = parse_query(query)
        if isinstance(query, SelectQuery):
            return self._run_select(query)
        if isinstance(query, AskQuery):
            return self._run_ask(query)
        raise SparqlError(f"unsupported query type {type(query).__name__}")

    def select(self, query: str | SelectQuery) -> SelectResult:
        """Run a SELECT query; raises on ASK input."""
        result = self.query(query)
        if not isinstance(result, SelectResult):
            raise SparqlError("expected a SELECT query")
        return result

    def ask(self, query: str | AskQuery) -> bool:
        """Run an ASK query, returning a plain bool."""
        result = self.query(query)
        if not isinstance(result, AskResult):
            raise SparqlError("expected an ASK query")
        return result.value

    # ------------------------------------------------------------------

    def _run_ask(self, query: AskQuery) -> AskResult:
        solutions = evaluate_group(self._graph, query.where)
        return AskResult(next(iter(solutions), None) is not None)

    def _run_select(self, query: SelectQuery) -> SelectResult:
        solutions = list(evaluate_group(self._graph, query.where))

        if query.is_aggregate:
            return self._aggregate(query, solutions)

        if query.select_all:
            seen: list[Variable] = []
            for solution in solutions:
                for variable in solution:
                    if variable not in seen:
                        seen.append(variable)
            variables = tuple(sorted(seen, key=lambda v: v.name))
        else:
            variables = tuple(
                p for p in query.projection if isinstance(p, Variable)
            )

        if query.order_by:
            def sort_key(solution: Solution):
                keys = []
                for condition in query.order_by:
                    try:
                        value = evaluate_expression(condition.expression, solution)
                    except SparqlTypeError:
                        value = None
                    kind, within = order_key(value)
                    if condition.descending:
                        keys.append((-kind, _invert(within)))
                    else:
                        keys.append((kind, within))
                return tuple(keys)

            solutions.sort(key=sort_key)

        rows: list[tuple[Term | None, ...]] = [
            tuple(solution.get(variable) for variable in variables)
            for solution in solutions
        ]

        if query.distinct:
            rows = list(dict.fromkeys(rows))

        rows = self._slice(rows, query.offset, query.limit)
        return SelectResult(variables=variables, rows=tuple(rows))

    def _aggregate(self, query: SelectQuery, solutions: list[Solution]) -> SelectResult:
        if len(query.projection) != 1:
            raise SparqlError("COUNT cannot be mixed with other projections")
        aggregate = query.projection[0]
        assert isinstance(aggregate, CountAggregate)
        if aggregate.variable is None:
            count = len(solutions)
            if aggregate.distinct:
                count = len({tuple(sorted(s.items(), key=lambda kv: kv[0].name)) for s in solutions})
        else:
            values = [
                solution[aggregate.variable]
                for solution in solutions
                if aggregate.variable in solution
            ]
            count = len(set(values)) if aggregate.distinct else len(values)
        out_variable = aggregate.alias or Variable("count")
        row = (Literal(str(count), datatype=XSD_INTEGER),)
        return SelectResult(variables=(out_variable,), rows=(row,))

    @staticmethod
    def _slice(
        rows: list[tuple[Term | None, ...]], offset: int, limit: int | None
    ) -> list[tuple[Term | None, ...]]:
        if offset:
            rows = rows[offset:]
        if limit is not None:
            rows = rows[:limit]
        return rows


class _Inverted:
    """Wrapper inverting comparison order for DESC sort keys."""

    __slots__ = ("value",)

    def __init__(self, value) -> None:
        self.value = value

    def __lt__(self, other: "_Inverted") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Inverted) and other.value == self.value


def _invert(value):
    if isinstance(value, (int, float)):
        return -value
    return _Inverted(value)


def select(graph: Graph, query: str) -> SelectResult:
    """One-shot SELECT over a graph."""
    return SparqlEngine(graph).select(query)


def ask(graph: Graph, query: str) -> bool:
    """One-shot ASK over a graph."""
    return SparqlEngine(graph).ask(query)

"""Compiled id-space query plans.

The term-space evaluator (:mod:`repro.sparql.executor`) decodes every
matched triple back into :class:`~repro.rdf.terms.Term` objects and copies
a ``dict[Variable, Term]`` per extension — encode/decode and dict-churn
costs on every row of every join of every candidate query.  This module
compiles a :class:`~repro.sparql.ast.SelectQuery`/:class:`~repro.sparql.ast.AskQuery`
once into an executable plan that runs entirely in the integer id space the
dictionary-encoded :class:`~repro.rdf.Graph` already maintains:

* every variable of the query maps to a dense **slot index**; a partial
  solution is a flat tuple of ids with :data:`UNBOUND` (-1) holes — no
  dictionaries, no Term objects;
* triple patterns resolve their constants to dictionary ids at bind time
  (ids are append-only, so resolved constants survive graph mutations; an
  absent constant re-resolves on the next generation) and join through
  :meth:`~repro.rdf.Graph.match_ids`;
* a **hash-join operator** takes over from the nested index loop when the
  intermediate row set is large enough that one scan of the pattern plus a
  hash probe per row beats per-row index lookups;
* FILTER / ORDER BY expressions compile once into closures over slot
  indices (:func:`compile_expression`) instead of re-walking the AST per
  solution, with an id-level fast path for ``?var = <iri>`` equality;
* ids decode to Terms only at final projection, after DISTINCT collapsed
  duplicate id rows.

The engine caches compiled plans keyed on the (structurally hashable) AST
and shares a **prefix memo** across plans: the near-identical candidate
queries of one question (same BGP prefix, different final predicate) reuse
the prefix's id-level solution set within a graph generation — see
:class:`PrefixMemo` and docs/performance.md ("Engine architecture").
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable

from repro.perf.stats import PerfStats
from repro.rdf.datatypes import XSD_INTEGER
from repro.rdf.graph import Graph
from repro.rdf.terms import BNode, IRI, Literal, Term, Triple, Variable
from repro.sparql.ast import (
    AskQuery,
    BGP,
    BooleanOp,
    Comparison,
    CountAggregate,
    Expression,
    Filter,
    FunctionCall,
    Group,
    Not,
    OptionalPattern,
    SelectQuery,
    TermExpr,
    UnionPattern,
)
from repro.sparql.errors import SparqlError, SparqlTypeError
from repro.sparql.functions import (
    apply_builtin,
    compare_values,
    effective_boolean,
    invert_order,
    order_key,
)
from repro.sparql.planner import BOUND_VARIABLE_FACTOR
from repro.sparql.results import AskResult, SelectResult

#: Slot value marking "this variable is not bound in this row".  Real
#: dictionary ids are non-negative; the graph's own ``-1`` ("constant not
#: in dictionary") never appears inside a row because absent constants are
#: filtered out before a pattern executes.
UNBOUND = -1

#: Row-count threshold above which a pattern joins by hashing one scan of
#: its matches instead of one index lookup per row.
HASH_JOIN_MIN_ROWS = 64

#: The hash join only pays off while the single scan is not much larger
#: than the row set it replaces per-row lookups for.
HASH_JOIN_MAX_SCAN_FACTOR = 8

#: Prefix solution sets above this many rows are not memoized (the memo
#: targets the QA candidate sets, whose prefixes are selective).
PREFIX_MEMO_MAX_ROWS = 8192

Row = tuple[int, ...]


class PrefixMemo:
    """Shared id-level solution sets for BGP prefixes, one graph generation.

    Candidate queries generated for one question differ only in a predicate
    or an orientation; their compiled BGPs therefore share join prefixes.
    The memo maps a canonical prefix key — the resolved (id, slot-name)
    shape of the first *k* planned patterns — to the id rows that prefix
    produced, so the next candidate resumes the join after the shared part
    instead of recomputing it.

    Entries are only valid for the generation they were computed in; the
    owning engine calls :meth:`invalidate` whenever the graph mutates (the
    same hook that clears the result cache), so a lookup can never observe
    rows from another generation.
    """

    def __init__(self, maxsize: int = 512) -> None:
        self._maxsize = maxsize
        self._data: dict[tuple, tuple[tuple[str, ...], tuple[Row, ...]]] = {}
        self._lock = threading.Lock()

    def get(self, key: tuple) -> tuple[tuple[str, ...], tuple[Row, ...]] | None:
        with self._lock:
            return self._data.get(key)

    def put(self, key: tuple, names: tuple[str, ...], rows: tuple[Row, ...]) -> None:
        if self._maxsize <= 0 or len(rows) > PREFIX_MEMO_MAX_ROWS:
            return
        with self._lock:
            if key not in self._data and len(self._data) >= self._maxsize:
                return  # full: keep the warm entries, skip the newcomer
            self._data[key] = (names, rows)

    def invalidate(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)


class ExecContext:
    """Per-execution plumbing handed through the operator tree."""

    __slots__ = ("graph", "stats", "prefix_memo")

    def __init__(
        self,
        graph: Graph,
        stats: PerfStats | None = None,
        prefix_memo: PrefixMemo | None = None,
    ) -> None:
        self.graph = graph
        self.stats = stats
        self.prefix_memo = prefix_memo


# ---------------------------------------------------------------------------
# Triple patterns
# ---------------------------------------------------------------------------


class CompiledPattern:
    """One triple pattern with variables mapped to slots and constants to ids.

    ``*_slot`` is the slot index for a variable position (None for a
    constant); ``*_id`` is the resolved dictionary id for a constant
    position (-1 while the constant is absent from the graph's dictionary;
    None for a variable).
    """

    __slots__ = (
        "s_slot", "p_slot", "o_slot",
        "s_term", "p_term", "o_term",
        "s_id", "p_id", "o_id",
        "variables",
    )

    def __init__(self, triple: Triple, slot_of: dict[Variable, int]) -> None:
        self.s_slot, self.s_term = self._position(triple.subject, slot_of)
        self.p_slot, self.p_term = self._position(triple.predicate, slot_of)
        self.o_slot, self.o_term = self._position(triple.object, slot_of)
        self.s_id: int | None = None
        self.p_id: int | None = None
        self.o_id: int | None = None
        self.variables = frozenset(triple.variables())

    @staticmethod
    def _position(
        slot: Term, slot_of: dict[Variable, int]
    ) -> tuple[int | None, Term | None]:
        if isinstance(slot, Variable):
            return slot_of[slot], None
        return None, slot

    def resolve(self, graph: Graph) -> None:
        """(Re-)resolve constant ids.  Already-resolved ids never change
        (the dictionary is append-only); only absent constants retry."""
        if self.s_term is not None and (self.s_id is None or self.s_id < 0):
            self.s_id = graph.lookup_id(self.s_term)
        if self.p_term is not None and (self.p_id is None or self.p_id < 0):
            self.p_id = graph.lookup_id(self.p_term)
        if self.o_term is not None and (self.o_id is None or self.o_id < 0):
            self.o_id = graph.lookup_id(self.o_term)

    def memo_key(self, names: dict[int, str]) -> tuple:
        """Canonical shape of the resolved pattern for the prefix memo.

        Constants contribute their dictionary id, variables their name (the
        candidate generator reuses variable names, which is what makes
        prefixes collide across candidates).  Absent constants contribute
        -1: any such pattern matches nothing, so key collisions between
        different absent terms are harmless (both memoize empty row sets).
        """
        return (
            self.s_id if self.s_slot is None else ("v", names[self.s_slot]),
            self.p_id if self.p_slot is None else ("v", names[self.p_slot]),
            self.o_id if self.o_slot is None else ("v", names[self.o_slot]),
        )

    # -- execution -----------------------------------------------------

    def bound_ids(self, row: Row) -> tuple[int | None, int | None, int | None]:
        """The (s, p, o) lookup ids for one row: constants stay, bound
        variables substitute, unbound variables become wildcards."""
        s = self.s_id if self.s_slot is None else row[self.s_slot]
        p = self.p_id if self.p_slot is None else row[self.p_slot]
        o = self.o_id if self.o_slot is None else row[self.o_slot]
        return (
            None if s == UNBOUND and self.s_slot is not None else s,
            None if p == UNBOUND and self.p_slot is not None else p,
            None if o == UNBOUND and self.o_slot is not None else o,
        )

    def extend(self, rows: list[Row], graph: Graph) -> list[Row]:
        """Nested-index-loop join: extend every row with every match."""
        match_ids = graph.match_ids
        s_slot, p_slot, o_slot = self.s_slot, self.p_slot, self.o_slot
        out: list[Row] = []
        append = out.append
        for row in rows:
            s, p, o = self.bound_ids(row)
            for ms, mp, mo in match_ids(s, p, o):
                extended = list(row)
                ok = True
                # Repeated variables (e.g. ``?x ?p ?x``) hit the same slot
                # twice: the first write binds, the second must agree.
                for slot, value in (
                    (s_slot, ms), (p_slot, mp), (o_slot, mo)
                ):
                    if slot is None:
                        continue
                    current = extended[slot]
                    if current == UNBOUND:
                        extended[slot] = value
                    elif current != value:
                        ok = False
                        break
                if ok:
                    append(tuple(extended))
        return out

    def extend_hash(self, rows: list[Row], graph: Graph) -> list[Row]:
        """Hash join: one scan of the pattern, a hash probe per row.

        The first row's boundness decides the join key: its bound variable
        positions key the hash table; the remaining (free) positions are
        filled from each matching scan triple.  BGP streams are usually
        homogeneous, so this signature almost always covers every row;
        a row that deviates (heterogeneous OPTIONAL/UNION streams) falls
        back to the per-row index lookup, which keeps the semantics
        identical to :meth:`extend` in all cases.  With no bound positions
        this degrades gracefully to a materialised cartesian product — one
        scan shared by all rows instead of one scan per row.
        """
        s_slot, p_slot, o_slot = self.s_slot, self.p_slot, self.o_slot
        var_items = [
            (position, slot)
            for position, slot in ((0, s_slot), (1, p_slot), (2, o_slot))
            if slot is not None
        ]
        first = rows[0]
        bound_items = [
            (position, slot) for position, slot in var_items
            if first[slot] != UNBOUND
        ]
        free_items = [
            (position, slot) for position, slot in var_items
            if first[slot] == UNBOUND
        ]
        bound_slots = tuple(slot for __, slot in bound_items)
        free_slots = tuple(slot for __, slot in free_items)

        # One scan with only the constants bound, grouped by the values at
        # the bound variable positions.
        table: dict[tuple[int, ...], list[tuple[int, int, int]]] = {}
        for match in graph.match_ids(self.s_id, self.p_id, self.o_id):
            key = tuple(match[position] for position, __ in bound_items)
            table.setdefault(key, []).append(match)
        if not table:
            return []

        out: list[Row] = []
        append = out.append
        for row in rows:
            if any(row[slot] == UNBOUND for slot in bound_slots) or any(
                row[slot] != UNBOUND for slot in free_slots
            ):
                # Boundness differs from the first row: per-row lookup.
                s, p, o = self.bound_ids(row)
                for ms, mp, mo in graph.match_ids(s, p, o):
                    extended = list(row)
                    ok = True
                    for slot, value in ((s_slot, ms), (p_slot, mp), (o_slot, mo)):
                        if slot is None:
                            continue
                        current = extended[slot]
                        if current == UNBOUND:
                            extended[slot] = value
                        elif current != value:
                            ok = False
                            break
                    if ok:
                        append(tuple(extended))
                continue
            bucket = table.get(tuple(row[slot] for slot in bound_slots))
            if bucket is None:
                continue
            if not free_items:
                # Pure existence/multiplicity join: the row extends as-is,
                # once per matching triple.
                for __ in bucket:
                    append(row)
                continue
            for match in bucket:
                extended = list(row)
                ok = True
                # Repeated free variables (``?x ?p ?x``) hit the same slot
                # twice: the first write binds, the second must agree.
                for position, slot in free_items:
                    value = match[position]
                    current = extended[slot]
                    if current == UNBOUND:
                        extended[slot] = value
                    elif current != value:
                        ok = False
                        break
                if ok:
                    append(tuple(extended))
        return out


# ---------------------------------------------------------------------------
# Expression compilation
# ---------------------------------------------------------------------------

Valuation = Callable[[Row], Any]


def compile_expression(
    expression: Expression,
    slot_of: dict[Variable, int],
    decode: Callable[[int], Term],
    cells: list[Any] | None = None,
    slots_used: set[int] | None = None,
) -> Valuation:
    """Compile an expression into a closure over an id row.

    The closure raises :class:`SparqlTypeError` exactly where the
    AST-walking evaluator would; callers wrap it per SPARQL error scoping
    (filters fail, ORDER BY keys become unbound-kind).

    ``cells`` collects every id-equality fast-path closure in the tree —
    including ones nested under ``!``/``&&``/``||`` — so the plan can
    resolve their constant ids against the live graph before execution.

    ``slots_used`` collects the slot index of every variable the
    expression can read.  The columnar engine keys its per-distinct-value
    memo on exactly these slots, so the closure result for one id
    combination is computed once per batch instead of once per row.
    """
    if isinstance(expression, TermExpr):
        term = expression.term
        if isinstance(term, Variable):
            slot = slot_of.get(term)
            if slot is not None and slots_used is not None:
                slots_used.add(slot)
            if slot is None:
                # A variable that appears nowhere in the pattern tree is
                # never bound — mirror the evaluator's unbound error.
                def never(row: Row, name: str = term.name) -> Any:
                    raise SparqlTypeError(f"unbound variable ?{name}")
                return never

            def value_of(row: Row, slot: int = slot, name: str = term.name) -> Any:
                term_id = row[slot]
                if term_id == UNBOUND:
                    raise SparqlTypeError(f"unbound variable ?{name}")
                return decode(term_id)
            return value_of
        return lambda row: term

    if isinstance(expression, Comparison):
        fast = _compile_id_equality(expression, slot_of)
        if fast is not None:
            if cells is not None:
                cells.append(fast)
            if slots_used is not None:
                slots_used.add(fast.slot)
            return fast
        left = compile_expression(
            expression.left, slot_of, decode, cells, slots_used
        )
        right = compile_expression(
            expression.right, slot_of, decode, cells, slots_used
        )
        operator = expression.operator
        return lambda row: compare_values(operator, left(row), right(row))

    if isinstance(expression, BooleanOp):
        left = compile_expression(
            expression.left, slot_of, decode, cells, slots_used
        )
        right = compile_expression(
            expression.right, slot_of, decode, cells, slots_used
        )

        def side(value_of: Valuation, row: Row) -> bool | None:
            try:
                return effective_boolean(value_of(row))
            except SparqlTypeError:
                return None

        if expression.operator == "&&":
            def conjunction(row: Row) -> bool:
                lhs, rhs = side(left, row), side(right, row)
                if lhs is False or rhs is False:
                    return False
                if lhs is True and rhs is True:
                    return True
                raise SparqlTypeError("type error in &&")
            return conjunction

        def disjunction(row: Row) -> bool:
            lhs, rhs = side(left, row), side(right, row)
            if lhs is True or rhs is True:
                return True
            if lhs is False and rhs is False:
                return False
            raise SparqlTypeError("type error in ||")
        return disjunction

    if isinstance(expression, Not):
        operand = compile_expression(
            expression.operand, slot_of, decode, cells, slots_used
        )
        return lambda row: not effective_boolean(operand(row))

    if isinstance(expression, FunctionCall):
        name = expression.name
        if name == "BOUND":
            if len(expression.arguments) != 1:
                raise SparqlTypeError("BOUND expects 1 argument(s), got "
                                      f"{len(expression.arguments)}")
            operand = expression.arguments[0]
            if not (isinstance(operand, TermExpr)
                    and isinstance(operand.term, Variable)):
                raise SparqlTypeError("BOUND expects a variable")
            slot = slot_of.get(operand.term)
            if slot is None:
                return lambda row: False
            if slots_used is not None:
                slots_used.add(slot)
            return lambda row: row[slot] != UNBOUND
        argument_closures = tuple(
            compile_expression(argument, slot_of, decode, cells, slots_used)
            for argument in expression.arguments
        )
        return lambda row: apply_builtin(
            name, tuple(closure(row) for closure in argument_closures)
        )

    raise SparqlTypeError(f"cannot compile {type(expression).__name__}")


def _compile_id_equality(
    expression: Comparison, slot_of: dict[Variable, int]
) -> Valuation | None:
    """Fast path: ``?var = <iri>`` / ``?var != <iri>`` compare ids directly.

    Sound because dictionary encoding is injective and SPARQL defines
    IRI/BNode comparison as term equality; literals stay on the value path
    (distinct literal terms can compare equal by value).
    """
    if expression.operator not in ("=", "!="):
        return None
    sides = (expression.left, expression.right)
    variable: Variable | None = None
    constant: Term | None = None
    for side in sides:
        if not isinstance(side, TermExpr):
            return None
        if isinstance(side.term, Variable):
            variable = side.term
        elif isinstance(side.term, (IRI, BNode)):
            constant = side.term
        else:
            return None
    if variable is None or constant is None:
        return None
    slot = slot_of.get(variable)
    if slot is None:
        return None
    negate = expression.operator == "!="
    name = variable.name
    constant_box: list[int] = [UNBOUND]  # resolved lazily via closure cell

    def equals(row: Row, _box=constant_box) -> bool:
        term_id = row[slot]
        if term_id == UNBOUND:
            raise SparqlTypeError(f"unbound variable ?{name}")
        return (term_id != _box[0]) if negate else (term_id == _box[0])

    equals.constant = constant  # type: ignore[attr-defined]
    equals.constant_box = constant_box  # type: ignore[attr-defined]
    # Columnar metadata: the batch engine turns a top-level id-equality
    # filter into one whole-column mask instead of a per-row call.
    equals.slot = slot  # type: ignore[attr-defined]
    equals.negate = negate  # type: ignore[attr-defined]
    return equals


# ---------------------------------------------------------------------------
# Pattern-tree operators
# ---------------------------------------------------------------------------


class CompiledBGP:
    """A basic graph pattern: planned pattern order + join operators."""

    __slots__ = ("patterns", "memo_eligible")

    def __init__(self, patterns: list[CompiledPattern], memo_eligible: bool) -> None:
        self.patterns = patterns
        self.memo_eligible = memo_eligible

    def run(
        self, context: ExecContext, rows: list[Row], plan: "CompiledQuery"
    ) -> list[Row]:
        if not rows:
            return []
        memo = context.prefix_memo if self.memo_eligible else None
        start = 0
        if memo is not None and len(rows) == 1 and len(self.patterns) > 1:
            keys = [
                pattern.memo_key(plan.slot_names) for pattern in self.patterns
            ]
            rows, start = self._resume_from_memo(context, memo, keys, rows, plan)
            for index in range(start, len(self.patterns)):
                rows = self._join(context, rows, self.patterns[index])
                if index + 1 < len(self.patterns):
                    self._store_prefix(
                        memo, tuple(keys[: index + 1]), rows, plan,
                        tuple(keys[: index + 1]),
                    )
                if not rows:
                    break
            return rows
        for pattern in self.patterns:
            rows = self._join(context, rows, pattern)
            if not rows:
                break
        return rows

    # -- joins ---------------------------------------------------------

    def _join(
        self, context: ExecContext, rows: list[Row], pattern: CompiledPattern
    ) -> list[Row]:
        if len(rows) >= HASH_JOIN_MIN_ROWS and pattern.variables:
            scan = context.graph.count_ids(
                pattern.s_id, pattern.p_id, pattern.o_id
            )
            if scan <= len(rows) * HASH_JOIN_MAX_SCAN_FACTOR:
                if context.stats is not None:
                    context.stats.increment("sparql.joins.hash")
                return pattern.extend_hash(rows, context.graph)
        if context.stats is not None:
            context.stats.increment("sparql.joins.index_loop")
        return pattern.extend(rows, context.graph)

    # -- prefix memo ---------------------------------------------------

    def _resume_from_memo(
        self,
        context: ExecContext,
        memo: PrefixMemo,
        keys: list[tuple],
        rows: list[Row],
        plan: "CompiledQuery",
    ) -> tuple[list[Row], int]:
        """Resume from the longest memoized prefix, if any."""
        stats = context.stats
        for length in range(len(self.patterns) - 1, 0, -1):
            hit = memo.get(tuple(keys[:length]))
            if hit is None:
                continue
            if stats is not None:
                stats.increment("sparql.prefix_memo.hits")
            names, stored = hit
            slots = [plan.slot_by_name[name] for name in names]
            width = plan.width
            resumed: list[Row] = []
            for stored_row in stored:
                row = [UNBOUND] * width
                for slot, value in zip(slots, stored_row):
                    row[slot] = value
                resumed.append(tuple(row))
            return resumed, length
        if stats is not None:
            stats.increment("sparql.prefix_memo.misses")
        return rows, 0

    def _store_prefix(
        self,
        memo: PrefixMemo,
        key: tuple,
        rows: list[Row],
        plan: "CompiledQuery",
        prefix_keys: tuple,
    ) -> None:
        """Store a prefix's rows projected to its own bound variables."""
        bound_names = sorted(
            {
                name
                for pattern_key in prefix_keys
                for position in pattern_key
                if isinstance(position, tuple)
                for name in (position[1],)
            }
        )
        slots = [plan.slot_by_name[name] for name in bound_names]
        projected = tuple(
            tuple(row[slot] for slot in slots) for row in rows
        )
        memo.put(key, tuple(bound_names), projected)


class CompiledOptional:
    """OPTIONAL: left join against a compiled subgroup."""

    __slots__ = ("group",)

    def __init__(self, group: "CompiledGroup") -> None:
        self.group = group

    def run(
        self, context: ExecContext, rows: list[Row], plan: "CompiledQuery"
    ) -> list[Row]:
        out: list[Row] = []
        for row in rows:
            extended = self.group.run(context, [row], plan)
            if extended:
                out.extend(extended)
            else:
                out.append(row)
        return out


class CompiledUnion:
    """UNION: concatenation of both branches over the same input."""

    __slots__ = ("left", "right")

    def __init__(self, left: "CompiledGroup", right: "CompiledGroup") -> None:
        self.left = left
        self.right = right

    def run(
        self, context: ExecContext, rows: list[Row], plan: "CompiledQuery"
    ) -> list[Row]:
        return self.left.run(context, rows, plan) + self.right.run(
            context, rows, plan
        )


class CompiledGroup:
    """A ``{ ... }`` group: ordered children, filters applied at the end."""

    __slots__ = ("children", "filters")

    def __init__(
        self,
        children: list[Any],
        filters: list[Valuation],
    ) -> None:
        self.children = children
        self.filters = filters

    def run(
        self, context: ExecContext, rows: list[Row], plan: "CompiledQuery"
    ) -> list[Row]:
        for child in self.children:
            rows = child.run(context, rows, plan)
            if not rows:
                break
        if rows and self.filters:
            passing: list[Row] = []
            for row in rows:
                for constraint in self.filters:
                    try:
                        if not effective_boolean(constraint(row)):
                            break
                    except SparqlTypeError:
                        # Per SPARQL semantics a type error fails the filter.
                        break
                else:
                    passing.append(row)
            rows = passing
        return rows


# ---------------------------------------------------------------------------
# Whole-query plans
# ---------------------------------------------------------------------------


class CompiledQuery:
    """An executable id-space plan for one SELECT or ASK query.

    Compiled once per structurally distinct AST (the engine caches plans on
    the frozen AST's own hash) and executed many times; the only per-
    generation work is re-resolving constants that were absent from the
    dictionary when the plan was built.
    """

    def __init__(self, query: SelectQuery | AskQuery, graph: Graph) -> None:
        self.query = query
        self.is_ask = isinstance(query, AskQuery)
        self.slot_of: dict[Variable, int] = {}
        self._collect_variables(query.where)
        self.width = len(self.slot_of)
        self.slot_names = {
            slot: variable.name for variable, slot in self.slot_of.items()
        }
        self.slot_by_name = {
            variable.name: slot for variable, slot in self.slot_of.items()
        }
        # ORDER BY tie-break order (docs/performance.md, "Deterministic
        # ordering"): rows with equal sort keys fall back to their id
        # tuple over all slots, taken in variable-name order so every
        # engine — term-space, row, columnar — agrees on the total order.
        self.tiebreak_slots = tuple(
            slot for __, slot in sorted(self.slot_by_name.items())
        )
        self._patterns: list[CompiledPattern] = []
        self._id_equality_cells: list[Any] = []
        decode = graph.decode_id
        self.root = self._compile_group(
            query.where, graph, decode, set(), top_level=True
        )
        if not self.is_ask:
            self._compile_select_tail(query, decode)
        self._resolved_generation = -1
        self._resolve(graph)

    # -- compilation ---------------------------------------------------

    def _collect_variables(self, group: Group) -> None:
        for child in group.patterns:
            if isinstance(child, BGP):
                for triple in child.triples:
                    for variable in sorted(
                        triple.variables(), key=lambda v: v.name
                    ):
                        if variable not in self.slot_of:
                            self.slot_of[variable] = len(self.slot_of)
            elif isinstance(child, OptionalPattern):
                self._collect_variables(child.pattern)
            elif isinstance(child, UnionPattern):
                self._collect_variables(child.left)
                self._collect_variables(child.right)
            elif isinstance(child, Group):
                self._collect_variables(child)

    def _compile_group(
        self,
        group: Group,
        graph: Graph,
        decode: Callable[[int], Term],
        bound: set[Variable],
        top_level: bool = False,
    ) -> CompiledGroup:
        """Compile one group, tracking which variables are *definitely*
        bound at each child (intersection semantics: OPTIONAL guarantees
        nothing, UNION guarantees the branches' intersection)."""
        children: list[Any] = []
        filters: list[Valuation] = []
        first = True
        for child in group.patterns:
            if isinstance(child, BGP):
                compiled = self._compile_bgp(
                    child, graph, bound, memo_eligible=top_level and first
                )
                children.append(compiled)
                for triple in child.triples:
                    bound |= triple.variables()
            elif isinstance(child, Filter):
                filters.append(
                    self._register_filter(child.expression, decode)
                )
                continue  # filters don't advance the child sequence
            elif isinstance(child, OptionalPattern):
                children.append(
                    CompiledOptional(
                        self._compile_group(
                            child.pattern, graph, decode, set(bound)
                        )
                    )
                )
            elif isinstance(child, UnionPattern):
                left_bound = set(bound)
                right_bound = set(bound)
                compiled_union = CompiledUnion(
                    self._compile_group(child.left, graph, decode, left_bound),
                    self._compile_group(child.right, graph, decode, right_bound),
                )
                children.append(compiled_union)
                bound |= left_bound & right_bound
            elif isinstance(child, Group):
                children.append(
                    self._compile_group(child, graph, decode, bound)
                )
            else:
                raise SparqlError(
                    f"unknown pattern node {type(child).__name__}"
                )
            first = False
        return CompiledGroup(children, filters)

    def _register_filter(
        self, expression: Expression, decode: Callable[[int], Term]
    ) -> Valuation:
        slots_used: set[int] = set()
        closure = compile_expression(
            expression, self.slot_of, decode, self._id_equality_cells,
            slots_used,
        )
        # The columnar engine memoizes closure results per distinct value
        # combination of exactly these slots (see repro.sparql.columnar).
        closure.slots_used = frozenset(slots_used)  # type: ignore[attr-defined]
        return closure

    def _compile_bgp(
        self,
        bgp: BGP,
        graph: Graph,
        bound: set[Variable],
        memo_eligible: bool,
    ) -> CompiledBGP:
        ordered = _plan_patterns(graph, list(bgp.triples), set(bound))
        compiled = [CompiledPattern(triple, self.slot_of) for triple in ordered]
        self._patterns.extend(compiled)
        return CompiledBGP(compiled, memo_eligible)

    def _compile_select_tail(
        self, query: SelectQuery, decode: Callable[[int], Term]
    ) -> None:
        self._order_keys: list[tuple[Valuation, bool]] = [
            (
                self._register_filter(condition.expression, decode),
                condition.descending,
            )
            for condition in query.order_by
        ]
        self._decode = decode

    # -- constants -----------------------------------------------------

    def _resolve(self, graph: Graph) -> None:
        generation = graph.generation
        if generation == self._resolved_generation:
            return
        for pattern in self._patterns:
            pattern.resolve(graph)
        for closure in self._id_equality_cells:
            box = closure.constant_box
            if box[0] == UNBOUND:
                box[0] = graph.lookup_id(closure.constant)
        self._resolved_generation = generation

    # -- execution -----------------------------------------------------

    def execute(self, context: ExecContext) -> SelectResult | AskResult:
        self._resolve(context.graph)
        seed: list[Row] = [(UNBOUND,) * self.width]
        rows = self.root.run(context, seed, self)
        if self.is_ask:
            return AskResult(bool(rows))
        return self._shape_select(rows, context)

    def _shape_select(
        self, rows: list[Row], context: ExecContext
    ) -> SelectResult:
        query = self.query
        assert isinstance(query, SelectQuery)
        decode = self._decode

        if query.is_aggregate:
            return self._aggregate(query, rows)

        if query.select_all:
            seen_slots = set()
            for row in rows:
                for slot, value in enumerate(row):
                    if value != UNBOUND:
                        seen_slots.add(slot)
            variables = tuple(
                sorted(
                    (
                        variable
                        for variable, slot in self.slot_of.items()
                        if slot in seen_slots
                    ),
                    key=lambda v: v.name,
                )
            )
        else:
            variables = tuple(
                p for p in query.projection if isinstance(p, Variable)
            )

        if query.order_by:
            tiebreak_slots = self.tiebreak_slots

            def sort_key(row: Row):
                keys = []
                for closure, descending in self._order_keys:
                    try:
                        value = closure(row)
                    except SparqlTypeError:
                        value = None
                    kind, within = order_key(value)
                    if descending:
                        keys.append((-kind, invert_order(within)))
                    else:
                        keys.append((kind, within))
                # Deterministic tie-break: id order over all slots, never
                # inverted — every engine sorts ties identically.
                keys.append(tuple(row[slot] for slot in tiebreak_slots))
                return tuple(keys)

            rows = sorted(rows, key=sort_key)

        slots = [self.slot_of.get(variable) for variable in variables]
        id_rows: list[tuple[int, ...]] = [
            tuple(
                UNBOUND if slot is None else row[slot] for slot in slots
            )
            for row in rows
        ]
        if query.distinct:
            id_rows = list(dict.fromkeys(id_rows))
        if query.offset:
            id_rows = id_rows[query.offset:]
        if query.limit is not None:
            id_rows = id_rows[: query.limit]

        term_rows = tuple(
            tuple(
                None if term_id == UNBOUND else decode(term_id)
                for term_id in id_row
            )
            for id_row in id_rows
        )
        return SelectResult(variables=variables, rows=term_rows)

    def _aggregate(self, query: SelectQuery, rows: list[Row]) -> SelectResult:
        if len(query.projection) != 1:
            raise SparqlError("COUNT cannot be mixed with other projections")
        aggregate = query.projection[0]
        assert isinstance(aggregate, CountAggregate)
        if aggregate.variable is None:
            # Row tuples are slot-aligned, so tuple equality is exactly
            # bound-variable-set equality — COUNT(DISTINCT *) needs no
            # decode.
            count = len(set(rows)) if aggregate.distinct else len(rows)
        else:
            slot = self.slot_of.get(aggregate.variable)
            if slot is None:
                count = 0
            else:
                values = [row[slot] for row in rows if row[slot] != UNBOUND]
                count = len(set(values)) if aggregate.distinct else len(values)
        out_variable = aggregate.alias or Variable("count")
        row = (Literal(str(count), datatype=XSD_INTEGER),)
        return SelectResult(variables=(out_variable,), rows=(row,))


# ---------------------------------------------------------------------------
# Join-order planning (id-level twin of repro.sparql.planner)
# ---------------------------------------------------------------------------


def _plan_patterns(
    graph: Graph, triples: list[Triple], bound: set[Variable]
) -> list[Triple]:
    """Greedy selectivity ordering, identical heuristics to
    :func:`repro.sparql.planner.plan_bgp` but fed by compile-time
    ``definitely_bound`` sets (intersection semantics) instead of a sample
    of the runtime solution stream."""
    remaining = list(triples)
    ordered: list[Triple] = []
    while remaining:
        best_index = 0
        best_key: tuple[int, float] | None = None
        for index, pattern in enumerate(remaining):
            variables = pattern.variables()
            disconnected = int(bool(ordered) and bound.isdisjoint(variables))
            estimate = float(
                graph.count(
                    None if isinstance(pattern.subject, Variable) else pattern.subject,
                    None if isinstance(pattern.predicate, Variable) else pattern.predicate,
                    None if isinstance(pattern.object, Variable) else pattern.object,
                )
            )
            for slot in (pattern.subject, pattern.predicate, pattern.object):
                if isinstance(slot, Variable) and slot in bound:
                    estimate /= BOUND_VARIABLE_FACTOR
            key = (disconnected, estimate)
            if best_key is None or key < best_key:
                best_key = key
                best_index = index
        chosen = remaining.pop(best_index)
        ordered.append(chosen)
        bound |= chosen.variables()
    return ordered


def compile_query(
    query: SelectQuery | AskQuery, graph: Graph, columnar: bool = False
) -> CompiledQuery:
    """Compile a parsed query into an executable id-space plan.

    With ``columnar=True`` the plan executes on whole id-column batches
    (:class:`repro.sparql.columnar.ColumnarQuery`) instead of row tuples;
    the compiled pattern tree, slot layout and expression closures are
    identical either way, only the operator implementations differ.
    """
    if not isinstance(query, (SelectQuery, AskQuery)):
        raise SparqlError(f"unsupported query type {type(query).__name__}")
    if columnar:
        from repro.sparql.columnar import ColumnarQuery
        return ColumnarQuery(query, graph)
    return CompiledQuery(query, graph)


# ---------------------------------------------------------------------------
# Star decomposition (plan slicing for the scatter layer)
# ---------------------------------------------------------------------------


def _expression_names(expression) -> set[str]:
    """Names of every variable mentioned anywhere in ``expression``."""
    if isinstance(expression, TermExpr):
        return (
            {expression.term.name}
            if isinstance(expression.term, Variable)
            else set()
        )
    if isinstance(expression, (Comparison, BooleanOp)):
        return _expression_names(expression.left) | _expression_names(
            expression.right
        )
    if isinstance(expression, Not):
        return _expression_names(expression.operand)
    if isinstance(expression, FunctionCall):
        out: set[str] = set()
        for argument in expression.arguments:
            out |= _expression_names(argument)
        return out
    return set()


class StarSlice:
    """One subject star of a decomposed conjunctive query.

    ``query`` is a ``SELECT *`` subquery holding exactly this star's
    triples plus any pushed-down filters (no ordering, no slicing) —
    picklable and structurally hashable, so shard workers compile and
    cache it like any other plan.  ``names`` is the name-sorted set of
    variables the star binds.
    """

    __slots__ = ("variable", "query", "names")

    def __init__(
        self,
        variable: Variable,
        triples: tuple[Triple, ...],
        filters: tuple = (),
    ) -> None:
        self.variable = variable
        self.names = tuple(
            sorted(
                {
                    term.name
                    for triple in triples
                    for term in triple.variables()
                }
            )
        )
        children: tuple = (BGP(triples),) + tuple(
            Filter(expression) for expression in filters
        )
        self.query = SelectQuery(projection=(), where=Group(children))


class TwoStarSlice:
    """A flat conjunctive query decomposed into two subject stars.

    ``join_names`` is the (nonempty, name-sorted) set of variable names
    the stars share.  Because BGP solutions over a set-graph are *sets* of
    assignments, the full query's solution multiset is exactly the natural
    join of the two stars' solution sets on these variables — which is
    what makes per-shard semi-join evaluation in
    :mod:`repro.sparql.scatter` equivalent to single-process execution.
    """

    __slots__ = ("stars", "join_names")

    def __init__(self, stars: tuple[StarSlice, StarSlice]) -> None:
        self.stars = stars
        self.join_names = tuple(
            sorted(set(stars[0].names) & set(stars[1].names))
        )


def slice_two_star(query: SelectQuery | AskQuery) -> TwoStarSlice | None:
    """Decompose a flat conjunctive query into two connected subject stars.

    Returns ``None`` whenever the query is not exactly this shape: the
    WHERE group must contain only BGP/Filter children, every triple's
    subject must be a variable, the subjects must form exactly two
    distinct variables, and the two stars must share at least one
    variable (a disconnected pair would be a cartesian product — cheaper
    to leave to the single-process engine than to broadcast).

    A filter whose variables are all bound by one star is *pushed down*
    into that star's subquery, so shards prune before shipping — sound
    because a flat BGP star always binds every one of its variables, so
    the filter sees identical bindings per solution whether it runs
    per-shard or after the join.  The scatter coordinator still
    re-applies the full plan's compiled filter closures after the join
    (cross-star filters run only there; pushed filters pass their
    surviving rows again), which reproduces group-level FILTER semantics
    exactly.
    """
    triples: list[Triple] = []
    expressions: list = []
    for child in query.where.patterns:
        if isinstance(child, BGP):
            triples.extend(child.triples)
        elif isinstance(child, Filter):
            expressions.append(child.expression)
        else:
            return None
    if len(triples) < 2:
        return None
    subjects: list[Variable] = []
    for triple in triples:
        if not isinstance(triple.subject, Variable):
            return None
        if triple.subject not in subjects:
            subjects.append(triple.subject)
    if len(subjects) != 2:
        return None
    star_triples = [
        tuple(t for t in triples if t.subject == subject)
        for subject in subjects
    ]
    star_names = [
        {term.name for t in group for term in t.variables()}
        for group in star_triples
    ]
    star_filters: list[list] = [[], []]
    for expression in expressions:
        names = _expression_names(expression)
        for index in (0, 1):
            if names and names <= star_names[index]:
                star_filters[index].append(expression)
                break
    stars = tuple(
        StarSlice(subject, star_triples[index], tuple(star_filters[index]))
        for index, subject in enumerate(subjects)
    )
    sliced = TwoStarSlice(stars)  # type: ignore[arg-type]
    if not sliced.join_names:
        return None
    return sliced

"""Scatter-gather execution of compiled plans over KB segment shards.

The :class:`~repro.kb.shard.SegmentedBackend` partitions triples twice —
by a hash of the **subject id** (primary) and, in directories that carry
the secondary partition, by a hash of the **object id** — which gives
three classes of queries a parallel decomposition with no cross-shard
deduplication:

* **subject-star** — every triple pattern's subject is the same variable.
  A solution binds that variable to one id whose triples all live in one
  subject shard, so per-shard execution partitions the global solution
  set exactly.
* **object-star** — every pattern's object is the same variable; the
  mirror argument holds over the object-hash partition.  This is the
  POS-order routing path: predicate-bound patterns (``?s dbo:p ?v``
  stars on ``?v``) partition by object hash instead of falling back to
  the merged scan.
* **two-star** — a flat conjunction whose subjects form exactly two
  variables with at least one shared variable.  Executed by **semi-join
  shipping**: the more selective star (by minimum pattern count) runs per
  shard first; the distinct id-tuples of its join variables are then
  *shipped* to the other star's shards — routed to the one owning shard
  when the second star's subject is itself a join variable, broadcast as
  a per-shard semi-join filter otherwise.  The coordinator hash-joins the
  two row sets, re-applies the full plan's compiled FILTER closures
  (group-level SPARQL semantics: filters see the whole conjunction), and
  shapes the result.  Because BGP solutions over a set-graph are sets of
  assignments, the natural join of the two stars' solution sets *is* the
  full query's solution multiset — no multiplicity correction needed.

:class:`ScatterGatherExecutor` implements the decomposition:

1. **Scatter** — the query AST (frozen, picklable dataclasses) fans out to
   one task per shard.  Each task compiles the plan against a single-shard
   Graph view; the dictionary is global, so constants and slot layouts
   resolve identically in every process.  Tasks run either inline
   (``processes=0`` — deterministic, no pool) or on a lazily created
   ``multiprocessing`` pool (spawn-safe: workers re-open the segment
   directory in an initializer instead of inheriting mapped state),
   returning their id rows packed as ``array('q')`` bytes.
2. **Gather** — the coordinator concatenates the per-shard row batches in
   shard order and hands them to the coordinator plan's own result
   shaping (:meth:`CompiledQuery._shape_select`).  ORDER BY runs there
   with the engine's deterministic id-tuple tie-break, so ordered answers
   are **byte-identical** to single-process execution regardless of
   gather interleaving; unordered answers are multiset-identical (the
   documented engine contract).  DISTINCT, OFFSET/LIMIT and aggregates
   also shape at the coordinator, over the complete solution set.

Per-shard results are cached in generation-stamped
:class:`~repro.kb.shard.ShardResultCache` instances (one per shard, on
the coordinator for inline mode and inside each worker for pool mode).
The stamp combines the backend's content fingerprint with the executor's
reload generation: :meth:`ScatterGatherExecutor.rebind` — called on every
hot KB reload — bumps the generation, so one reload empties every shard
cache at once (``kb.shard_cache.*`` counters).

Queries outside the partitionable fragment (OPTIONAL, UNION, nested
groups, three or more stars, disconnected stars, unordered LIMIT/OFFSET,
ORDER BY keys that are not plain terms) return ``None`` from
:meth:`ScatterGatherExecutor.maybe_execute` and fall back to ordinary
execution over the full backend view.  Counters land in the
``sparql.scatter.*`` family (docs/observability.md).
"""

from __future__ import annotations

import hashlib
import os
import threading
from array import array
from itertools import chain

from repro.kb.shard import (
    SegmentedBackend,
    ShardResultCache,
    shard_of_subject,
)
from repro.perf.stats import PerfStats
from repro.rdf.terms import Variable
from repro.sparql.ast import BGP, Filter, TermExpr
from repro.sparql.compiler import (
    UNBOUND,
    CompiledQuery,
    ExecContext,
    TwoStarSlice,
    slice_two_star,
)
from repro.sparql.errors import SparqlTypeError
from repro.sparql.functions import effective_boolean
from repro.sparql.results import AskResult, SelectResult


def _slice_deterministic(query) -> bool:
    """Whether LIMIT/OFFSET slicing commutes with scatter-gather.

    An unordered LIMIT/OFFSET keeps "whichever rows the operators
    produced first" — a production order scatter-gather cannot reproduce.
    With ORDER BY the full solution set sorts under the deterministic
    tie-break before slicing, so the slice is identical on both paths —
    **provided every ORDER BY key is a plain term** (variable or
    constant).  A computed key (function call, comparison, negation) can
    collapse many rows into one rank whose tie source is not the id
    tuple the scatter merge reproduces — e.g. a key expression that
    type-errors on some rows ranks them all as "unorderable" — so sliced
    queries with non-term keys are *rejected* here rather than
    mis-routed; the engine executes them single-process.
    """
    if getattr(query, "limit", None) is None and not getattr(
        query, "offset", 0
    ):
        return True
    order = getattr(query, "order_by", ())
    if not order:
        return False
    return all(
        isinstance(condition.expression, TermExpr) for condition in order
    )


def _flat_triples(query):
    """The triples of a flat BGP/FILTER conjunction, or ``None`` when the
    WHERE clause contains any other pattern kind."""
    triples = []
    for child in query.where.patterns:
        if isinstance(child, BGP):
            triples.extend(child.triples)
        elif not isinstance(child, Filter):
            return None
    return triples


def partition_variable(query) -> Variable | None:
    """The shared subject variable, when ``query`` is shard-partitionable.

    Partitionable means: the WHERE clause is a flat conjunction of BGPs
    and FILTERs (no OPTIONAL / UNION / nested group) with **at least one**
    triple pattern, every pattern's subject is the same
    :class:`Variable`, and any LIMIT/OFFSET is pinned by a plain-term
    ORDER BY (:func:`_slice_deterministic`).  Each solution then binds
    that variable to one subject id, whose triples all live in one shard —
    so per-shard execution partitions the global solution set exactly.
    Returns ``None`` for everything else.
    """
    if not _slice_deterministic(query):
        return None
    triples = _flat_triples(query)
    if not triples:
        return None
    subject = triples[0].subject
    if not isinstance(subject, Variable):
        return None
    for triple in triples:
        if triple.subject != subject:
            return None
    return subject


def object_partition_variable(query) -> Variable | None:
    """The shared object variable, when ``query`` is an object-star.

    The mirror of :func:`partition_variable` over the secondary
    object-hash partition: every triple pattern's object must be the same
    variable.  A solution binds it to one object id, and all the
    solution's triples carry that id as object — so they live in exactly
    one object shard, and per-shard fan-out partitions the solution set.
    """
    if not _slice_deterministic(query):
        return None
    triples = _flat_triples(query)
    if not triples:
        return None
    obj = triples[0].object
    if not isinstance(obj, Variable):
        return None
    for triple in triples:
        if triple.object != obj:
            return None
    return obj


def partition_spec(query, object_shards: bool = True):
    """Classify ``query`` for scatter execution.

    Returns ``("subject", Variable)``, ``("object", Variable)``,
    ``("twostar", TwoStarSlice)``, or ``None`` (not partitionable).
    Subject stars win over object stars (the primary partition needs no
    secondary files); ``object_shards=False`` disables the object-star
    class (directories written without the secondary partition).
    """
    variable = partition_variable(query)
    if variable is not None:
        return ("subject", variable)
    if object_shards:
        variable = object_partition_variable(query)
        if variable is not None:
            return ("object", variable)
    if not _slice_deterministic(query):
        return None
    sliced = slice_two_star(query)
    if sliced is not None:
        return ("twostar", sliced)
    return None


def _keys_token(keys) -> object:
    """A compact, hashable cache-key component for a broadcast key set
    (the raw frozenset would bloat every cache entry's key)."""
    if keys is None:
        return None
    names, keyset = keys
    digest = hashlib.blake2b(digest_size=16)
    packed = array("q", chain.from_iterable(sorted(keyset)))
    digest.update(packed.tobytes())
    return (names, len(keyset), digest.digest())


# ---------------------------------------------------------------------------
# Worker side (runs in pool processes; also reused by inline mode)
# ---------------------------------------------------------------------------

#: Per-process caches: segment backends keyed by directory, row plans
#: keyed by (directory, frozen query AST), per-shard result caches keyed
#: by (directory, partition kind, shard index).  Workers live for the
#: pool's lifetime, so repeated queries against the same segments compile
#: once and hit warm shard caches.
_WORKER_BACKENDS: dict[str, SegmentedBackend] = {}
_WORKER_PLANS: dict = {}
_WORKER_CACHES: dict = {}

#: Result-cache capacity inside pool workers (entries per shard).
WORKER_CACHE_SIZE = 256


def _worker_backend(path: str) -> SegmentedBackend:
    backend = _WORKER_BACKENDS.get(path)
    if backend is None:
        backend = SegmentedBackend(path).open()
        _WORKER_BACKENDS[path] = backend
    return backend


def _worker_init(path: str) -> None:
    """Pool initializer: open the segment directory in this worker.

    Explicit initialization makes the pool **spawn-safe**: a spawned
    worker starts from a fresh interpreter with empty module globals, so
    nothing may rely on fork-inherited mapped state.  (Under fork this is
    merely a warm-up; the lazy :func:`_worker_backend` path stays as the
    fallback for directories seen after pool creation.)
    """
    _worker_backend(path)


def _worker_plan(path: str, backend: SegmentedBackend, query) -> CompiledQuery:
    key = (path, query)
    plan = _WORKER_PLANS.get(key)
    if plan is None:
        # Compiled against the full view so pattern-selectivity planning
        # sees global counts; constants are global ids, valid per shard.
        plan = CompiledQuery(query, backend.graph_view())
        _WORKER_PLANS[key] = plan
    return plan


def _execute_shard(
    plan: CompiledQuery,
    view,
    seeds=None,
    keys=None,
    stats: PerfStats | None = None,
) -> list:
    """Execute a compiled plan's operator tree over one shard view.

    ``seeds`` — optional ``(variable_name, ids)`` pair: the run starts
    from one seed row per id with that variable pre-bound (semi-join
    shipping routed the ids to this shard).  ``keys`` — optional
    ``(names, keyset)`` broadcast filter: only rows whose id tuple over
    the named slots is in the set survive (per-shard semi-join).
    Returns raw slot-aligned id rows, no result shaping.
    """
    plan._resolve(view)
    context = ExecContext(view, stats, None)
    if seeds is None:
        seed_rows = [(UNBOUND,) * plan.width]
    else:
        name, ids = seeds
        slot = plan.slot_by_name[name]
        base = [UNBOUND] * plan.width
        seed_rows = []
        for value in ids:
            row = list(base)
            row[slot] = value
            seed_rows.append(tuple(row))
        if not seed_rows:
            return []
    rows = plan.root.run(context, seed_rows, plan)
    if keys is not None and rows:
        names, keyset = keys
        slots = [plan.slot_by_name[name] for name in names]
        rows = [
            row
            for row in rows
            if tuple(row[slot] for slot in slots) in keyset
        ]
    return rows


def _shard_task(
    path: str,
    kind: str,
    shard_index: int,
    query,
    seeds=None,
    keys=None,
    token=None,
) -> tuple[int, int, bytes, bool]:
    """Run ``query`` against one shard; return packed id rows.

    The return value is ``(shard_index, row_count, bytes, cache_hit)``
    where the bytes are the rows' ids flattened into an ``array('q')`` —
    compact to pickle back across the process boundary, and cast straight
    back to int64 columns on the coordinator.  ``token`` (when not
    ``None``) stamps this worker's per-shard result cache; a stale stamp
    — the coordinator bumps it on every hot KB reload — empties the
    cache before lookup.
    """
    backend = _worker_backend(path)
    cache = None
    cache_key = None
    if token is not None:
        cache = _WORKER_CACHES.get((path, kind, shard_index))
        if cache is None:
            cache = ShardResultCache(WORKER_CACHE_SIZE)
            _WORKER_CACHES[(path, kind, shard_index)] = cache
        cache_key = (query, seeds, _keys_token(keys))
        cached = cache.get(token, cache_key)
        if cached is not None:
            count, blob = cached
            return shard_index, count, blob, True
    plan = _worker_plan(path, backend, query)
    rows = _execute_shard(
        plan, backend.partition_view(kind, shard_index), seeds, keys
    )
    packed = array("q", chain.from_iterable(rows))
    blob = packed.tobytes()
    if cache is not None:
        cache.put(token, cache_key, (len(rows), blob))
    return shard_index, len(rows), blob, False


def _unpack_rows(count: int, blob: bytes, width: int) -> list:
    if not count:
        return []
    ids = memoryview(blob).cast("q")
    return [
        tuple(ids[start : start + width])
        for start in range(0, count * width, width)
    ]


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------


class ScatterGatherExecutor:
    """Fans compiled plans out across a segmented backend's shards.

    Install on an engine with
    :meth:`repro.sparql.SparqlEngine.install_scatter`; the engine then
    offers every plan via :meth:`maybe_execute`, which either answers it
    (partitionable queries) or returns ``None`` (engine falls back to
    ordinary full-view execution).

    ``processes=0`` runs shard tasks inline in the calling process —
    fully deterministic, no pool, the mode the differential tests pin
    down.  ``processes=N`` (or ``None`` for a CPU-bounded default) runs
    them on a lazily created ``multiprocessing`` pool; each worker maps
    the segment files itself, so peak RSS per process stays bounded by
    its own shard working set rather than the whole KB.  ``start_method``
    picks the pool's multiprocessing start method (default: ``fork``
    where available, the platform default elsewhere — workers are
    spawn-safe either way).

    One executor may be shared by many engines and serving threads (the
    :class:`repro.serve.ResilientServer` workers share one pool over one
    mapped segment directory): pool creation and cache bookkeeping are
    lock-protected, and :meth:`rebind` atomically points the executor at
    a reloaded backend while invalidating every per-shard result cache
    via the generation stamp.
    """

    def __init__(
        self,
        backend: SegmentedBackend,
        processes: int | None = None,
        stats: PerfStats | None = None,
        start_method: str | None = None,
        shard_cache_size: int = 256,
    ) -> None:
        self._backend = backend
        self._processes = processes
        self._stats = stats
        self._start_method = start_method
        self._shard_cache_size = shard_cache_size
        self._pool = None
        self._plans: dict = {}
        self._caches: dict = {}
        self._generation = 0
        self._lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------

    @property
    def backend(self) -> SegmentedBackend:
        return self._backend

    @property
    def generation(self) -> int:
        """Cache epoch: bumped by every :meth:`rebind` /
        :meth:`invalidate_caches`."""
        return self._generation

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()

    def __enter__(self) -> "ScatterGatherExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def rebind(self, backend: SegmentedBackend) -> None:
        """Point the executor at a (possibly reloaded) backend.

        Called by the serving layer on every hot KB reload.  Bumps the
        cache generation so every per-shard result cache — coordinator
        and pool-worker alike — is empty for the next query, and drops
        the pool when the segment directory actually changed (workers
        would otherwise keep serving the old mapped files).
        """
        with self._lock:
            changed = (
                backend.path != self._backend.path
                or backend.fingerprint() != self._backend.fingerprint()
            )
            self._backend = backend
            self._generation += 1
            self._plans.clear()
            pool = None
            if changed:
                pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()
        if self._stats is not None:
            self._stats.increment("kb.shard_cache.invalidations")

    def invalidate_caches(self) -> None:
        """Empty every per-shard result cache (generation bump)."""
        with self._lock:
            self._generation += 1
        if self._stats is not None:
            self._stats.increment("kb.shard_cache.invalidations")

    def _effective_processes(self) -> int:
        if self._processes is not None:
            return self._processes
        return min(4, os.cpu_count() or 1)

    def _ensure_pool(self):
        with self._lock:
            if self._pool is None:
                import multiprocessing

                method = self._start_method
                if method is None:
                    methods = multiprocessing.get_all_start_methods()
                    method = "fork" if "fork" in methods else None
                context = multiprocessing.get_context(method)
                size = min(
                    self._effective_processes(), self._backend.shard_count
                )
                self._pool = context.Pool(
                    processes=max(1, size),
                    initializer=_worker_init,
                    initargs=(self._backend.path,),
                )
            return self._pool

    def _run_tasks(self, tasks) -> list:
        """Run shard tasks on the pool; never leak a broken pool.

        A raising task (e.g. a corrupt shard surfacing its
        ``SegmentIntegrityError`` in a worker) tears the pool down before
        the exception propagates, so the next query — or the next soak
        iteration — starts from a clean pool instead of a poisoned one.
        """
        pool = self._ensure_pool()
        try:
            return pool.starmap(_shard_task, tasks)
        except BaseException:
            self.close()
            raise

    # -- caches --------------------------------------------------------

    def _cache_token(self):
        if not self._shard_cache_size:
            return None
        return (
            self._backend.fingerprint()["content"],
            self._generation,
        )

    def _cache_for(self, kind: str, index: int) -> ShardResultCache:
        with self._lock:
            cache = self._caches.get((kind, index))
            if cache is None:
                cache = ShardResultCache(self._shard_cache_size)
                self._caches[(kind, index)] = cache
            return cache

    # -- execution -----------------------------------------------------

    def maybe_execute(
        self, plan: CompiledQuery, context: ExecContext
    ) -> SelectResult | AskResult | None:
        """Answer ``plan`` by scatter-gather, or ``None`` if it is not
        shard-partitionable (the caller then executes it normally)."""
        stats = context.stats if context.stats is not None else self._stats
        graph_backend = getattr(context.graph, "backend", None)
        if graph_backend is not None and graph_backend is not self._backend:
            # The engine is serving a different KB than this executor's
            # pool (e.g. a hot reload raced the install): answering from
            # the pool would read the wrong segments.  Fall back.
            if stats is not None:
                stats.increment("sparql.scatter.foreign_graph_fallbacks")
            return None
        spec = partition_spec(
            plan.query, object_shards=self._backend.object_shard_count > 0
        )
        if spec is None:
            if stats is not None:
                stats.increment("sparql.scatter.fallback_queries")
            return None
        kind, payload = spec
        if stats is not None:
            stats.increment("sparql.scatter.queries")
        if kind == "twostar":
            return self._execute_semijoin(plan, payload, context, stats)
        if stats is not None and kind == "object":
            stats.increment("sparql.scatter.object_queries")
        rows = self._gather_rows(
            plan.query, kind, stats=stats, ask=plan.is_ask, plan=plan
        )
        if stats is not None:
            stats.increment("sparql.scatter.rows_gathered", len(rows))
        if plan.is_ask:
            return AskResult(bool(rows))
        # Global shaping on the coordinator: ORDER BY sorts the complete
        # row set under the engine's deterministic id-tuple tie-break
        # (byte-identical to single-process), DISTINCT/OFFSET/LIMIT and
        # aggregates see every shard's solutions.
        plan._resolve(context.graph)
        return plan._shape_select(rows, context)

    # -- star gathering ------------------------------------------------

    def _gather_rows(
        self,
        query,
        kind: str,
        seeds_by_shard: dict | None = None,
        keys=None,
        stats: PerfStats | None = None,
        ask: bool = False,
        plan: CompiledQuery | None = None,
    ) -> list:
        """Rows of ``query`` over every shard of one partition (or just
        the seeded shards), in shard order, slot-aligned to the local row
        plan for ``query``."""
        if seeds_by_shard is not None:
            indices = sorted(seeds_by_shard)
        else:
            indices = list(range(self._backend.partition_count(kind)))
        if stats is not None:
            stats.increment("sparql.scatter.shards_scanned", len(indices))
        if not indices:
            return []
        local = (
            plan
            if plan is not None and type(plan) is CompiledQuery
            else self._local_plan(query)
        )
        if self._effective_processes() == 0:
            return self._gather_inline(
                local, query, kind, indices, seeds_by_shard, keys, stats, ask
            )
        return self._gather_pool(
            local, query, kind, indices, seeds_by_shard, keys, stats
        )

    def _gather_inline(
        self, local, query, kind, indices, seeds_by_shard, keys, stats, ask
    ) -> list:
        token = self._cache_token()
        rows: list = []
        for index in indices:
            seeds = (
                None if seeds_by_shard is None else seeds_by_shard[index]
            )
            if token is not None:
                cache = self._cache_for(kind, index)
                cache_key = (query, seeds, _keys_token(keys))
                cached = cache.get(token, cache_key)
                if cached is not None:
                    if stats is not None:
                        stats.increment("kb.shard_cache.hits")
                    rows.extend(cached)
                    if ask and rows:
                        break
                    continue
                if stats is not None:
                    stats.increment("kb.shard_cache.misses")
            shard_rows = _execute_shard(
                local,
                self._backend.partition_view(kind, index),
                seeds,
                keys,
                stats,
            )
            if token is not None:
                cache.put(token, cache_key, tuple(shard_rows))
            rows.extend(shard_rows)
            if ask and rows:
                break  # ASK short-circuits at the first witness
        return rows

    def _gather_pool(
        self, local, query, kind, indices, seeds_by_shard, keys, stats
    ) -> list:
        token = self._cache_token()
        path = self._backend.path
        tasks = [
            (
                path,
                kind,
                index,
                query,
                None if seeds_by_shard is None else seeds_by_shard[index],
                keys,
                token,
            )
            for index in indices
        ]
        results = self._run_tasks(tasks)
        results.sort(key=lambda item: item[0])  # deterministic shard order
        width = local.width
        rows: list = []
        for __, count, blob, cache_hit in results:
            if stats is not None:
                stats.increment(
                    "kb.shard_cache.hits"
                    if cache_hit
                    else "kb.shard_cache.misses"
                )
            rows.extend(_unpack_rows(count, blob, width))
        return rows

    def _local_plan(self, query) -> CompiledQuery:
        """The coordinator's row plan for a query AST.

        The engine's plan may be columnar; per-shard execution reuses the
        row operator tree (identical slot layout — both derive it from
        the same frozen AST), compiled once per distinct query.  Star
        subqueries built by :func:`slice_two_star` compile here too.
        """
        with self._lock:
            cached = self._plans.get(query)
        if cached is None:
            cached = CompiledQuery(query, self._backend.graph_view())
            with self._lock:
                self._plans[query] = cached
        return cached

    # -- semi-join shipping --------------------------------------------

    def _estimate_star(self, star, graph) -> int:
        """Selectivity estimate: the smallest pattern cardinality in the
        star (coordinator-side counts over the full backend view)."""
        estimate = None
        for triple in star.query.where.patterns[0].triples:
            s = p = o = None
            if not isinstance(triple.subject, Variable):
                s = graph.lookup_id(triple.subject)
            if not isinstance(triple.predicate, Variable):
                p = graph.lookup_id(triple.predicate)
            if not isinstance(triple.object, Variable):
                o = graph.lookup_id(triple.object)
            count = graph.count_ids(s, p, o)
            if estimate is None or count < estimate:
                estimate = count
        return 0 if estimate is None else estimate

    def _execute_semijoin(
        self,
        plan: CompiledQuery,
        sliced: TwoStarSlice,
        context: ExecContext,
        stats: PerfStats | None,
    ) -> SelectResult | AskResult:
        if stats is not None:
            stats.increment("sparql.scatter.semijoin.queries")
        graph = context.graph
        estimates = [
            self._estimate_star(star, graph) for star in sliced.stars
        ]
        lead = 0 if estimates[0] <= estimates[1] else 1
        star_lead = sliced.stars[lead]
        star_trail = sliced.stars[1 - lead]
        join_names = sliced.join_names

        plan_lead = self._local_plan(star_lead.query)
        plan_trail = self._local_plan(star_trail.query)

        # Phase 1: the more selective star, full fan-out.
        rows_lead = self._gather_rows(
            star_lead.query, "subject", stats=stats, plan=plan_lead
        )
        slots_lead = [plan_lead.slot_by_name[n] for n in join_names]
        keyset = {
            tuple(row[slot] for slot in slots_lead) for row in rows_lead
        }
        if stats is not None:
            stats.increment("sparql.scatter.rows_gathered", len(rows_lead))
            stats.increment(
                "sparql.scatter.semijoin.keys_shipped", len(keyset)
            )

        # Phase 2: ship the distinct join keys to the trailing star.
        if not keyset:
            rows_trail: list = []
        elif star_trail.variable.name in join_names:
            # The trailing star's subject is itself a join variable:
            # route each candidate subject id to its one owning shard and
            # seed the star run with it — only shards that can contribute
            # execute, and each scans only its shipped ids.
            position = join_names.index(star_trail.variable.name)
            subject_ids = sorted({key[position] for key in keyset})
            shard_count = self._backend.shard_count
            by_shard: dict[int, list] = {}
            for value in subject_ids:
                by_shard.setdefault(
                    shard_of_subject(value, shard_count), []
                ).append(value)
            seeds_by_shard = {
                index: (star_trail.variable.name, tuple(ids))
                for index, ids in by_shard.items()
            }
            if stats is not None:
                stats.increment(
                    "sparql.scatter.semijoin.shipped_ids", len(subject_ids)
                )
            rows_trail = self._gather_rows(
                star_trail.query,
                "subject",
                seeds_by_shard=seeds_by_shard,
                stats=stats,
                plan=plan_trail,
            )
        else:
            # The join variables are all non-subject positions of the
            # trailing star: broadcast the key set to every shard as a
            # per-shard semi-join filter.
            if stats is not None:
                stats.increment("sparql.scatter.semijoin.broadcasts")
            rows_trail = self._gather_rows(
                star_trail.query,
                "subject",
                keys=(join_names, frozenset(keyset)),
                stats=stats,
                plan=plan_trail,
            )
        if stats is not None:
            stats.increment("sparql.scatter.rows_gathered", len(rows_trail))

        # Phase 3: coordinator hash join into the full plan's slot layout.
        plan._resolve(graph)
        slots_trail = [plan_trail.slot_by_name[n] for n in join_names]
        buckets: dict = {}
        for row in rows_trail:
            buckets.setdefault(
                tuple(row[slot] for slot in slots_trail), []
            ).append(row)
        map_lead = [
            (plan.slot_by_name[name], plan_lead.slot_by_name[name])
            for name in star_lead.names
        ]
        map_trail = [
            (plan.slot_by_name[name], plan_trail.slot_by_name[name])
            for name in star_trail.names
        ]
        width = plan.width
        joined: list = []
        for row_lead in rows_lead:
            key = tuple(row_lead[slot] for slot in slots_lead)
            matches = buckets.get(key)
            if not matches:
                continue
            for row_trail in matches:
                merged = [UNBOUND] * width
                for target, source in map_lead:
                    merged[target] = row_lead[source]
                for target, source in map_trail:
                    merged[target] = row_trail[source]
                joined.append(tuple(merged))

        # Phase 4: the full plan's FILTER closures, group-level semantics
        # (every filter sees the whole conjunction's bindings — exactly
        # what CompiledGroup.run applies after its children).
        if plan.root.filters and joined:
            passing = []
            for row in joined:
                for constraint in plan.root.filters:
                    try:
                        if not effective_boolean(constraint(row)):
                            break
                    except SparqlTypeError:
                        break
                else:
                    passing.append(row)
            joined = passing
        if stats is not None:
            stats.increment(
                "sparql.scatter.semijoin.rows_joined", len(joined)
            )
        if plan.is_ask:
            return AskResult(bool(joined))
        return plan._shape_select(joined, context)

"""Scatter-gather execution of compiled plans over KB segment shards.

The :class:`~repro.kb.shard.SegmentedBackend` partitions triples by a hash
of the **subject id**, which gives one class of queries an embarrassingly
parallel decomposition: a *subject-star* query — every triple pattern's
subject is the same variable, combined only with FILTERs — binds each
solution's subject to exactly one id, and all triples of that id live in
one shard.  Running the same compiled plan independently per shard
therefore produces the exact global solution set, partitioned, with no
cross-shard joins and no deduplication.

:class:`ScatterGatherExecutor` implements that decomposition:

1. **Scatter** — the query AST (frozen, picklable dataclasses) fans out to
   one task per shard.  Each task compiles the plan against a single-shard
   Graph view (:meth:`~repro.kb.shard.SegmentedBackend.shard_view`); the
   dictionary is global, so constants and slot layouts resolve identically
   in every process.  Tasks run either inline (``processes=0`` —
   deterministic, no pool) or on a lazily created ``multiprocessing``
   pool, returning their id rows packed as ``array('q')`` bytes.
2. **Gather** — the coordinator concatenates the per-shard row batches in
   shard order and hands them to the coordinator plan's own result
   shaping (:meth:`CompiledQuery._shape_select`).  ORDER BY runs there
   with the engine's deterministic id-tuple tie-break, so ordered answers
   are **byte-identical** to single-process execution regardless of
   gather interleaving; unordered answers are multiset-identical (the
   documented engine contract).  DISTINCT, OFFSET/LIMIT and aggregates
   also shape at the coordinator, over the complete solution set.

Queries outside the partitionable class (OPTIONAL, UNION, nested groups,
constant or differing subjects) return ``None`` from
:meth:`ScatterGatherExecutor.maybe_execute` and fall back to ordinary
execution over the full backend view.  Counters land in the
``sparql.scatter.*`` family (docs/observability.md).
"""

from __future__ import annotations

import os
from array import array
from itertools import chain

from repro.kb.shard import SegmentedBackend
from repro.perf.stats import PerfStats
from repro.rdf.terms import Variable
from repro.sparql.ast import BGP, Filter
from repro.sparql.compiler import UNBOUND, CompiledQuery, ExecContext
from repro.sparql.results import AskResult, SelectResult


def _slice_deterministic(query) -> bool:
    """Whether LIMIT/OFFSET slicing commutes with scatter-gather.

    An unordered LIMIT/OFFSET keeps "whichever rows the operators
    produced first" — a production order scatter-gather cannot reproduce.
    With ORDER BY the full solution set sorts under the deterministic
    tie-break before slicing, so the slice is identical on both paths.
    """
    if getattr(query, "limit", None) is None and not getattr(
        query, "offset", 0
    ):
        return True
    return bool(getattr(query, "order_by", ()))


def partition_variable(query) -> Variable | None:
    """The shared subject variable, when ``query`` is shard-partitionable.

    Partitionable means: the WHERE clause is a flat conjunction of BGPs
    and FILTERs (no OPTIONAL / UNION / nested group) with **at least one**
    triple pattern, every pattern's subject is the same
    :class:`Variable`, and any LIMIT/OFFSET is pinned by an ORDER BY
    (:func:`_slice_deterministic`).  Each solution then binds that
    variable to one subject id, whose triples all live in one shard — so
    per-shard execution partitions the global solution set exactly.
    Returns ``None`` for everything else.
    """
    if not _slice_deterministic(query):
        return None
    subject: Variable | None = None
    for child in query.where.patterns:
        if isinstance(child, Filter):
            continue
        if not isinstance(child, BGP):
            return None
        for triple in child.triples:
            if not isinstance(triple.subject, Variable):
                return None
            if subject is None:
                subject = triple.subject
            elif triple.subject != subject:
                return None
    return subject


# ---------------------------------------------------------------------------
# Worker side (runs in pool processes; also reused by inline mode)
# ---------------------------------------------------------------------------

#: Per-process caches: segment backends keyed by directory, row plans
#: keyed by (directory, frozen query AST).  Workers live for the pool's
#: lifetime, so repeated queries against the same segments compile once.
_WORKER_BACKENDS: dict[str, SegmentedBackend] = {}
_WORKER_PLANS: dict = {}


def _worker_backend(path: str) -> SegmentedBackend:
    backend = _WORKER_BACKENDS.get(path)
    if backend is None:
        backend = SegmentedBackend(path).open()
        _WORKER_BACKENDS[path] = backend
    return backend


def _shard_task(path: str, shard_index: int, query) -> tuple[int, int, bytes]:
    """Run ``query`` against one shard; return packed id rows.

    The return value is ``(shard_index, row_count, bytes)`` where the
    bytes are the rows' ids flattened into an ``array('q')`` — compact to
    pickle back across the process boundary, and cast straight back to
    int64 columns on the coordinator.
    """
    backend = _worker_backend(path)
    key = (path, query)
    plan = _WORKER_PLANS.get(key)
    if plan is None:
        # Compiled against the full view so pattern-selectivity planning
        # sees global counts; constants are global ids, valid per shard.
        plan = CompiledQuery(query, backend.graph_view())
        _WORKER_PLANS[key] = plan
    rows = _run_rows(plan, backend.shard_view(shard_index), stats=None)
    packed = array("q", chain.from_iterable(rows))
    return shard_index, len(rows), packed.tobytes()


def _run_rows(plan: CompiledQuery, graph, stats: PerfStats | None) -> list:
    """Execute a compiled plan's operator tree over ``graph``, returning
    raw slot-aligned id rows (no result shaping)."""
    plan._resolve(graph)
    context = ExecContext(graph, stats, None)
    seed = [(UNBOUND,) * plan.width]
    return plan.root.run(context, seed, plan)


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------


class ScatterGatherExecutor:
    """Fans compiled plans out across a segmented backend's shards.

    Install on an engine with
    :meth:`repro.sparql.SparqlEngine.install_scatter`; the engine then
    offers every plan via :meth:`maybe_execute`, which either answers it
    (partitionable queries) or returns ``None`` (engine falls back to
    ordinary full-view execution).

    ``processes=0`` runs shard tasks inline in the calling process —
    fully deterministic, no pool, the mode the differential tests pin
    down.  ``processes=N`` (or ``None`` for a CPU-bounded default) runs
    them on a lazily created ``multiprocessing`` pool; each worker maps
    the segment files itself, so peak RSS per process stays bounded by
    its own shard working set rather than the whole KB.
    """

    def __init__(
        self,
        backend: SegmentedBackend,
        processes: int | None = None,
        stats: PerfStats | None = None,
    ) -> None:
        self._backend = backend
        self._processes = processes
        self._stats = stats
        self._pool = None
        self._plans: dict = {}

    # -- lifecycle -----------------------------------------------------

    @property
    def backend(self) -> SegmentedBackend:
        return self._backend

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ScatterGatherExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _effective_processes(self) -> int:
        if self._processes is not None:
            return self._processes
        return min(4, os.cpu_count() or 1)

    def _ensure_pool(self):
        if self._pool is None:
            import multiprocessing

            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-fork platforms
                context = multiprocessing.get_context()
            size = min(
                self._effective_processes(), self._backend.shard_count
            )
            self._pool = context.Pool(processes=max(1, size))
        return self._pool

    # -- execution -----------------------------------------------------

    def maybe_execute(
        self, plan: CompiledQuery, context: ExecContext
    ) -> SelectResult | AskResult | None:
        """Answer ``plan`` by scatter-gather, or ``None`` if it is not
        shard-partitionable (the caller then executes it normally)."""
        stats = context.stats if context.stats is not None else self._stats
        if partition_variable(plan.query) is None:
            if stats is not None:
                stats.increment("sparql.scatter.fallback_queries")
            return None
        if stats is not None:
            stats.increment("sparql.scatter.queries")
        rows = self._gather(plan, stats)
        if stats is not None:
            stats.increment("sparql.scatter.rows_gathered", len(rows))
        if plan.is_ask:
            return AskResult(bool(rows))
        # Global shaping on the coordinator: ORDER BY sorts the complete
        # row set under the engine's deterministic id-tuple tie-break
        # (byte-identical to single-process), DISTINCT/OFFSET/LIMIT and
        # aggregates see every shard's solutions.
        plan._resolve(context.graph)
        return plan._shape_select(rows, context)

    def _gather(self, plan: CompiledQuery, stats: PerfStats | None) -> list:
        backend = self._backend
        shard_count = backend.shard_count
        if stats is not None:
            stats.increment("sparql.scatter.shards_scanned", shard_count)
        if self._effective_processes() == 0:
            return self._gather_inline(plan, shard_count, stats)
        return self._gather_pool(plan, shard_count)

    def _gather_inline(
        self, plan: CompiledQuery, shard_count: int, stats: PerfStats | None
    ) -> list:
        local = self._local_plan(plan)
        rows: list = []
        for index in range(shard_count):
            rows.extend(
                _run_rows(local, self._backend.shard_view(index), stats)
            )
            if plan.is_ask and rows:
                break  # ASK short-circuits at the first witness
        return rows

    def _local_plan(self, plan: CompiledQuery) -> CompiledQuery:
        """A row plan for inline per-shard runs.

        The engine's plan may be columnar; per-shard execution reuses the
        row operator tree (identical slot layout — both derive it from
        the same frozen AST), compiled once per distinct query.
        """
        if type(plan) is CompiledQuery:
            return plan
        cached = self._plans.get(plan.query)
        if cached is None:
            cached = CompiledQuery(plan.query, self._backend.graph_view())
            self._plans[plan.query] = cached
        return cached

    def _gather_pool(self, plan: CompiledQuery, shard_count: int) -> list:
        pool = self._ensure_pool()
        results = pool.starmap(
            _shard_task,
            [
                (self._backend.path, index, plan.query)
                for index in range(shard_count)
            ],
        )
        results.sort(key=lambda item: item[0])  # deterministic shard order
        width = plan.width
        rows: list = []
        for __, count, blob in results:
            if not count:
                continue
            ids = memoryview(blob).cast("q")
            rows.extend(
                tuple(ids[start : start + width])
                for start in range(0, count * width, width)
            )
        return rows

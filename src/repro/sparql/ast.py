"""Abstract syntax tree for the SPARQL subset.

The parser produces these nodes; the planner consumes them.  Expression
nodes form their own small hierarchy evaluated by
:mod:`repro.sparql.functions`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.rdf.terms import Term, Triple, Variable

# ---------------------------------------------------------------------------
# Expressions (FILTER / ORDER BY operands)
# ---------------------------------------------------------------------------


class Expression:
    """Marker base class for filter expressions."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class TermExpr(Expression):
    """A constant term or variable used as an expression."""

    term: Term


@dataclass(frozen=True, slots=True)
class Comparison(Expression):
    """A binary comparison: ``=``, ``!=``, ``<``, ``<=``, ``>``, ``>=``."""

    operator: str
    left: Expression
    right: Expression


@dataclass(frozen=True, slots=True)
class BooleanOp(Expression):
    """``&&`` or ``||`` over two sub-expressions."""

    operator: str
    left: Expression
    right: Expression


@dataclass(frozen=True, slots=True)
class Not(Expression):
    """Logical negation ``!expr``."""

    operand: Expression


@dataclass(frozen=True, slots=True)
class FunctionCall(Expression):
    """A builtin call such as ``REGEX(?x, "pattern", "i")``."""

    name: str  # upper-cased builtin name
    arguments: tuple[Expression, ...]


# ---------------------------------------------------------------------------
# Graph patterns
# ---------------------------------------------------------------------------


class GraphPattern:
    """Marker base class for WHERE-clause pattern nodes."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class BGP(GraphPattern):
    """A basic graph pattern: a conjunction of triple patterns."""

    triples: tuple[Triple, ...]

    def variables(self) -> set[Variable]:
        out: set[Variable] = set()
        for triple in self.triples:
            out |= triple.variables()
        return out


@dataclass(frozen=True, slots=True)
class Filter(GraphPattern):
    """A FILTER constraint scoped to its group."""

    expression: Expression


@dataclass(frozen=True, slots=True)
class OptionalPattern(GraphPattern):
    """An OPTIONAL group (left join)."""

    pattern: "Group"


@dataclass(frozen=True, slots=True)
class UnionPattern(GraphPattern):
    """A UNION of two groups."""

    left: "Group"
    right: "Group"


@dataclass(frozen=True, slots=True)
class Group(GraphPattern):
    """A ``{ ... }`` group: ordered child patterns."""

    patterns: tuple[GraphPattern, ...]

    def triples(self) -> tuple[Triple, ...]:
        """All top-level BGP triples in this group (not descending into
        OPTIONAL/UNION)."""
        collected: list[Triple] = []
        for child in self.patterns:
            if isinstance(child, BGP):
                collected.extend(child.triples)
        return tuple(collected)


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class OrderCondition:
    """One ORDER BY key."""

    expression: Expression
    descending: bool = False


@dataclass(frozen=True, slots=True)
class CountAggregate:
    """``COUNT(?v)``, ``COUNT(DISTINCT ?v)`` or ``COUNT(*)`` projection."""

    variable: Variable | None  # None means COUNT(*)
    distinct: bool = False
    alias: Variable | None = None


Projection = Union[Variable, CountAggregate]


@dataclass(frozen=True, slots=True)
class SelectQuery:
    """A parsed SELECT query."""

    projection: tuple[Projection, ...]  # empty tuple means SELECT *
    where: Group
    distinct: bool = False
    order_by: tuple[OrderCondition, ...] = ()
    limit: int | None = None
    offset: int = 0

    @property
    def is_aggregate(self) -> bool:
        return any(isinstance(p, CountAggregate) for p in self.projection)

    @property
    def select_all(self) -> bool:
        return not self.projection


@dataclass(frozen=True, slots=True)
class AskQuery:
    """A parsed ASK query."""

    where: Group

"""Join-order planning for basic graph patterns.

The executor evaluates a BGP as a left-deep nested-index-loop join.  The
order of the triple patterns dominates the cost, so the planner orders them
greedily by estimated cardinality:

* a slot holding a constant restricts via the store's exact statistics
  (:meth:`repro.rdf.Graph.count`);
* a slot holding an already-bound variable will be a constant *at run time*,
  which we credit with a fixed reduction factor per bound slot;
* unbound slots do not restrict.

This mirrors the classic variable-counting heuristics used by RDF stores
when full characteristic-set statistics are unavailable.
"""

from __future__ import annotations

from repro.rdf.graph import Graph
from repro.rdf.terms import Term, Triple, Variable

#: Cardinality reduction credited to a variable that will be bound by the
#: time the pattern executes.  The exact value only has to break ties
#: sensibly; 20 keeps bound-join patterns ahead of open scans.
BOUND_VARIABLE_FACTOR = 20.0


def estimate_cardinality(
    graph: Graph, pattern: Triple, bound: set[Variable]
) -> float:
    """Estimated number of matches for ``pattern`` given bound variables."""

    def constant(slot: Term) -> Term | None:
        return None if isinstance(slot, Variable) else slot

    base = graph.count(
        constant(pattern.subject),
        constant(pattern.predicate),
        constant(pattern.object),
    )
    estimate = float(base)
    for slot in (pattern.subject, pattern.predicate, pattern.object):
        if isinstance(slot, Variable) and slot in bound:
            estimate /= BOUND_VARIABLE_FACTOR
    return estimate


def plan_bgp(
    graph: Graph, triples: tuple[Triple, ...], initially_bound: set[Variable]
) -> list[Triple]:
    """Order BGP triples for execution.

    Greedy: repeatedly pick the remaining pattern with the lowest estimated
    cardinality under the current bound-variable set, preferring patterns
    connected to already-bound variables to avoid Cartesian products.
    """
    remaining = list(triples)
    bound = set(initially_bound)
    ordered: list[Triple] = []
    while remaining:
        best_index = 0
        best_key: tuple[int, float] | None = None
        for index, pattern in enumerate(remaining):
            variables = pattern.variables()
            # 0 when connected to the join so far (or the first pattern),
            # 1 when it would form a Cartesian product.
            disconnected = int(bool(ordered) and bound.isdisjoint(variables))
            key = (disconnected, estimate_cardinality(graph, pattern, bound))
            if best_key is None or key < best_key:
                best_key = key
                best_index = index
        chosen = remaining.pop(best_index)
        ordered.append(chosen)
        bound |= chosen.variables()
    return ordered

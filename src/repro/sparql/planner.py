"""Join-order planning for basic graph patterns.

The executor evaluates a BGP as a left-deep nested-index-loop join.  The
order of the triple patterns dominates the cost, so the planner orders them
greedily by estimated cardinality:

* a slot holding a constant restricts via the store's exact statistics
  (:meth:`repro.rdf.Graph.count`);
* a slot holding an already-bound variable will be a constant *at run time*,
  which we credit with a fixed reduction factor per bound slot;
* unbound slots do not restrict.

This mirrors the classic variable-counting heuristics used by RDF stores
when full characteristic-set statistics are unavailable.
"""

from __future__ import annotations

from repro.rdf.graph import Graph
from repro.rdf.terms import Term, Triple, Variable

#: Cardinality reduction credited to a variable that will be bound by the
#: time the pattern executes.  The exact value only has to break ties
#: sensibly; 20 keeps bound-join patterns ahead of open scans.
BOUND_VARIABLE_FACTOR = 20.0

#: Minimum rows on *both* join sides before the columnar engine upgrades a
#: hash join to a vectorized sort-merge join (single-key joins only; the
#: sort + binary-search plan amortises over large runs of duplicate keys).
MERGE_JOIN_MIN_ROWS = 64

#: Minimum rows on both sides before a composite-key join is partitioned
#: by key radix and hash-joined per partition.  Partitioning only pays for
#: itself when the monolithic hash table would be large enough that
#: per-partition tables improve locality and bound probe-chain length.
RADIX_JOIN_MIN_ROWS = 4096

#: Number of radix partitions (must be a power of two; the partition of a
#: key is ``hash(key) & (RADIX_JOIN_PARTITIONS - 1)``).
RADIX_JOIN_PARTITIONS = 64


def choose_batch_join(
    probe_rows: int,
    scan_rows: int,
    key_count: int,
    vectorized: bool,
) -> str:
    """Pick the columnar join operator for one pattern.

    Called only after the existing hash-join admission test
    (``HASH_JOIN_MIN_ROWS`` / ``HASH_JOIN_MAX_SCAN_FACTOR`` in
    :mod:`repro.sparql.compiler`) has already decided that a batch join
    beats per-row index lookups; this function only chooses *which* batch
    join:

    * ``merge`` — single join key, both sides large, and a vectorized
      backend (numpy) is available: sort the scan side once, then binary-
      search every probe key in one shot;
    * ``radix`` — both sides exceed :data:`RADIX_JOIN_MIN_ROWS`: partition
      both sides by key radix and hash-join partition-wise;
    * ``hash`` — everything else: one scan hashed, one probe per row.
    """
    smaller = min(probe_rows, scan_rows)
    if vectorized and key_count == 1 and smaller >= MERGE_JOIN_MIN_ROWS:
        return "merge"
    if smaller >= RADIX_JOIN_MIN_ROWS:
        return "radix"
    return "hash"


def estimate_cardinality(
    graph: Graph, pattern: Triple, bound: set[Variable]
) -> float:
    """Estimated number of matches for ``pattern`` given bound variables."""

    def constant(slot: Term) -> Term | None:
        return None if isinstance(slot, Variable) else slot

    base = graph.count(
        constant(pattern.subject),
        constant(pattern.predicate),
        constant(pattern.object),
    )
    estimate = float(base)
    for slot in (pattern.subject, pattern.predicate, pattern.object):
        if isinstance(slot, Variable) and slot in bound:
            estimate /= BOUND_VARIABLE_FACTOR
    return estimate


def plan_bgp(
    graph: Graph, triples: tuple[Triple, ...], initially_bound: set[Variable]
) -> list[Triple]:
    """Order BGP triples for execution.

    Greedy: repeatedly pick the remaining pattern with the lowest estimated
    cardinality under the current bound-variable set, preferring patterns
    connected to already-bound variables to avoid Cartesian products.
    """
    remaining = list(triples)
    bound = set(initially_bound)
    ordered: list[Triple] = []
    while remaining:
        best_index = 0
        best_key: tuple[int, float] | None = None
        for index, pattern in enumerate(remaining):
            variables = pattern.variables()
            # 0 when connected to the join so far (or the first pattern),
            # 1 when it would form a Cartesian product.
            disconnected = int(bool(ordered) and bound.isdisjoint(variables))
            key = (disconnected, estimate_cardinality(graph, pattern, bound))
            if best_key is None or key < best_key:
                best_key = key
                best_index = index
        chosen = remaining.pop(best_index)
        ordered.append(chosen)
        bound |= chosen.variables()
    return ordered

"""Query result containers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Sequence

from repro.rdf.datatypes import literal_value
from repro.rdf.terms import Literal, Term, Variable


@dataclass(frozen=True)
class SelectResult:
    """Result of a SELECT query: ordered variables and binding rows.

    Rows are tuples aligned with :attr:`variables`; a missing binding (from
    OPTIONAL) is ``None``.
    """

    variables: tuple[Variable, ...]
    rows: tuple[tuple[Term | None, ...], ...]

    def __len__(self) -> int:
        return len(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def __iter__(self) -> Iterator[dict[Variable, Term]]:
        return iter(self.bindings())

    def bindings(self) -> list[dict[Variable, Term]]:
        """Rows as variable->term dicts (missing bindings omitted)."""
        return [
            {
                variable: value
                for variable, value in zip(self.variables, row)
                if value is not None
            }
            for row in self.rows
        ]

    def column(self, variable: Variable | str) -> list[Term | None]:
        """All values of one projected variable, in row order."""
        if isinstance(variable, str):
            variable = Variable(variable)
        try:
            index = self.variables.index(variable)
        except ValueError:
            raise KeyError(f"?{variable.name} is not projected") from None
        return [row[index] for row in self.rows]

    def values(self, variable: Variable | str) -> list[Any]:
        """Like :meth:`column` but converts literals to native values."""
        return [
            literal_value(value) if isinstance(value, Literal) else value
            for value in self.column(variable)
            if value is not None
        ]

    def scalar(self) -> Any:
        """The single value of a one-row, one-column result (e.g. COUNT)."""
        if len(self.rows) != 1 or len(self.variables) != 1:
            raise ValueError(
                f"scalar() needs a 1x1 result, got {len(self.rows)} row(s) x "
                f"{len(self.variables)} column(s)"
            )
        value = self.rows[0][0]
        return literal_value(value) if isinstance(value, Literal) else value

    def to_dict(self) -> dict[str, Any]:
        """SPARQL-results-JSON-shaped dict (useful for debugging dumps)."""
        return {
            "head": {"vars": [v.name for v in self.variables]},
            "results": {
                "bindings": [
                    {
                        variable.name: _term_json(value)
                        for variable, value in zip(self.variables, row)
                        if value is not None
                    }
                    for row in self.rows
                ]
            },
        }


@dataclass(frozen=True)
class AskResult:
    """Result of an ASK query."""

    value: bool

    def __bool__(self) -> bool:
        return self.value

    def to_dict(self) -> dict[str, Any]:
        return {"head": {}, "boolean": self.value}


def _term_json(term: Term) -> dict[str, str]:
    from repro.rdf.terms import BNode, IRI

    if isinstance(term, IRI):
        return {"type": "uri", "value": term.value}
    if isinstance(term, BNode):
        return {"type": "bnode", "value": term.label}
    if isinstance(term, Literal):
        out: dict[str, str] = {"type": "literal", "value": term.lexical}
        if term.datatype:
            out["datatype"] = term.datatype
        if term.language:
            out["xml:lang"] = term.language
        return out
    raise TypeError(f"cannot serialise {type(term).__name__}")

"""Tokeniser for the SPARQL subset.

A single compiled regex with named alternatives scans the query text; the
parser consumes the resulting token stream.  Keywords are recognised
case-insensitively, as the grammar requires.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

from repro.sparql.errors import SparqlParseError

KEYWORDS = {
    "SELECT",
    "ASK",
    "WHERE",
    "FILTER",
    "OPTIONAL",
    "UNION",
    "DISTINCT",
    "REDUCED",
    "ORDER",
    "BY",
    "ASC",
    "DESC",
    "LIMIT",
    "OFFSET",
    "PREFIX",
    "BASE",
    "COUNT",
    "AS",
    "A",  # the rdf:type shorthand; handled specially
    "TRUE",
    "FALSE",
}

#: Builtin filter functions also lex as keywords so the parser can
#: distinguish them from (disallowed) bare names.
BUILTINS = {
    "REGEX",
    "STR",
    "LANG",
    "DATATYPE",
    "BOUND",
    "CONTAINS",
    "STRSTARTS",
    "STRENDS",
    "LCASE",
    "UCASE",
    "ISIRI",
    "ISURI",
    "ISLITERAL",
    "ISBLANK",
    "LANGMATCHES",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<COMMENT>\#[^\n]*)
  | (?P<IRIREF><[^<>"{}|^`\\\s]*>)
  | (?P<VAR>[?$][A-Za-z_][A-Za-z_0-9]*)
  | (?P<STRING>"(?:[^"\\]|\\.)*"|'(?:[^'\\]|\\.)*')
  | (?P<LANGTAG>@[A-Za-z]+(?:-[A-Za-z0-9]+)*)
  | (?P<DOUBLE_CARET>\^\^)
  | (?P<NUMBER>[+-]?(?:\d+\.\d+|\.\d+|\d+)(?:[eE][+-]?\d+)?)
  | (?P<PNAME>[A-Za-z_][A-Za-z_0-9-]*)?:(?P<PNLOCAL>[A-Za-z_0-9](?:[A-Za-z_0-9.-]*[A-Za-z_0-9-])?)?
  | (?P<NAME>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<OP>&&|\|\||<=|>=|!=|[=<>!*/+\-(){},.;])
    """,
    re.VERBOSE,
)

_ESCAPES = {
    "\\n": "\n",
    "\\r": "\r",
    "\\t": "\t",
    '\\"': '"',
    "\\'": "'",
    "\\\\": "\\",
}


@dataclass(frozen=True, slots=True)
class Token:
    """A lexical token with its source offset (for error messages)."""

    kind: str
    value: str
    position: int


def _unescape_string(raw: str) -> str:
    body = raw[1:-1]
    out: list[str] = []
    i = 0
    while i < len(body):
        pair = body[i:i + 2]
        if pair in _ESCAPES:
            out.append(_ESCAPES[pair])
            i += 2
        elif pair == "\\u":
            out.append(chr(int(body[i + 2:i + 6], 16)))
            i += 6
        else:
            out.append(body[i])
            i += 1
    return "".join(out)


def tokenize(text: str) -> Iterator[Token]:
    """Tokenise SPARQL text, yielding :class:`Token` objects.

    Raises :class:`SparqlParseError` on unrecognised input.
    """
    position = 0
    length = len(text)
    while position < length:
        match = _TOKEN_RE.match(text, position)
        if match is None or match.end() == position:
            raise SparqlParseError(
                f"unexpected character {text[position]!r}", position
            )
        kind = match.lastgroup
        value = match.group()
        if kind in ("WS", "COMMENT"):
            position = match.end()
            continue
        if kind == "PNLOCAL" or (kind == "PNAME" and ":" in value) or (
            kind is None and ":" in value
        ):
            # The PNAME alternative matched (prefix ':' local); normalise.
            kind = "PNAME"
        elif kind == "NAME":
            upper = value.upper()
            if upper in KEYWORDS or upper in BUILTINS:
                kind = "KEYWORD"
                value = upper
            else:
                raise SparqlParseError(f"unexpected bare name {value!r}", position)
        elif kind == "STRING":
            value = _unescape_string(value)
        elif kind == "LANGTAG":
            value = value[1:]
        elif kind == "VAR":
            value = value[1:]
        yield Token(kind, value, position)
        position = match.end()
    yield Token("EOF", "", length)

"""A SPARQL-subset query engine over :class:`repro.rdf.Graph`.

Implements the fragment the question-answering pipeline generates — and a
useful margin beyond it:

* ``SELECT`` (with ``DISTINCT``, projection, ``*``), ``ASK``
* ``COUNT`` / ``COUNT(DISTINCT ...)`` aggregates
* basic graph patterns, ``FILTER``, ``OPTIONAL``, ``UNION``
* ``ORDER BY`` (``ASC``/``DESC``), ``LIMIT``, ``OFFSET``
* ``PREFIX`` declarations plus the built-in prefix table
* filter builtins: comparisons, ``&&``/``||``/``!``, ``REGEX``, ``STR``,
  ``LANG``, ``DATATYPE``, ``BOUND``, ``CONTAINS``, ``STRSTARTS``,
  ``LCASE``/``UCASE``, ``isIRI``/``isLiteral``

Queries are parsed to an AST (:mod:`repro.sparql.ast`), compiled to algebra
with a selectivity-ordered join plan (:mod:`repro.sparql.planner`) and
evaluated by an iterator executor (:mod:`repro.sparql.executor`).
"""

from repro.sparql.ast import (
    AskQuery,
    SelectQuery,
)
from repro.sparql.columnar import ColumnarQuery, ColumnBatch
from repro.sparql.engine import SparqlEngine, ask, select
from repro.sparql.errors import SparqlError, SparqlParseError, SparqlTypeError
from repro.sparql.parser import parse_query
from repro.sparql.results import AskResult, SelectResult
from repro.sparql.scatter import (
    ScatterGatherExecutor,
    object_partition_variable,
    partition_spec,
    partition_variable,
)
from repro.sparql.serializer import serialize_query

__all__ = [
    "SparqlEngine",
    "ColumnarQuery",
    "ColumnBatch",
    "ScatterGatherExecutor",
    "partition_variable",
    "object_partition_variable",
    "partition_spec",
    "parse_query",
    "serialize_query",
    "select",
    "ask",
    "SelectQuery",
    "AskQuery",
    "SelectResult",
    "AskResult",
    "SparqlError",
    "SparqlParseError",
    "SparqlTypeError",
]

"""Assembling a queryable knowledge base from ontology + records.

The builder materialises, exactly once and from a single source of truth:

* the RDF graph (type closure, labels, facts, page links, schema triples),
* the surface-form index for entity spotting,
* the class-label index for ``rdf:type`` object mapping (section 2.2.4),
* the page-link graph for disambiguation (section 2.2.5).
"""

from __future__ import annotations

import warnings
from typing import Iterable, Sequence

from repro.kb.backend import InMemoryBackend, KBBackend
from repro.kb.labels import SurfaceFormIndex, normalize_surface
from repro.kb.ontology import Ontology, PropertyDef, PropertyKind
from repro.kb.pagelinks import PageLinkGraph, WIKI_PAGE_LINK
from repro.kb.records import EntityRecord
from repro.rdf.datatypes import make_literal
from repro.rdf.graph import Graph
from repro.rdf.namespaces import DBO, DBR, RDF, RDFS
from repro.rdf.terms import IRI, Literal, Triple
from repro.sparql.engine import SparqlEngine


class DatasetError(ValueError):
    """Raised when records are inconsistent with the ontology or each other."""


class KnowledgeBase:
    """A mini-DBpedia: storage backend + engine + lookup indexes.

    Build one with :meth:`from_records` (validating, in-memory) or
    :meth:`from_backend` (wrap an existing storage backend — e.g. an
    on-disk :class:`~repro.kb.shard.SegmentedBackend` — rebuilding the
    derived lookup indexes from its triples).

    All triple access goes through :attr:`backend`
    (:class:`~repro.kb.backend.KBBackend`); :attr:`graph` is the
    backend's Graph-compatible view, which for the default
    :class:`~repro.kb.backend.InMemoryBackend` is a plain mutable
    :class:`~repro.rdf.Graph`.
    """

    def __init__(
        self,
        ontology: Ontology,
        graph: Graph | None = None,
        backend: KBBackend | None = None,
    ) -> None:
        self.ontology = ontology
        if graph is not None:
            if backend is not None:
                raise ValueError("pass either graph= or backend=, not both")
            warnings.warn(
                "KnowledgeBase(graph=...) is deprecated; wrap the graph in "
                "repro.kb.InMemoryBackend and pass backend=, or use "
                "KnowledgeBase.from_backend()",
                DeprecationWarning,
                stacklevel=2,
            )
            backend = InMemoryBackend(graph)
        self.backend = backend if backend is not None else InMemoryBackend()
        self.backend.open()
        self.graph = self.backend.graph_view()
        self.engine = SparqlEngine(self.graph)
        self.surface_index = SurfaceFormIndex()
        self.page_links = PageLinkGraph()
        self._class_labels: dict[str, list[str]] = {}
        self._entity_types: dict[IRI, set[str]] = {}
        self._index_class_labels()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_records(
        cls, ontology: Ontology, records: Sequence[EntityRecord]
    ) -> "KnowledgeBase":
        """Validate and materialise a record set into a knowledge base."""
        kb = cls(ontology)
        kb.add_records(records)
        return kb

    @classmethod
    def from_backend(
        cls, ontology: Ontology, backend: KBBackend
    ) -> "KnowledgeBase":
        """Serve an existing storage backend as a knowledge base.

        The derived lookup indexes — surface forms, the entity-type
        closure, the page-link graph — are rebuilt from the stored
        triples: ``rdfs:label`` literals become primary surface forms
        (IRI local names become secondary ones), ``rdf:type`` triples
        with ``dbo:`` objects rebuild the type closure, and wiki
        page-link triples rebuild the disambiguation graph.  Free-form
        record aliases are not materialised as triples, so they do not
        survive the round trip — build both sides of a comparison through
        this constructor when exact surface-index parity matters.
        """
        kb = cls(ontology, backend=backend)
        kb._index_from_graph()
        return kb

    def _index_from_graph(self) -> None:
        dbr_base = DBR.base
        dbo_base = DBO.base
        for subject, __, obj in self.graph.match(None, RDF.type, None):
            if (
                isinstance(subject, IRI)
                and subject.value.startswith(dbr_base)
                and isinstance(obj, IRI)
                and obj.value.startswith(dbo_base)
            ):
                self._entity_types.setdefault(subject, set()).add(
                    obj.local_name
                )
        for subject, __, obj in self.graph.match(None, RDFS.label, None):
            if (
                isinstance(subject, IRI)
                and subject.value.startswith(dbr_base)
                and isinstance(obj, Literal)
            ):
                self.surface_index.add(subject, obj.lexical, primary=True)
                self.surface_index.add(subject, subject.local_name)
        for subject, __, obj in self.graph.match(None, WIKI_PAGE_LINK, None):
            if isinstance(subject, IRI) and isinstance(obj, IRI):
                self.page_links.add_link(subject, obj)

    def add_records(self, records: Sequence[EntityRecord]) -> None:
        """Add records (validating referential integrity across the batch
        plus anything already present)."""
        known = set(self._entity_types)
        names_in_batch = {record.name for record in records}
        if len(names_in_batch) != len(records):
            seen: set[str] = set()
            for record in records:
                if record.name in seen:
                    raise DatasetError(f"duplicate record {record.name!r}")
                seen.add(record.name)
        known_names = {iri.local_name for iri in known} | names_in_batch

        for record in records:
            self._validate(record, known_names)
        for record in records:
            self._materialise(record)
        for triple in self.ontology.schema_triples():
            self.graph.add(triple)

    def _validate(self, record: EntityRecord, known_names: set[str]) -> None:
        for class_name in record.classes:
            if not self.ontology.has_class(class_name):
                raise DatasetError(
                    f"{record.name}: unknown class {class_name!r}"
                )
        for prop_name in record.facts:
            if not self.ontology.has_property(prop_name):
                raise DatasetError(
                    f"{record.name}: unknown property {prop_name!r}"
                )
            prop = self.ontology.get_property(prop_name)
            for value in record.fact_values(prop_name):
                if prop.kind is PropertyKind.OBJECT:
                    if not isinstance(value, str):
                        raise DatasetError(
                            f"{record.name}.{prop_name}: object property values "
                            f"must be resource names, got {value!r}"
                        )
                    if value not in known_names:
                        raise DatasetError(
                            f"{record.name}.{prop_name}: unknown resource {value!r}"
                        )
        for link in record.links:
            if link not in known_names:
                raise DatasetError(f"{record.name}: unknown page link {link!r}")

    def _materialise(self, record: EntityRecord) -> None:
        subject = DBR[record.name]

        # Type closure: every declared class plus all its ancestors, the
        # way DBpedia materialises rdf:type.
        type_names: set[str] = set()
        for class_name in record.classes:
            type_names.update(self.ontology.superclasses(class_name))
        self._entity_types[subject] = type_names
        for class_name in type_names:
            self.graph.add(Triple(subject, RDF.type, DBO[class_name]))

        label = record.display_label()
        self.graph.add(Triple(subject, RDFS.label, Literal(label, language="en")))
        self.surface_index.add(subject, label, primary=True)
        self.surface_index.add(subject, record.name)
        for alias in record.aliases:
            self.surface_index.add(subject, alias)

        for prop_name in record.facts:
            prop = self.ontology.get_property(prop_name)
            for value in record.fact_values(prop_name):
                if prop.kind is PropertyKind.OBJECT:
                    target = DBR[value]
                    self.graph.add(Triple(subject, prop.iri, target))
                    self.graph.add(Triple(subject, WIKI_PAGE_LINK, target))
                    self.page_links.add_link(subject, target)
                else:
                    self.graph.add(Triple(subject, prop.iri, make_literal(value)))

        for link in record.links:
            target = DBR[link]
            self.graph.add(Triple(subject, WIKI_PAGE_LINK, target))
            self.page_links.add_link(subject, target)

    def _index_class_labels(self) -> None:
        for cls in self.ontology.classes():
            key = normalize_surface(cls.display_label())
            self._class_labels.setdefault(key, []).append(cls.name)

    # ------------------------------------------------------------------
    # Lookups used by the QA pipeline
    # ------------------------------------------------------------------

    def entity(self, name: str) -> IRI:
        """The ``dbr:`` IRI for a resource local name (must exist)."""
        iri = DBR[name]
        if iri not in self._entity_types:
            raise KeyError(f"no entity named {name!r}")
        return iri

    def has_entity(self, name: str) -> bool:
        return DBR[name] in self._entity_types

    def entities(self) -> list[IRI]:
        return list(self._entity_types)

    def entity_types(self, entity: IRI) -> set[str]:
        """Local class names of an entity (full closure)."""
        return set(self._entity_types.get(entity, ()))

    def is_instance_of(self, entity: IRI, class_name: str) -> bool:
        return class_name in self._entity_types.get(entity, ())

    def classes_for_label(self, label: str) -> list[IRI]:
        """Ontology classes whose label matches (section 2.2.4).

        Matches singular/plural by also trying a naive singularisation.
        """
        key = normalize_surface(label)
        names = list(self._class_labels.get(key, ()))
        if not names and key.endswith("s"):
            names = list(self._class_labels.get(key[:-1], ()))
        if not names and key.endswith("ies"):
            names = list(self._class_labels.get(key[:-3] + "y", ()))
        return [DBO[name] for name in names]

    def label_of(self, entity: IRI) -> str:
        """Primary label of an entity or class."""
        label = self.surface_index.label(entity)
        if label is not None:
            return label
        value = self.graph.value(entity, RDFS.label)
        if isinstance(value, Literal):
            return value.lexical
        return entity.local_name.replace("_", " ")

    def object_properties(self) -> list[PropertyDef]:
        return self.ontology.object_properties()

    def data_properties(self) -> list[PropertyDef]:
        return self.ontology.data_properties()

    # Convenience query pass-throughs.

    def select(self, query: str):
        return self.engine.select(query)

    def ask(self, query: str) -> bool:
        return self.engine.ask(query)

    def __len__(self) -> int:
        return len(self.graph)

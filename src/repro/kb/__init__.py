"""Mini-DBpedia knowledge base.

The paper queries the public DBpedia endpoint; this package provides the
offline substitute: a DBpedia-ontology-shaped schema
(:mod:`repro.kb.ontology`, :mod:`repro.kb.schema`), a curated dataset of
real-world facts (:mod:`repro.kb.dataset`), a deterministic synthetic
generator for scale benchmarks (:mod:`repro.kb.generator`), a surface-form
index (:mod:`repro.kb.labels`) and the wiki page-link graph used by entity
disambiguation (:mod:`repro.kb.pagelinks`).  Everything is assembled by
:class:`repro.kb.builder.KnowledgeBase`.
"""

from repro.kb.backend import (
    BackendError,
    BackendGraph,
    InMemoryBackend,
    KBBackend,
    ReadOnlyGraphError,
)
from repro.kb.ontology import Ontology, OntologyClass, PropertyDef, PropertyKind
from repro.kb.schema import build_dbpedia_ontology
from repro.kb.builder import KnowledgeBase
from repro.kb.dataset import curated_records, load_curated_kb
from repro.kb.labels import SurfaceFormIndex, normalize_surface
from repro.kb.pagelinks import PageLinkGraph
from repro.kb.generator import generate_records, load_synthetic_kb
from repro.kb.segment import SegmentError, SegmentIntegrityError
from repro.kb.shard import (
    DEFAULT_SHARDS,
    SegmentedBackend,
    ShardResultCache,
    build_segments,
    shard_of_object,
    shard_of_subject,
)

__all__ = [
    "Ontology",
    "OntologyClass",
    "PropertyDef",
    "PropertyKind",
    "build_dbpedia_ontology",
    "KnowledgeBase",
    "curated_records",
    "load_curated_kb",
    "SurfaceFormIndex",
    "normalize_surface",
    "PageLinkGraph",
    "generate_records",
    "load_synthetic_kb",
    "KBBackend",
    "InMemoryBackend",
    "SegmentedBackend",
    "BackendGraph",
    "BackendError",
    "ReadOnlyGraphError",
    "SegmentError",
    "SegmentIntegrityError",
    "build_segments",
    "shard_of_subject",
    "shard_of_object",
    "ShardResultCache",
    "DEFAULT_SHARDS",
]

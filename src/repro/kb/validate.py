"""Knowledge-base consistency checking.

A production triple store ships an integrity checker; this one validates a
:class:`KnowledgeBase` against its ontology the way DBpedia's extraction
framework validates mappings:

* **domain violations** — a property asserted on a subject whose types do
  not include the property's declared domain;
* **range violations** — an object-property value outside the declared
  range class, or a data-property value of the wrong literal family;
* **labelling gaps** — resources without an ``rdfs:label``;
* **orphans** — entities with no facts besides type/label;
* **dangling page links** — links to pages with no triples at all.

The curated dataset test suite runs the checker as a regression gate, and
``examples/build_your_own_kb.py``-style user data gets the same guarantees.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.kb.builder import KnowledgeBase
from repro.kb.ontology import PropertyKind, ValueType
from repro.kb.pagelinks import WIKI_PAGE_LINK
from repro.rdf.datatypes import (
    is_date_literal,
    is_numeric_literal,
)
from repro.rdf.namespaces import DBO, RDF, RDFS
from repro.rdf.terms import IRI, Literal, Triple


class IssueKind(enum.Enum):
    DOMAIN_VIOLATION = "domain-violation"
    RANGE_VIOLATION = "range-violation"
    MISSING_LABEL = "missing-label"
    ORPHAN_ENTITY = "orphan-entity"
    DANGLING_LINK = "dangling-link"


@dataclass(frozen=True)
class Issue:
    """One consistency finding."""

    kind: IssueKind
    subject: IRI
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind.value}] {self.subject.local_name}: {self.detail}"


_STRUCTURAL = {RDF.type, RDFS.label, WIKI_PAGE_LINK}


def validate_kb(kb: KnowledgeBase) -> list[Issue]:
    """Run every check; returns all findings (empty = consistent)."""
    issues: list[Issue] = []
    issues.extend(_check_property_usage(kb))
    issues.extend(_check_labels(kb))
    issues.extend(_check_orphans(kb))
    issues.extend(_check_dangling_links(kb))
    return issues


def _check_property_usage(kb: KnowledgeBase) -> list[Issue]:
    issues: list[Issue] = []
    for prop in kb.ontology.properties():
        for triple in kb.graph.match(None, prop.iri, None):
            subject = triple.subject
            if not isinstance(subject, IRI):
                continue
            if prop.domain is not None and not kb.is_instance_of(subject, prop.domain):
                issues.append(Issue(
                    IssueKind.DOMAIN_VIOLATION, subject,
                    f"{prop.name} requires domain {prop.domain}, "
                    f"types are {sorted(kb.entity_types(subject))}",
                ))
            issues.extend(_check_range(kb, prop, triple))
    return issues


def _check_range(kb: KnowledgeBase, prop, triple: Triple) -> list[Issue]:
    obj = triple.object
    subject = triple.subject
    if prop.kind is PropertyKind.OBJECT:
        if not isinstance(obj, IRI):
            return [Issue(
                IssueKind.RANGE_VIOLATION, subject,
                f"{prop.name} is an object property but has literal value "
                f"{obj}",
            )]
        if prop.range is not None and not kb.is_instance_of(obj, prop.range):
            return [Issue(
                IssueKind.RANGE_VIOLATION, subject,
                f"{prop.name} requires range {prop.range}, "
                f"{obj.local_name} has {sorted(kb.entity_types(obj))}",
            )]
        return []
    # Data property: literal family must match the declared value type.
    if not isinstance(obj, Literal):
        return [Issue(
            IssueKind.RANGE_VIOLATION, subject,
            f"{prop.name} is a data property but has resource value",
        )]
    if prop.value_type is ValueType.NUMERIC and not is_numeric_literal(obj):
        return [Issue(
            IssueKind.RANGE_VIOLATION, subject,
            f"{prop.name} expects a numeric literal, got {obj.n3()}",
        )]
    if prop.value_type is ValueType.DATE and not is_date_literal(obj):
        return [Issue(
            IssueKind.RANGE_VIOLATION, subject,
            f"{prop.name} expects a date literal, got {obj.n3()}",
        )]
    return []


def _check_labels(kb: KnowledgeBase) -> list[Issue]:
    issues = []
    for entity in kb.entities():
        if kb.graph.value(entity, RDFS.label) is None:
            issues.append(Issue(
                IssueKind.MISSING_LABEL, entity, "no rdfs:label",
            ))
    return issues


def _check_orphans(kb: KnowledgeBase) -> list[Issue]:
    issues = []
    for entity in kb.entities():
        has_facts = any(
            predicate not in _STRUCTURAL
            for __, predicate, __o in kb.graph.match(entity, None, None)
        ) or any(
            predicate not in _STRUCTURAL
            for __s, predicate, __o in kb.graph.match(None, None, entity)
        )
        if not has_facts:
            issues.append(Issue(
                IssueKind.ORPHAN_ENTITY, entity,
                "no facts beyond type/label/links",
            ))
    return issues


def _check_dangling_links(kb: KnowledgeBase) -> list[Issue]:
    issues = []
    known = set(kb.entities())
    for page in kb.page_links.pages():
        if page not in known:
            for source in kb.page_links.in_links(page):
                issues.append(Issue(
                    IssueKind.DANGLING_LINK, source,
                    f"links to unknown page {page.local_name}",
                ))
    return issues


def format_issues(issues: list[Issue], limit: int = 50) -> str:
    """Human-readable report, grouped by kind."""
    if not issues:
        return "knowledge base is consistent: no issues found"
    lines = [f"{len(issues)} issue(s) found"]
    by_kind: dict[IssueKind, int] = {}
    for issue in issues:
        by_kind[issue.kind] = by_kind.get(issue.kind, 0) + 1
    for kind, count in sorted(by_kind.items(), key=lambda kv: kv[0].value):
        lines.append(f"  {kind.value}: {count}")
    lines.append("")
    for issue in issues[:limit]:
        lines.append(f"  {issue}")
    if len(issues) > limit:
        lines.append(f"  ... and {len(issues) - limit} more")
    return "\n".join(lines)

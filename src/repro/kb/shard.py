"""Hash-partitioned segment sets: the builder and the out-of-core backend.

:func:`build_segments` splits a graph's triples across N shards by a mixed
hash of the **subject id** and serializes each shard with
:mod:`repro.kb.segment`.  Subject-hash partitioning has two properties the
query layer leans on:

* a subject-bound scan touches exactly **one** shard
  (:func:`shard_of_subject` routes it), and
* every solution of a subject-star BGP (all patterns sharing one subject
  variable) lives entirely inside one shard — which is what makes the
  per-shard fan-out of :mod:`repro.sparql.scatter` correct without any
  cross-shard deduplication.

Alongside the subject partition the builder writes a **secondary
object-hash partition** (``oshard_NNN.seg``): the same triples,
repartitioned by a mixed hash of the **object id**.  That gives the two
mirror properties for the POS/OSP side of the index:

* an object-bound scan (``s`` free) touches exactly **one** object shard
  (:func:`shard_of_object` routes it — no heap-merge across the subject
  shards), and
* every solution of an object-star BGP (all patterns sharing one object
  variable) lives entirely inside one object shard, so predicate-bound
  stars fan out per shard exactly like subject stars do.

:class:`SegmentedBackend` serves the :class:`repro.kb.backend.KBBackend`
protocol from such a directory: the dictionary and the shard columns stay
mmapped (out-of-core — the heap never holds the triple set), multi-shard
scans heap-merge the per-shard sorted streams into one deterministic
globally sorted stream, and counts are sums of per-shard range
subtractions.  Directories written before the secondary partition existed
(no ``object_shards`` manifest key) still open and serve; only the
object-routing fast paths stay off.

:class:`ShardResultCache` is the per-shard result cache the scatter layer
(:mod:`repro.sparql.scatter`) keys on a *cache generation*: entries are
only served while the stamp matches, so a hot KB reload (which bumps the
owning executor's generation) empties every shard cache at once.
"""

from __future__ import annotations

import heapq
import os
import threading
from typing import Iterator

from repro.kb.backend import KBBackend, BackendGraph, IdTriple
from repro.kb.segment import (
    SegmentDictionary,
    SegmentError,
    SegmentShard,
    read_manifest,
    scan_order_key,
    write_dictionary,
    write_manifest,
    write_shard,
)
from repro.perf.stats import PerfStats
from repro.rdf.graph import Graph
from repro.rdf.terms import Term

#: Default shard count for :func:`build_segments`.
DEFAULT_SHARDS = 8


def _mix64(value: int) -> int:
    """The splitmix64 finalizer: decorrelates dense dictionary ids so
    partition sizes stay balanced even though subject ids are sequential."""
    value = (value + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


#: Salt decorrelating the object partition from the subject partition, so
#: a term appearing as both subject and object does not force the two
#: partitions to co-locate it (sizes stay independently balanced).
_OBJECT_SALT = 0x6A09E667F3BCC909


def shard_of_subject(subject_id: int, shards: int) -> int:
    """The shard a subject id routes to."""
    return _mix64(subject_id) % shards


def shard_of_object(object_id: int, shards: int) -> int:
    """The secondary (object-hash) shard an object id routes to."""
    return _mix64(object_id ^ _OBJECT_SALT) % shards


def shard_filename(shard: int) -> str:
    return f"shard_{shard:03d}.seg"


def object_shard_filename(shard: int) -> str:
    return f"oshard_{shard:03d}.seg"


def build_segments(
    graph: Graph,
    out_dir: str | os.PathLike,
    shards: int = DEFAULT_SHARDS,
    object_shards: int | None = None,
) -> dict:
    """Partition ``graph`` into an on-disk segment directory.

    Returns the written manifest.  The dictionary is shared (ids stay
    global and identical to the source graph's, so id-space plans compiled
    against either backend resolve constants to the same ids); each shard
    holds the triples whose subject hashes to it — possibly none, an empty
    shard is a valid (and checksummed) segment.

    ``object_shards`` sizes the secondary object-hash partition (defaults
    to ``shards``; pass ``0`` to skip it — the directory then serves
    subject routing only, like directories written before the secondary
    partition existed).
    """
    if shards < 1:
        raise ValueError(f"shard count must be >= 1, got {shards}")
    if object_shards is None:
        object_shards = shards
    if object_shards < 0:
        raise ValueError(
            f"object shard count must be >= 0, got {object_shards}"
        )
    directory = os.fspath(out_dir)
    os.makedirs(directory, exist_ok=True)

    dictionary = graph.dictionary
    terms = [dictionary.decode(term_id) for term_id in range(len(dictionary))]
    checksums = {
        "dictionary.bin": write_dictionary(
            os.path.join(directory, "dictionary.bin"), terms
        )
    }

    partitions: list[list[IdTriple]] = [[] for __ in range(shards)]
    object_partitions: list[list[IdTriple]] = [
        [] for __ in range(object_shards)
    ]
    for triple in graph.match_ids(None, None, None):
        partitions[shard_of_subject(triple[0], shards)].append(triple)
        if object_shards:
            object_partitions[
                shard_of_object(triple[2], object_shards)
            ].append(triple)
    for shard, triples in enumerate(partitions):
        name = shard_filename(shard)
        checksums[name] = write_shard(
            os.path.join(directory, name), shard, triples
        )
    for shard, triples in enumerate(object_partitions):
        name = object_shard_filename(shard)
        checksums[name] = write_shard(
            os.path.join(directory, name), shard, triples
        )
    return write_manifest(
        directory,
        shards,
        [len(triples) for triples in partitions],
        len(terms),
        checksums,
        object_shard_triples=(
            [len(triples) for triples in object_partitions]
            if object_shards
            else None
        ),
    )


class SegmentedBackend(KBBackend):
    """Out-of-core, read-only backend over a segment directory.

    Opening validates the manifest and the dictionary; shard files map
    lazily on first touch (their checksums validate then — a corrupted
    shard raises the typed
    :class:`~repro.kb.segment.SegmentIntegrityError` at first use, never
    silently returns wrong rows).  All scans are deterministic: per-shard
    streams are sorted by construction and multi-shard scans merge them
    under the pattern shape's order key.

    Counters (``kb.segments.*`` — see docs/observability.md) land in the
    instance's :class:`~repro.perf.stats.PerfStats` and surface through
    :meth:`stats`.
    """

    def __init__(
        self, path: str | os.PathLike, stats: PerfStats | None = None
    ) -> None:
        self._path = os.fspath(path)
        self._stats = stats if stats is not None else PerfStats()
        self._manifest: dict | None = None
        self._dictionary: SegmentDictionary | None = None
        self._shards: list[SegmentShard] = []
        self._object_shards: list[SegmentShard] = []

    @property
    def path(self) -> str:
        return self._path

    @property
    def perf(self) -> PerfStats:
        return self._stats

    # -- lifecycle -----------------------------------------------------

    def open(self) -> "SegmentedBackend":
        if self._manifest is not None:
            return self
        manifest = read_manifest(self._path)
        self._dictionary = SegmentDictionary(
            os.path.join(self._path, "dictionary.bin")
        )
        if len(self._dictionary) != manifest["terms"]:
            raise SegmentError(
                f"{self._path}: dictionary holds {len(self._dictionary)} "
                f"terms, manifest says {manifest['terms']}"
            )
        self._shards = [
            SegmentShard(os.path.join(self._path, shard_filename(shard)), shard)
            for shard in range(manifest["shards"])
        ]
        self._object_shards = [
            SegmentShard(
                os.path.join(self._path, object_shard_filename(shard)), shard
            )
            for shard in range(manifest.get("object_shards", 0))
        ]
        self._manifest = manifest
        self._stats.increment("kb.segments.opened")
        return self

    def close(self) -> None:
        for shard in self._shards:
            shard.close()
        self._shards = []
        for shard in self._object_shards:
            shard.close()
        self._object_shards = []
        if self._dictionary is not None:
            self._dictionary.close()
            self._dictionary = None
        self._manifest = None

    def _require_open(self) -> dict:
        if self._manifest is None:
            self.open()
        return self._manifest  # type: ignore[return-value]

    # -- id-space core -------------------------------------------------

    @property
    def shard_count(self) -> int:
        return self._require_open()["shards"]

    @property
    def object_shard_count(self) -> int:
        """Size of the secondary object-hash partition (0 when the
        directory was written without one)."""
        return self._require_open().get("object_shards", 0)

    def shard(self, index: int) -> SegmentShard:
        self._require_open()
        return self._shards[index]

    def object_shard(self, index: int) -> SegmentShard:
        self._require_open()
        return self._object_shards[index]

    def scan(
        self, s: int | None, p: int | None, o: int | None
    ) -> Iterator[IdTriple]:
        if -1 in (s, p, o):
            return iter(())
        manifest = self._require_open()
        self._stats.increment("kb.segments.scans")
        if s is not None:
            # Subject-bound: the router pins the one shard that can match.
            self._stats.increment("kb.segments.single_shard_scans")
            shard = shard_of_subject(s, manifest["shards"])
            return self._shards[shard].scan(s, p, o)
        if o is not None and self._object_shards:
            # Object-bound, subject free: the secondary partition pins one
            # object shard.  Its stream is sorted under the same shape key
            # and holds exactly the triples with this object, so it is
            # byte-identical to the merged subject-shard stream.
            self._stats.increment("kb.segments.object_routed_scans")
            shard = shard_of_object(o, len(self._object_shards))
            return self._object_shards[shard].scan(s, p, o)
        self._stats.increment("kb.segments.merged_scans")
        streams = [shard.scan(s, p, o) for shard in self._shards]
        return heapq.merge(*streams, key=scan_order_key(s, p, o))

    def count(
        self, s: int | None = None, p: int | None = None, o: int | None = None
    ) -> int:
        if -1 in (s, p, o):
            return 0
        manifest = self._require_open()
        self._stats.increment("kb.segments.counts")
        if s is not None:
            shard = shard_of_subject(s, manifest["shards"])
            return self._shards[shard].count(s, p, o)
        if o is not None and self._object_shards:
            self._stats.increment("kb.segments.object_routed_counts")
            shard = shard_of_object(o, len(self._object_shards))
            return self._object_shards[shard].count(s, p, o)
        return sum(shard.count(s, p, o) for shard in self._shards)

    def lookup(self, term: Term) -> int:
        self._require_open()
        self._stats.increment("kb.segments.lookups")
        term_id = self._dictionary.lookup(term)  # type: ignore[union-attr]
        return -1 if term_id is None else term_id

    def decode(self, term_id: int) -> Term:
        self._require_open()
        return self._dictionary.decode(term_id)  # type: ignore[union-attr]

    @property
    def dictionary(self) -> SegmentDictionary:
        self._require_open()
        return self._dictionary  # type: ignore[return-value]

    @property
    def generation(self) -> int:
        """Segments are immutable: the generation is 0 forever, and the
        fingerprint (not the generation) carries content identity."""
        return 0

    def __len__(self) -> int:
        return self._require_open()["triples"]

    def distinct_ids(self, position: int) -> Iterator[int]:
        """Distinct subject/predicate/object ids, globally sorted."""
        self._require_open()
        streams = [shard.distinct_ids(position) for shard in self._shards]
        previous: int | None = None
        for value in heapq.merge(*streams):
            if value != previous:
                previous = value
                yield value

    # -- identity and observability -------------------------------------

    def fingerprint(self) -> dict:
        manifest = self._require_open()
        return {
            "kind": "segments",
            "schema": manifest["schema"],
            "shards": manifest["shards"],
            "object_shards": manifest.get("object_shards", 0),
            "triples": manifest["triples"],
            "content": manifest["fingerprint"],
        }

    def stats(self) -> dict:
        manifest = self._require_open()
        counters = self._stats.snapshot()["counters"]
        return {
            "kind": "segments",
            "path": self._path,
            "shards": manifest["shards"],
            "object_shards": manifest.get("object_shards", 0),
            "triples": manifest["triples"],
            "terms": manifest["terms"],
            "counters": {
                name: value
                for name, value in counters.items()
                if name.startswith("kb.segments.")
            },
        }

    # -- scatter-gather support -----------------------------------------

    def shard_view(self, index: int) -> BackendGraph:
        """A Graph-compatible view restricted to one shard (shared global
        dictionary) — what a scatter-gather worker executes its plan
        against (:mod:`repro.sparql.scatter`)."""
        return BackendGraph(_SingleShardBackend(self, index))

    def object_shard_view(self, index: int) -> BackendGraph:
        """Like :meth:`shard_view`, restricted to one shard of the
        secondary object-hash partition."""
        return BackendGraph(_SingleShardBackend(self, index, partition="object"))

    def partition_view(self, kind: str, index: int) -> BackendGraph:
        """Dispatch to :meth:`shard_view` / :meth:`object_shard_view` by
        partition kind (``"subject"`` or ``"object"``)."""
        if kind == "object":
            return self.object_shard_view(index)
        return self.shard_view(index)

    def partition_count(self, kind: str) -> int:
        return (
            self.object_shard_count if kind == "object" else self.shard_count
        )


class _SingleShardBackend(KBBackend):
    """One shard of a :class:`SegmentedBackend` behind the same protocol.

    Shares the parent's (global-id) dictionary, so id-space plans and
    filter constants resolved against any view agree across shards.
    ``partition`` selects the subject-hash (primary) or object-hash
    (secondary) partition.
    """

    def __init__(
        self, parent: SegmentedBackend, index: int, partition: str = "subject"
    ) -> None:
        self._parent = parent
        self._index = index
        self._partition = partition

    def _shard(self) -> SegmentShard:
        if self._partition == "object":
            return self._parent.object_shard(self._index)
        return self._parent.shard(self._index)

    def open(self) -> "_SingleShardBackend":
        self._parent.open()
        return self

    def close(self) -> None:  # the parent owns the mmap lifecycle
        pass

    def scan(
        self, s: int | None, p: int | None, o: int | None
    ) -> Iterator[IdTriple]:
        if -1 in (s, p, o):
            return iter(())
        return self._shard().scan(s, p, o)

    def count(
        self, s: int | None = None, p: int | None = None, o: int | None = None
    ) -> int:
        if -1 in (s, p, o):
            return 0
        return self._shard().count(s, p, o)

    def lookup(self, term: Term) -> int:
        return self._parent.lookup(term)

    def decode(self, term_id: int) -> Term:
        return self._parent.decode(term_id)

    @property
    def dictionary(self) -> SegmentDictionary:
        return self._parent.dictionary

    @property
    def generation(self) -> int:
        return 0

    def __len__(self) -> int:
        return len(self._shard())

    def fingerprint(self) -> dict:
        return dict(
            self._parent.fingerprint(),
            shard=self._index,
            partition=self._partition,
        )

    def stats(self) -> dict:
        return {
            "kind": "segments.shard",
            "shard": self._index,
            "partition": self._partition,
        }


class ShardResultCache:
    """A small generation-stamped LRU of per-shard packed results.

    The *stamp* is whatever hashable token the owner uses to mark the
    cache's validity epoch (the scatter executor uses its backend
    fingerprint token plus a reload generation).  A :meth:`get` or
    :meth:`put` under a different stamp empties the cache first, so a hot
    KB reload — which changes the stamp — invalidates every entry at once
    without touching each cache.  Thread-safe: serving workers share one
    executor and therefore one cache per shard.
    """

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 1:
            raise ValueError(f"cache maxsize must be >= 1, got {maxsize}")
        self._maxsize = maxsize
        self._stamp: object = None
        self._data: dict = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def _sync_stamp(self, stamp: object) -> None:
        if stamp != self._stamp:
            self._data.clear()
            self._stamp = stamp

    def get(self, stamp: object, key: object):
        """The cached value, or ``None`` on miss / stale stamp."""
        with self._lock:
            self._sync_stamp(stamp)
            value = self._data.pop(key, None)
            if value is not None:
                self._data[key] = value  # re-insert: LRU order is dict order
            return value

    def put(self, stamp: object, key: object, value: object) -> None:
        with self._lock:
            self._sync_stamp(stamp)
            self._data.pop(key, None)
            self._data[key] = value
            while len(self._data) > self._maxsize:
                self._data.pop(next(iter(self._data)))

    def invalidate(self) -> None:
        with self._lock:
            self._data.clear()
            self._stamp = None

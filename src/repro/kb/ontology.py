"""Ontology model: class hierarchy and property definitions.

The property-mapping steps of the pipeline (section 2.2) need to know, for
every DBpedia property, whether it is an *object* property or a *data*
property, its label, and — for answer-type checking (section 2.3.2) — the
range of values it produces.  The class hierarchy supplies the subclass
closure used both when materialising ``rdf:type`` triples and when checking
expected answer types ("Person, Organization, Company" for *Who* questions).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.rdf.namespaces import DBO, RDF, RDFS
from repro.rdf.terms import IRI, Literal, Triple


class PropertyKind(enum.Enum):
    """DBpedia distinguishes object properties (entity-valued) from data
    properties (literal-valued)."""

    OBJECT = "object"
    DATA = "data"


class ValueType(enum.Enum):
    """Coarse range classification used by expected-answer-type checking."""

    ENTITY = "entity"
    NUMERIC = "numeric"
    DATE = "date"
    STRING = "string"
    BOOLEAN = "boolean"


@dataclass(frozen=True, slots=True)
class OntologyClass:
    """A DBpedia ontology class such as ``dbo:Book``."""

    name: str  # local name, e.g. "Book"
    parent: str | None = None  # local name of the superclass
    label: str | None = None

    @property
    def iri(self) -> IRI:
        return DBO[self.name]

    def display_label(self) -> str:
        return self.label if self.label is not None else _decamel(self.name)


@dataclass(frozen=True, slots=True)
class PropertyDef:
    """A DBpedia ontology property such as ``dbo:birthPlace``."""

    name: str  # local name, e.g. "birthPlace"
    kind: PropertyKind
    value_type: ValueType
    domain: str | None = None  # local class name
    range: str | None = None  # local class name (object properties)
    label: str | None = None

    @property
    def iri(self) -> IRI:
        return DBO[self.name]

    def display_label(self) -> str:
        return self.label if self.label is not None else _decamel(self.name)


def _decamel(name: str) -> str:
    """``birthPlace`` -> ``birth place``; ``populationTotal`` -> ``population total``."""
    out: list[str] = []
    for ch in name:
        if ch.isupper() and out:
            out.append(" ")
        out.append(ch.lower())
    return "".join(out)


class Ontology:
    """A class taxonomy plus a property catalogue.

    >>> ontology = Ontology()
    >>> ontology.add_class(OntologyClass("Person"))
    >>> ontology.add_class(OntologyClass("Writer", parent="Person"))
    >>> ontology.superclasses("Writer")
    ['Writer', 'Person']
    """

    def __init__(self) -> None:
        self._classes: dict[str, OntologyClass] = {}
        self._properties: dict[str, PropertyDef] = {}

    # -- classes -----------------------------------------------------------

    def add_class(self, cls: OntologyClass) -> None:
        if cls.name in self._classes:
            raise ValueError(f"duplicate class {cls.name!r}")
        if cls.parent is not None and cls.parent not in self._classes:
            raise ValueError(
                f"class {cls.name!r} declares unknown parent {cls.parent!r}"
            )
        self._classes[cls.name] = cls

    def classes(self) -> Iterator[OntologyClass]:
        return iter(self._classes.values())

    def has_class(self, name: str) -> bool:
        return name in self._classes

    def get_class(self, name: str) -> OntologyClass:
        try:
            return self._classes[name]
        except KeyError:
            raise KeyError(f"unknown ontology class {name!r}") from None

    def superclasses(self, name: str) -> list[str]:
        """The class itself followed by all ancestors, root last."""
        chain: list[str] = []
        current: str | None = name
        while current is not None:
            if current in chain:
                raise ValueError(f"class hierarchy cycle at {current!r}")
            chain.append(current)
            current = self.get_class(current).parent
        return chain

    def subclasses(self, name: str) -> set[str]:
        """All descendants of a class, excluding the class itself."""
        self.get_class(name)
        out: set[str] = set()
        frontier = {name}
        while frontier:
            frontier = {
                cls.name
                for cls in self._classes.values()
                if cls.parent in frontier
            }
            out |= frontier
        return out

    def is_subclass_of(self, name: str, ancestor: str) -> bool:
        """True when ``name`` equals or descends from ``ancestor``."""
        return ancestor in self.superclasses(name)

    # -- properties ----------------------------------------------------------

    def add_property(self, prop: PropertyDef) -> None:
        if prop.name in self._properties:
            raise ValueError(f"duplicate property {prop.name!r}")
        for class_ref in (prop.domain, prop.range):
            if class_ref is not None and class_ref not in self._classes:
                raise ValueError(
                    f"property {prop.name!r} references unknown class {class_ref!r}"
                )
        self._properties[prop.name] = prop

    def properties(self) -> Iterator[PropertyDef]:
        return iter(self._properties.values())

    def has_property(self, name: str) -> bool:
        return name in self._properties

    def get_property(self, name: str) -> PropertyDef:
        try:
            return self._properties[name]
        except KeyError:
            raise KeyError(f"unknown ontology property {name!r}") from None

    def object_properties(self) -> list[PropertyDef]:
        return [p for p in self._properties.values() if p.kind is PropertyKind.OBJECT]

    def data_properties(self) -> list[PropertyDef]:
        return [p for p in self._properties.values() if p.kind is PropertyKind.DATA]

    # -- RDF view -------------------------------------------------------------

    def schema_triples(self) -> Iterator[Triple]:
        """The ontology as RDF: labels and subclass axioms.

        These triples live in the same graph as the instance data, exactly
        like DBpedia serves its T-Box alongside the A-Box.
        """
        owl_class = IRI("http://www.w3.org/2002/07/owl#Class")
        for cls in self._classes.values():
            yield Triple(cls.iri, RDF.type, owl_class)
            yield Triple(cls.iri, RDFS.label, Literal(cls.display_label(), language="en"))
            if cls.parent is not None:
                yield Triple(cls.iri, RDFS.subClassOf, DBO[cls.parent])
        owl_object = IRI("http://www.w3.org/2002/07/owl#ObjectProperty")
        owl_data = IRI("http://www.w3.org/2002/07/owl#DatatypeProperty")
        for prop in self._properties.values():
            kind_iri = owl_object if prop.kind is PropertyKind.OBJECT else owl_data
            yield Triple(prop.iri, RDF.type, kind_iri)
            yield Triple(prop.iri, RDFS.label, Literal(prop.display_label(), language="en"))
            if prop.domain is not None:
                yield Triple(prop.iri, RDFS.domain, DBO[prop.domain])
            if prop.range is not None:
                yield Triple(prop.iri, RDFS.range, DBO[prop.range])

"""Deterministic synthetic KB generator for scale benchmarks.

The curated dataset is a few thousand triples; the SPARQL-engine benchmarks
(P1 in DESIGN.md) need graphs in the 10k-500k triple range.  This generator
produces DBpedia-shaped data — writers, books, cities, countries, companies
— with the same ontology, deterministically from a seed so benchmark runs
are reproducible without ``random`` state leaking between them.
"""

from __future__ import annotations

import datetime as dt
import random

from repro.kb.builder import KnowledgeBase
from repro.kb.records import EntityRecord, entity
from repro.kb.schema import build_dbpedia_ontology

_GIVEN = (
    "Alan", "Beth", "Carl", "Dina", "Egon", "Faye", "Glen", "Hana",
    "Ivan", "Jade", "Karl", "Lena", "Milo", "Nora", "Omar", "Pia",
)
_FAMILY = (
    "Adler", "Baker", "Chen", "Demir", "Ekman", "Fischer", "Garcia",
    "Haas", "Ito", "Jansen", "Kaya", "Lang", "Meyer", "Novak", "Oz",
    "Petit",
)
_NOUNS = (
    "Shadow", "River", "Garden", "Tower", "Harbor", "Winter", "Summer",
    "Mirror", "Island", "Forest", "Desert", "Mountain", "Ocean", "Valley",
)


def generate_records(
    num_writers: int = 100,
    books_per_writer: int = 3,
    num_cities: int = 50,
    num_countries: int = 10,
    num_companies: int = 20,
    seed: int = 13,
) -> list[EntityRecord]:
    """Produce a deterministic synthetic record set.

    The output is fully valid against the mini-DBpedia ontology and safe to
    mix with the curated records (names are namespaced with ``Syn``).
    """
    rng = random.Random(seed)
    records: list[EntityRecord] = []

    countries = [f"SynCountry_{i}" for i in range(num_countries)]
    cities = [f"SynCity_{i}" for i in range(num_cities)]

    for i, name in enumerate(countries):
        records.append(entity(
            name, "Country",
            label=f"Synland {i}",
            populationTotal=rng.randint(1_000_000, 90_000_000),
            capital=cities[i % num_cities],
        ))
    for i, name in enumerate(cities):
        records.append(entity(
            name, "City",
            label=f"Synville {i}",
            country=countries[i % num_countries],
            populationTotal=rng.randint(10_000, 9_000_000),
        ))

    for i in range(num_writers):
        writer = f"SynWriter_{i}"
        given = _GIVEN[i % len(_GIVEN)]
        family = _FAMILY[(i // len(_GIVEN)) % len(_FAMILY)]
        records.append(entity(
            writer, "Writer",
            label=f"{given} {family} {i}",
            birthPlace=cities[rng.randrange(num_cities)],
            birthDate=dt.date(1900 + rng.randrange(99), 1 + rng.randrange(12),
                              1 + rng.randrange(28)),
            height=round(rng.uniform(1.5, 2.1), 2),
        ))
        for j in range(books_per_writer):
            noun_a = _NOUNS[rng.randrange(len(_NOUNS))]
            noun_b = _NOUNS[rng.randrange(len(_NOUNS))]
            records.append(entity(
                f"SynBook_{i}_{j}", "Novel",
                label=f"The {noun_a} of the {noun_b} {i}-{j}",
                author=writer,
                numberOfPages=rng.randint(90, 1200),
                publicationDate=dt.date(1950 + rng.randrange(70), 1, 1),
            ))

    for i in range(num_companies):
        records.append(entity(
            f"SynCompany_{i}", "Company",
            label=f"Syncorp {i}",
            headquarter=cities[rng.randrange(num_cities)],
            numberOfEmployees=rng.randint(10, 400_000),
            foundingDate=dt.date(1850 + rng.randrange(160), 1, 1),
        ))

    return records


def load_synthetic_kb(scale: int = 1, seed: int = 13) -> KnowledgeBase:
    """Build a synthetic KB; ``scale`` multiplies entity counts linearly.

    scale=1 yields roughly 5k triples; scale=20 roughly 100k.
    """
    records = generate_records(
        num_writers=100 * scale,
        books_per_writer=3,
        num_cities=50 * scale,
        num_countries=max(10, 2 * scale),
        num_companies=20 * scale,
        seed=seed,
    )
    return KnowledgeBase.from_records(build_dbpedia_ontology(), records)

"""Wikipedia page-link graph.

DBpedia ships ``dbo:wikiPageWikiLink`` triples derived from the links
between Wikipedia articles.  The disambiguation method of Hakimov et al.
2012 (the paper's reference [15]) scores candidate entities by graph
centrality over exactly this link structure; :class:`PageLinkGraph` provides
the neighbourhood and degree queries that scoring needs.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from repro.rdf.namespaces import DBO
from repro.rdf.terms import IRI

#: The predicate DBpedia uses for page links.
WIKI_PAGE_LINK = DBO.wikiPageWikiLink


class PageLinkGraph:
    """An undirected view over directed wiki page links."""

    def __init__(self) -> None:
        self._out: dict[IRI, set[IRI]] = defaultdict(set)
        self._in: dict[IRI, set[IRI]] = defaultdict(set)

    def add_link(self, source: IRI, target: IRI) -> None:
        if source == target:
            return
        self._out[source].add(target)
        self._in[target].add(source)

    def add_links(self, source: IRI, targets: Iterable[IRI]) -> None:
        for target in targets:
            self.add_link(source, target)

    def out_links(self, page: IRI) -> set[IRI]:
        return set(self._out.get(page, ()))

    def in_links(self, page: IRI) -> set[IRI]:
        return set(self._in.get(page, ()))

    def neighbours(self, page: IRI) -> set[IRI]:
        """Undirected neighbourhood (links in either direction)."""
        return self.out_links(page) | self.in_links(page)

    def degree(self, page: IRI) -> int:
        return len(self.neighbours(page))

    def connected(self, a: IRI, b: IRI) -> bool:
        """True when a links to b or b links to a."""
        return b in self._out.get(a, ()) or a in self._out.get(b, ())

    def shared_neighbours(self, a: IRI, b: IRI) -> set[IRI]:
        return self.neighbours(a) & self.neighbours(b)

    def pages(self) -> set[IRI]:
        return set(self._out) | set(self._in)

    def __len__(self) -> int:
        return sum(len(targets) for targets in self._out.values())

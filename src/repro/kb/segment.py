"""On-disk KB segments: mmap-loaded sorted triple arrays + dictionary block.

A segment directory (written by :func:`repro.kb.shard.build_segments`)
holds one immutable, out-of-core copy of a graph, hash-partitioned by
subject id:

``manifest.json``
    Schema stamp (``repro.kbseg/v1``), shard count, per-shard triple
    counts, per-file SHA-256 checksums and the combined content
    fingerprint (what ``repro.snapshot/v1`` headers embed).

``dictionary.bin``
    The shared term dictionary: an offsets array into a canonical
    JSON-record payload (exact term round-trip), plus a sorted
    ``(hash64, id)`` index so :meth:`SegmentDictionary.lookup` is a
    binary search over mmapped arrays — no term->id dict is ever built
    in the heap.

``shard_NNN.seg``
    One shard's triples in three sorted orderings — SPO, POS and OSP —
    each as three parallel int64 columns.  The columns are
    ``array('q')``-compatible: readers cast the mmap to a ``'q'``
    memoryview and the columnar engine's batch operators consume the ids
    with zero copies.  Every bound-prefix pattern scan is a binary-search
    range narrowing; counts are range subtractions.

Every file carries a checksummed header; a corrupted or truncated file
raises the typed :class:`SegmentIntegrityError` at open time (fail fast,
never serve garbage), an unknown schema or a malformed file raises
:class:`SegmentError`.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
from bisect import bisect_left, bisect_right
from functools import lru_cache
from typing import Iterator, Sequence

from repro.kb.backend import BackendError
from repro.rdf.terms import BNode, IRI, Literal, Term

#: Schema identifier stamped into the manifest and every segment header.
SEGMENT_SCHEMA = "repro.kbseg/v1"

_DICT_MAGIC = b"RKBDICT1\n"
_SHARD_MAGIC = b"RKBSEG1\n"
_WORD = 8  # int64 bytes

IdTriple = tuple[int, int, int]


class SegmentError(BackendError):
    """A segment file or directory is malformed or has the wrong schema."""


class SegmentIntegrityError(SegmentError):
    """A segment file failed checksum validation (corruption/truncation)."""


# ---------------------------------------------------------------------------
# Term records: canonical bytes for payload, hashing and round-trip
# ---------------------------------------------------------------------------


def encode_term(term: Term) -> bytes:
    """Canonical byte encoding of a term (exact round-trip, stable hash)."""
    if isinstance(term, IRI):
        record: list = ["i", term.value]
    elif isinstance(term, Literal):
        if term.language is not None:
            record = ["l", term.lexical, None, term.language]
        elif term.datatype is not None:
            record = ["l", term.lexical, term.datatype]
        else:
            record = ["l", term.lexical]
    elif isinstance(term, BNode):
        record = ["b", term.label]
    else:
        raise SegmentError(f"cannot serialize term {term!r}")
    return json.dumps(record, separators=(",", ":"), ensure_ascii=False).encode(
        "utf-8"
    )


def decode_term(record: bytes) -> Term:
    """Inverse of :func:`encode_term`."""
    try:
        decoded = json.loads(record.decode("utf-8"))
        kind = decoded[0]
        if kind == "i":
            return IRI(decoded[1])
        if kind == "l":
            datatype = decoded[2] if len(decoded) > 2 else None
            language = decoded[3] if len(decoded) > 3 else None
            return Literal(decoded[1], datatype=datatype, language=language)
        if kind == "b":
            return BNode(decoded[1])
    except (ValueError, IndexError, KeyError, UnicodeDecodeError) as error:
        raise SegmentError(f"corrupt term record: {error}") from None
    raise SegmentError(f"unknown term record kind {kind!r}")


def term_hash(record: bytes) -> int:
    """Signed 64-bit content hash of an encoded term record."""
    digest = hashlib.blake2b(record, digest_size=8).digest()
    return int.from_bytes(digest, "little", signed=True)


# ---------------------------------------------------------------------------
# File plumbing
# ---------------------------------------------------------------------------


def _write_with_header(path: str, magic: bytes, header: dict, body: bytes) -> str:
    """Write magic + JSON header line + body; returns the body's sha256."""
    checksum = hashlib.sha256(body).hexdigest()
    header = dict(header, schema=SEGMENT_SCHEMA, checksum=checksum)
    with open(path, "wb") as handle:
        handle.write(magic)
        handle.write(json.dumps(header, separators=(",", ":")).encode("utf-8"))
        handle.write(b"\n")
        handle.write(body)
    return checksum


class _MappedFile:
    """An open mmap with its parsed header and body view."""

    __slots__ = ("mm", "header", "body", "_file")

    def __init__(self, path: str, magic: bytes) -> None:
        self._file = open(path, "rb")
        try:
            self.mm = mmap.mmap(self._file.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError:
            self._file.close()
            raise SegmentIntegrityError(f"{path}: empty segment file") from None
        try:
            if self.mm[: len(magic)] != magic:
                raise SegmentError(f"{path}: bad magic (not a segment file)")
            newline = self.mm.find(b"\n", len(magic))
            if newline < 0:
                raise SegmentIntegrityError(f"{path}: truncated header")
            try:
                self.header = json.loads(
                    self.mm[len(magic):newline].decode("utf-8")
                )
            except (json.JSONDecodeError, UnicodeDecodeError) as error:
                raise SegmentIntegrityError(
                    f"{path}: corrupt header: {error}"
                ) from None
            if self.header.get("schema") != SEGMENT_SCHEMA:
                raise SegmentError(
                    f"{path}: unknown segment schema "
                    f"{self.header.get('schema')!r} (expected {SEGMENT_SCHEMA!r})"
                )
            self.body = memoryview(self.mm)[newline + 1:]
            digest = hashlib.sha256(self.body).hexdigest()
            if digest != self.header.get("checksum"):
                raise SegmentIntegrityError(
                    f"{path}: body failed checksum validation"
                )
        except Exception:
            self.close()
            raise

    def close(self) -> None:
        body = getattr(self, "body", None)
        if body is not None:
            body.release()
            self.body = None
        if not self.mm.closed:
            self.mm.close()
        self._file.close()


# ---------------------------------------------------------------------------
# Dictionary block
# ---------------------------------------------------------------------------


def write_dictionary(path: str, terms: Sequence[Term]) -> str:
    """Serialize the full term dictionary (id order); returns the checksum."""
    from array import array

    records = [encode_term(term) for term in terms]
    offsets = array("q", [0])
    position = 0
    for record in records:
        position += len(record)
        offsets.append(position)
    pairs = sorted(
        (term_hash(record), term_id) for term_id, record in enumerate(records)
    )
    hashes = array("q", (h for h, __ in pairs))
    ids = array("q", (term_id for __, term_id in pairs))
    body = (
        offsets.tobytes() + hashes.tobytes() + ids.tobytes() + b"".join(records)
    )
    return _write_with_header(path, _DICT_MAGIC, {"terms": len(records)}, body)


class SegmentDictionary:
    """Read-only term dictionary over the mmapped ``dictionary.bin``.

    ``lookup`` binary-searches the sorted hash index and verifies the hit
    against the payload bytes (hash collisions are resolved exactly);
    ``decode`` slices the payload through an LRU cache.  Nothing term-sized
    is materialised in the heap beyond that cache.
    """

    def __init__(self, path: str, cache_size: int = 65536) -> None:
        self._path = path
        self._mapped = _MappedFile(path, _DICT_MAGIC)
        self._terms = int(self._mapped.header["terms"])
        body = self._mapped.body
        cursor = 0
        self._offsets = body[cursor:cursor + (self._terms + 1) * _WORD].cast("q")
        cursor += (self._terms + 1) * _WORD
        self._hashes = body[cursor:cursor + self._terms * _WORD].cast("q")
        cursor += self._terms * _WORD
        self._ids = body[cursor:cursor + self._terms * _WORD].cast("q")
        cursor += self._terms * _WORD
        self._payload = body[cursor:]
        if len(self._payload) != self._offsets[self._terms]:
            raise SegmentIntegrityError(
                f"{path}: dictionary payload length mismatch"
            )
        self._decode_cached = lru_cache(maxsize=cache_size)(self._decode_slice)

    def __len__(self) -> int:
        return self._terms

    def __contains__(self, term: Term) -> bool:
        return self.lookup(term) is not None

    def _record(self, term_id: int) -> bytes:
        return bytes(self._payload[self._offsets[term_id]:self._offsets[term_id + 1]])

    def _decode_slice(self, term_id: int) -> Term:
        return decode_term(self._record(term_id))

    def lookup(self, term: Term) -> int | None:
        """The id for ``term`` or None (:class:`~repro.rdf.TermDictionary`
        signature, so backend views can share calling code)."""
        record = encode_term(term)
        wanted = term_hash(record)
        index = bisect_left(self._hashes, wanted)
        while index < self._terms and self._hashes[index] == wanted:
            term_id = self._ids[index]
            if self._record(term_id) == record:
                return term_id
            index += 1
        return None

    def decode(self, term_id: int) -> Term:
        if not 0 <= term_id < self._terms:
            raise KeyError(f"no term with id {term_id}")
        return self._decode_cached(term_id)

    def close(self) -> None:
        for view in (self._offsets, self._hashes, self._ids, self._payload):
            view.release()
        self._mapped.close()


# ---------------------------------------------------------------------------
# Shard segments
# ---------------------------------------------------------------------------

#: Column permutations per ordering: position-in-tuple for stored columns.
_SPO, _POS, _OSP = 0, 1, 2


def write_shard(path: str, shard: int, triples: Sequence[IdTriple]) -> str:
    """Serialize one shard's triples (three sorted orderings); returns the
    body checksum."""
    from array import array

    spo = sorted(triples)
    pos = sorted(triples, key=lambda t: (t[1], t[2], t[0]))
    osp = sorted(triples, key=lambda t: (t[2], t[0], t[1]))
    columns: list[bytes] = []
    for ordering, permutation in (
        (spo, (0, 1, 2)),
        (pos, (1, 2, 0)),
        (osp, (2, 0, 1)),
    ):
        for position in permutation:
            columns.append(
                array("q", (triple[position] for triple in ordering)).tobytes()
            )
    return _write_with_header(
        path, _SHARD_MAGIC, {"shard": shard, "triples": len(triples)},
        b"".join(columns),
    )


class SegmentShard:
    """One mmap-loaded shard: sorted SPO/POS/OSP column views + scans.

    Opened lazily (the first scan or count maps the file and validates the
    checksum); every pattern scan narrows a binary-search range over the
    ordering that serves the bound prefix, mirroring the in-memory graph's
    index choice table (:mod:`repro.rdf.graph`):

    ====================  =========  =================
    bound slots           ordering   emit order
    ====================  =========  =================
    s / s,p / s,p,o       SPO        (s, p, o)
    p / p,o               POS        (p, o, s)
    o / o,s               OSP        (o, s, p)
    (none)                SPO        (s, p, o)
    ====================  =========  =================

    The emit order depends only on the pattern *shape*, so equal-shaped
    scans of different shards merge into one globally sorted stream
    (:func:`scan_order_key`).
    """

    __slots__ = ("_path", "_shard", "_mapped", "_triples", "_cols")

    def __init__(self, path: str, shard: int) -> None:
        self._path = path
        self._shard = shard
        self._mapped: _MappedFile | None = None
        self._triples = -1
        self._cols: dict[int, tuple] = {}

    @property
    def path(self) -> str:
        return self._path

    def open(self) -> "SegmentShard":
        if self._mapped is not None:
            return self
        mapped = _MappedFile(self._path, _SHARD_MAGIC)
        try:
            if mapped.header.get("shard") != self._shard:
                raise SegmentError(
                    f"{self._path}: header names shard "
                    f"{mapped.header.get('shard')}, expected {self._shard}"
                )
            triples = int(mapped.header["triples"])
            if len(mapped.body) != 9 * triples * _WORD:
                raise SegmentIntegrityError(
                    f"{self._path}: body holds {len(mapped.body)} bytes, "
                    f"expected {9 * triples * _WORD}"
                )
        except Exception:
            mapped.close()
            raise
        self._mapped = mapped
        self._triples = triples
        whole = mapped.body.cast("q")
        for block, ordering in enumerate((_SPO, _POS, _OSP)):
            base = block * 3 * triples
            self._cols[ordering] = tuple(
                whole[base + column * triples: base + (column + 1) * triples]
                for column in range(3)
            )
        return self

    def close(self) -> None:
        if self._mapped is None:
            return
        self._cols.clear()
        self._mapped.close()
        self._mapped = None

    def __len__(self) -> int:
        self.open()
        return self._triples

    # -- range narrowing -----------------------------------------------

    @staticmethod
    def _narrow(column, value: int, lo: int, hi: int) -> tuple[int, int]:
        return (
            bisect_left(column, value, lo, hi),
            bisect_right(column, value, lo, hi),
        )

    def _range(
        self, ordering: int, first: int | None, second: int | None,
        third: int | None = None,
    ) -> tuple[int, int]:
        """The [lo, hi) row range matching a bound prefix of an ordering."""
        a, b, c = self._cols[ordering]
        lo, hi = 0, self._triples
        if first is not None:
            lo, hi = self._narrow(a, first, lo, hi)
            if second is not None and lo < hi:
                lo, hi = self._narrow(b, second, lo, hi)
                if third is not None and lo < hi:
                    lo, hi = self._narrow(c, third, lo, hi)
        return lo, hi

    # -- protocol core ---------------------------------------------------

    def scan(
        self, s: int | None, p: int | None, o: int | None
    ) -> Iterator[IdTriple]:
        """Iterate matching (s, p, o) id triples in the serving ordering."""
        if -1 in (s, p, o):
            return
        self.open()
        if s is not None and (p is not None or o is None):
            cs, cp, co = self._cols[_SPO]
            lo, hi = self._range(_SPO, s, p, o)
            for index in range(lo, hi):
                yield (cs[index], cp[index], co[index])
        elif o is not None and p is None:
            # (o) or (o, s) bound: OSP serves both without post-filtering.
            co, cs, cp = self._cols[_OSP]
            lo, hi = self._range(_OSP, o, s)
            for index in range(lo, hi):
                yield (cs[index], cp[index], co[index])
        elif p is not None:
            cp, co, cs = self._cols[_POS]
            lo, hi = self._range(_POS, p, o)
            for index in range(lo, hi):
                yield (cs[index], cp[index], co[index])
        else:
            cs, cp, co = self._cols[_SPO]
            for index in range(self._triples):
                yield (cs[index], cp[index], co[index])

    def scan_columns(
        self, s: int | None, p: int | None, o: int | None
    ):
        """The matching rows as three zero-copy ``'q'`` memoryview columns
        in (s, p, o) position order — the ``array('q')`` form the columnar
        batch operators consume directly.

        Only bound-prefix patterns are contiguous in one ordering; a
        pattern needing post-filtering (``(s, None, o)``) returns None and
        callers fall back to :meth:`scan`.
        """
        if -1 in (s, p, o):
            return None
        self.open()
        if s is not None and (p is not None or o is None):
            cs, cp, co = self._cols[_SPO]
            lo, hi = self._range(_SPO, s, p, o)
        elif o is not None and s is None and p is None:
            co, cs, cp = self._cols[_OSP]
            lo, hi = self._range(_OSP, o, None)
        elif p is not None and s is None:
            cp, co, cs = self._cols[_POS]
            lo, hi = self._range(_POS, p, o)
        elif s is None and p is None and o is None:
            cs, cp, co = self._cols[_SPO]
            lo, hi = 0, self._triples
        else:
            return None
        return (cs[lo:hi], cp[lo:hi], co[lo:hi])

    def count(
        self, s: int | None = None, p: int | None = None, o: int | None = None
    ) -> int:
        """Exact match count by range subtraction (no enumeration)."""
        if -1 in (s, p, o):
            return 0
        self.open()
        if s is None and p is None and o is None:
            return self._triples
        if s is not None and (p is not None or o is None):
            lo, hi = self._range(_SPO, s, p, o)
        elif o is not None and p is None:
            lo, hi = self._range(_OSP, o, s)
        else:
            lo, hi = self._range(_POS, p, o)
        return hi - lo

    def distinct_ids(self, position: int) -> Iterator[int]:
        """Distinct subject (0) / predicate (1) / object (2) ids, sorted."""
        self.open()
        ordering = (_SPO, _POS, _OSP)[position]
        column = self._cols[ordering][0]
        previous: int | None = None
        for index in range(self._triples):
            value = column[index]
            if value != previous:
                previous = value
                yield value


def scan_order_key(s: int | None, p: int | None, o: int | None):
    """The sort key of :meth:`SegmentShard.scan` output for a pattern shape.

    Equal-shaped scans of every shard are sorted under this key, which is
    what lets :class:`repro.kb.shard.SegmentedBackend` heap-merge per-shard
    streams into one globally sorted, deterministic scan.
    """
    if s is not None and (p is not None or o is None):
        return None  # natural (s, p, o) tuple order
    if o is not None and p is None:
        return lambda triple: (triple[2], triple[0], triple[1])
    if p is not None:
        return lambda triple: (triple[1], triple[2], triple[0])
    return None


# ---------------------------------------------------------------------------
# Manifest
# ---------------------------------------------------------------------------


def write_manifest(
    directory: str,
    shards: int,
    shard_triples: Sequence[int],
    terms: int,
    checksums: dict[str, str],
    object_shard_triples: Sequence[int] | None = None,
) -> dict:
    """Write ``manifest.json``; returns the manifest dict.

    ``object_shard_triples`` describes the optional secondary object-hash
    partition (same triples, repartitioned — it does not contribute to the
    ``triples`` total).  The keys are additive so directories written
    without the secondary partition keep the same schema and stay
    readable.
    """
    fingerprint = hashlib.sha256(
        json.dumps(
            {"checksums": dict(sorted(checksums.items())), "terms": terms},
            separators=(",", ":"), sort_keys=True,
        ).encode("utf-8")
    ).hexdigest()
    manifest = {
        "schema": SEGMENT_SCHEMA,
        "shards": shards,
        "triples": sum(shard_triples),
        "shard_triples": list(shard_triples),
        "terms": terms,
        "files": checksums,
        "fingerprint": fingerprint,
    }
    if object_shard_triples is not None:
        manifest["object_shards"] = len(object_shard_triples)
        manifest["object_shard_triples"] = list(object_shard_triples)
    path = os.path.join(directory, "manifest.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return manifest


def read_manifest(directory: str) -> dict:
    """Load and validate ``manifest.json`` from a segment directory."""
    path = os.path.join(directory, "manifest.json")
    try:
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except OSError as error:
        raise SegmentError(f"unreadable segment manifest: {error}") from None
    except json.JSONDecodeError as error:
        raise SegmentIntegrityError(
            f"{path}: corrupt manifest: {error}"
        ) from None
    if manifest.get("schema") != SEGMENT_SCHEMA:
        raise SegmentError(
            f"{path}: unknown segment schema {manifest.get('schema')!r} "
            f"(expected {SEGMENT_SCHEMA!r})"
        )
    for name in manifest.get("files", ()):
        if not os.path.exists(os.path.join(directory, name)):
            raise SegmentError(f"{directory}: missing segment file {name}")
    return manifest

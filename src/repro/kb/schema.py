"""The mini-DBpedia ontology: class taxonomy and property catalogue.

Shapes follow the DBpedia 3.8 ontology (the version the paper evaluated
against): class names like ``dbo:Book``, camelCase property names like
``dbo:birthPlace``, object vs data property split, and domains/ranges that
the type checker can exploit.
"""

from __future__ import annotations

from repro.kb.ontology import (
    Ontology,
    OntologyClass,
    PropertyDef,
    PropertyKind,
    ValueType,
)

_OBJECT = PropertyKind.OBJECT
_DATA = PropertyKind.DATA
_ENTITY = ValueType.ENTITY
_NUMERIC = ValueType.NUMERIC
_DATE = ValueType.DATE
_STRING = ValueType.STRING

#: (name, parent) pairs, parent-first order.
CLASSES: tuple[tuple[str, str | None], ...] = (
    ("Thing", None),
    # Agents.
    ("Agent", "Thing"),
    ("Person", "Agent"),
    ("Artist", "Person"),
    ("Writer", "Artist"),
    ("MusicalArtist", "Artist"),
    ("Actor", "Artist"),
    ("ComicsCreator", "Artist"),
    ("Athlete", "Person"),
    ("BasketballPlayer", "Athlete"),
    ("SoccerPlayer", "Athlete"),
    ("TennisPlayer", "Athlete"),
    ("Politician", "Person"),
    ("President", "Politician"),
    ("PrimeMinister", "Politician"),
    ("Governor", "Politician"),
    ("Mayor", "Politician"),
    ("Chancellor", "Politician"),
    ("Model", "Person"),
    ("Astronaut", "Person"),
    ("Scientist", "Person"),
    ("Philosopher", "Person"),
    ("Journalist", "Person"),
    ("FilmDirector", "Person"),
    ("Monarch", "Person"),
    ("Organisation", "Agent"),
    ("Company", "Organisation"),
    ("Airline", "Company"),
    ("RecordLabel", "Company"),
    ("University", "Organisation"),
    ("Band", "Organisation"),
    ("SoccerClub", "Organisation"),
    ("PoliticalParty", "Organisation"),
    ("GovernmentAgency", "Organisation"),
    # Places.
    ("Place", "Thing"),
    ("PopulatedPlace", "Place"),
    ("Country", "PopulatedPlace"),
    ("City", "PopulatedPlace"),
    ("Town", "PopulatedPlace"),
    ("Region", "PopulatedPlace"),
    ("State", "PopulatedPlace"),
    ("Island", "Place"),
    ("Mountain", "Place"),
    ("Volcano", "Mountain"),
    ("River", "Place"),
    ("Lake", "Place"),
    ("Sea", "Place"),
    ("Desert", "Place"),
    ("Building", "Place"),
    ("Skyscraper", "Building"),
    ("Bridge", "Place"),
    ("Airport", "Place"),
    ("Monument", "Place"),
    # Works.
    ("Work", "Thing"),
    ("WrittenWork", "Work"),
    ("Book", "WrittenWork"),
    ("Novel", "Book"),
    ("Comic", "WrittenWork"),
    ("Film", "Work"),
    ("TelevisionShow", "Work"),
    ("MusicalWork", "Work"),
    ("Album", "MusicalWork"),
    ("Song", "MusicalWork"),
    ("Software", "Work"),
    ("VideoGame", "Software"),
    ("Website", "Work"),
    # Other things.
    ("Species", "Thing"),
    ("Animal", "Species"),
    ("Bird", "Animal"),
    ("Currency", "Thing"),
    ("Language", "Thing"),
    ("EthnicGroup", "Thing"),
    ("Award", "Thing"),
    ("SpaceMission", "Thing"),
    ("Automobile", "Thing"),
    ("Ship", "Thing"),
    ("MilitaryConflict", "Thing"),
)

#: (name, kind, value_type, domain, range) tuples.
PROPERTIES: tuple[tuple[str, PropertyKind, ValueType, str | None, str | None], ...] = (
    # People.
    ("birthPlace", _OBJECT, _ENTITY, "Person", "Place"),
    ("deathPlace", _OBJECT, _ENTITY, "Person", "Place"),
    ("residence", _OBJECT, _ENTITY, "Person", "Place"),
    ("nationality", _OBJECT, _ENTITY, "Person", "Country"),
    ("spouse", _OBJECT, _ENTITY, "Person", "Person"),
    ("child", _OBJECT, _ENTITY, "Person", "Person"),
    ("parent", _OBJECT, _ENTITY, "Person", "Person"),
    ("relative", _OBJECT, _ENTITY, "Person", "Person"),
    ("almaMater", _OBJECT, _ENTITY, "Person", "University"),
    ("occupation", _OBJECT, _ENTITY, "Person", "Thing"),
    ("employer", _OBJECT, _ENTITY, "Person", "Organisation"),
    ("influencedBy", _OBJECT, _ENTITY, "Person", "Person"),
    ("award", _OBJECT, _ENTITY, "Person", "Award"),
    ("team", _OBJECT, _ENTITY, "Athlete", "Organisation"),
    ("party", _OBJECT, _ENTITY, "Politician", "PoliticalParty"),
    ("successor", _OBJECT, _ENTITY, "Person", "Person"),
    ("predecessor", _OBJECT, _ENTITY, "Person", "Person"),
    # Works and creators.
    ("author", _OBJECT, _ENTITY, "WrittenWork", "Person"),
    ("writer", _OBJECT, _ENTITY, "Work", "Person"),
    ("director", _OBJECT, _ENTITY, "Film", "Person"),
    ("starring", _OBJECT, _ENTITY, "Film", "Actor"),
    ("producer", _OBJECT, _ENTITY, "Work", "Person"),
    ("musicComposer", _OBJECT, _ENTITY, "Work", "Person"),
    ("creator", _OBJECT, _ENTITY, "Work", "Person"),
    ("illustrator", _OBJECT, _ENTITY, "WrittenWork", "Person"),
    ("publisher", _OBJECT, _ENTITY, "Work", "Company"),
    ("developer", _OBJECT, _ENTITY, "Software", "Company"),
    ("artist", _OBJECT, _ENTITY, "MusicalWork", "MusicalArtist"),
    ("album", _OBJECT, _ENTITY, "Song", "Album"),
    ("recordLabel", _OBJECT, _ENTITY, "MusicalWork", "RecordLabel"),
    ("basedOn", _OBJECT, _ENTITY, "Film", "WrittenWork"),
    ("subsequentWork", _OBJECT, _ENTITY, "Work", "Work"),
    ("previousWork", _OBJECT, _ENTITY, "Work", "Work"),
    ("language", _OBJECT, _ENTITY, "Work", "Language"),
    # Places.
    ("country", _OBJECT, _ENTITY, "Thing", "Country"),
    ("capital", _OBJECT, _ENTITY, "Country", "City"),
    ("largestCity", _OBJECT, _ENTITY, "PopulatedPlace", "City"),
    ("location", _OBJECT, _ENTITY, "Thing", "Place"),
    ("locatedInArea", _OBJECT, _ENTITY, "Place", "Place"),
    ("isPartOf", _OBJECT, _ENTITY, "Place", "Place"),
    ("leaderName", _OBJECT, _ENTITY, "PopulatedPlace", "Person"),
    ("mayor", _OBJECT, _ENTITY, "City", "Person"),
    ("governor", _OBJECT, _ENTITY, "State", "Person"),
    ("currency", _OBJECT, _ENTITY, "Country", "Currency"),
    ("officialLanguage", _OBJECT, _ENTITY, "Country", "Language"),
    ("timeZone", _OBJECT, _ENTITY, "Place", "Thing"),
    ("mouth", _OBJECT, _ENTITY, "River", "Place"),
    ("sourceCountry", _OBJECT, _ENTITY, "River", "Country"),
    ("sourceMountain", _OBJECT, _ENTITY, "River", "Mountain"),
    ("crosses", _OBJECT, _ENTITY, "Bridge", "River"),
    ("highestPlace", _OBJECT, _ENTITY, "Place", "Mountain"),
    # Organisations.
    ("foundedBy", _OBJECT, _ENTITY, "Organisation", "Person"),
    ("keyPerson", _OBJECT, _ENTITY, "Company", "Person"),
    ("headquarter", _OBJECT, _ENTITY, "Organisation", "PopulatedPlace"),
    ("owner", _OBJECT, _ENTITY, "Thing", "Agent"),
    ("parentCompany", _OBJECT, _ENTITY, "Company", "Company"),
    ("hubAirport", _OBJECT, _ENTITY, "Airline", "Airport"),
    ("bandMember", _OBJECT, _ENTITY, "Band", "Person"),
    ("formerBandMember", _OBJECT, _ENTITY, "Band", "Person"),
    ("genre", _OBJECT, _ENTITY, "Thing", "Thing"),
    # Misc.
    ("manufacturer", _OBJECT, _ENTITY, "Automobile", "Company"),
    ("designer", _OBJECT, _ENTITY, "Thing", "Person"),
    ("operator", _OBJECT, _ENTITY, "Thing", "Organisation"),
    ("launchSite", _OBJECT, _ENTITY, "SpaceMission", "Place"),
    ("crewMember", _OBJECT, _ENTITY, "SpaceMission", "Astronaut"),
    ("architect", _OBJECT, _ENTITY, "Place", "Person"),
    ("doctoralAdvisor", _OBJECT, _ENTITY, "Scientist", "Scientist"),
    ("classis", _OBJECT, _ENTITY, "Species", "Species"),
    # Data properties: numbers.
    ("height", _DATA, _NUMERIC, "Thing", None),
    ("weight", _DATA, _NUMERIC, "Person", None),
    ("populationTotal", _DATA, _NUMERIC, "PopulatedPlace", None),
    ("areaTotal", _DATA, _NUMERIC, "Place", None),
    ("elevation", _DATA, _NUMERIC, "Place", None),
    ("length", _DATA, _NUMERIC, "Thing", None),
    ("depth", _DATA, _NUMERIC, "Lake", None),
    ("numberOfEmployees", _DATA, _NUMERIC, "Organisation", None),
    ("numberOfStudents", _DATA, _NUMERIC, "University", None),
    ("numberOfPages", _DATA, _NUMERIC, "Book", None),
    ("numberOfEpisodes", _DATA, _NUMERIC, "TelevisionShow", None),
    ("floorCount", _DATA, _NUMERIC, "Building", None),
    ("runtime", _DATA, _NUMERIC, "Film", None),
    ("budget", _DATA, _NUMERIC, "Film", None),
    ("gross", _DATA, _NUMERIC, "Film", None),
    ("revenue", _DATA, _NUMERIC, "Company", None),
    ("speed", _DATA, _NUMERIC, "Thing", None),
    ("wingspan", _DATA, _NUMERIC, "Bird", None),
    # Data properties: dates.
    ("birthDate", _DATA, _DATE, "Person", None),
    ("deathDate", _DATA, _DATE, "Person", None),
    ("foundingDate", _DATA, _DATE, "Organisation", None),
    ("releaseDate", _DATA, _DATE, "Work", None),
    ("publicationDate", _DATA, _DATE, "WrittenWork", None),
    ("launchDate", _DATA, _DATE, "SpaceMission", None),
    ("openingDate", _DATA, _DATE, "Building", None),
    ("completionDate", _DATA, _DATE, "Thing", None),
    # Data properties: strings.
    ("abbreviation", _DATA, _STRING, "Organisation", None),
    ("motto", _DATA, _STRING, "Organisation", None),
    ("isbn", _DATA, _STRING, "Book", None),
    ("postalCode", _DATA, _STRING, "PopulatedPlace", None),
)


def build_dbpedia_ontology() -> Ontology:
    """Construct the mini-DBpedia ontology.

    >>> ontology = build_dbpedia_ontology()
    >>> ontology.is_subclass_of("Writer", "Person")
    True
    >>> ontology.get_property("birthPlace").kind.value
    'object'
    """
    ontology = Ontology()
    for name, parent in CLASSES:
        ontology.add_class(OntologyClass(name, parent))
    for name, kind, value_type, domain, range_ in PROPERTIES:
        ontology.add_property(
            PropertyDef(name, kind, value_type, domain=domain, range=range_)
        )
    return ontology

"""Surface-form index: from text mentions to candidate entities.

DBpedia exposes entity labels (``rdfs:label``) plus redirect/alias surface
forms.  The entity-spotting step of the disambiguator (section 2.2.5) looks
mentions up in this index; several entities can share a surface form
("Michael Jordan" the basketball player vs. the scientist), which is exactly
what disambiguation resolves.
"""

from __future__ import annotations

import re
from collections import defaultdict
from typing import Iterable, Iterator

from repro.rdf.terms import IRI

_WHITESPACE = re.compile(r"\s+")
_PUNCT = re.compile(r"[^\w\s]")


def normalize_surface(text: str) -> str:
    """Canonical form for surface matching: casefold, strip punctuation,
    collapse whitespace.

    >>> normalize_surface("  Orhan   PAMUK! ")
    'orhan pamuk'
    """
    text = text.replace("_", " ")
    text = _PUNCT.sub(" ", text)
    text = _WHITESPACE.sub(" ", text)
    return text.strip().casefold()


class SurfaceFormIndex:
    """Maps normalised surface forms to candidate entity IRIs."""

    def __init__(self) -> None:
        self._forms: dict[str, list[IRI]] = defaultdict(list)
        self._primary_label: dict[IRI, str] = {}
        self._max_words = 1

    def add(self, entity: IRI, surface: str, primary: bool = False) -> None:
        """Register a surface form for an entity.

        ``primary`` marks the canonical label (used for display and for the
        string-similarity component of disambiguation).
        """
        normalized = normalize_surface(surface)
        if not normalized:
            return
        candidates = self._forms[normalized]
        if entity not in candidates:
            candidates.append(entity)
        self._max_words = max(self._max_words, normalized.count(" ") + 1)
        if primary or entity not in self._primary_label:
            self._primary_label[entity] = surface

    def candidates(self, surface: str) -> list[IRI]:
        """Entities registered under a surface form (possibly several)."""
        return list(self._forms.get(normalize_surface(surface), ()))

    def label(self, entity: IRI) -> str | None:
        """The primary label of an entity, if known."""
        return self._primary_label.get(entity)

    def __contains__(self, surface: str) -> bool:
        return normalize_surface(surface) in self._forms

    def __len__(self) -> int:
        return len(self._forms)

    @property
    def max_words(self) -> int:
        """Longest registered surface form, in words (spotting window)."""
        return self._max_words

    def spot(self, tokens: Iterable[str]) -> Iterator[tuple[int, int, list[IRI]]]:
        """Find all longest, non-overlapping surface matches in a token list.

        Yields ``(start, end, candidates)`` with ``end`` exclusive.  Greedy
        longest-match-first scan, the standard gazetteer-spotting strategy.
        """
        tokens = list(tokens)
        index = 0
        while index < len(tokens):
            matched = False
            longest = min(self._max_words, len(tokens) - index)
            for width in range(longest, 0, -1):
                window = " ".join(tokens[index:index + width])
                candidates = self.candidates(window)
                if candidates:
                    yield (index, index + width, candidates)
                    index += width
                    matched = True
                    break
            if not matched:
                index += 1
